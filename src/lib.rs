//! # spatial-fairness
//!
//! A production-quality Rust implementation of **“Auditing for Spatial
//! Fairness”** (Sacharidis, Giannopoulos, Papastefanatos, Stefanidis —
//! EDBT 2023).
//!
//! This facade crate re-exports every workspace crate under one roof so
//! downstream users can depend on a single package:
//!
//! * [`geo`] — geometry (points, rectangles, circles, grids,
//!   partitionings).
//! * [`stats`] — scan-statistic kernels (Bernoulli LLR), Monte Carlo
//!   significance machinery, descriptive statistics.
//! * [`index`] — spatial range-count indexes (kd-tree, quadtree, grid,
//!   summed-area table, membership lists).
//! * [`cluster`] — k-means (scan-region center selection).
//! * [`ml`] — decision trees and random forests (the Crime experiment's
//!   classifier substrate).
//! * [`scan`] — **the paper's contribution**: the spatial-fairness
//!   auditor, region enumeration, evidence identification, and the
//!   `MeanVar` baseline — plus the prepare/plan/execute serving layer
//!   ([`scan::prepared`]).
//! * [`serve`] — the audit serving surface: a multi-dataset
//!   [`serve::AuditService`] with ticketed submission, deterministic
//!   drain policies, a cross-batch world cache, and JSONL wire
//!   envelopes.
//! * [`data`] — dataset generators calibrated to the paper's evaluation
//!   (Synth, SemiSynth, synthetic LAR and Crime clones).
//!
//! ## Quickstart
//!
//! ```rust
//! use spatial_fairness::prelude::*;
//!
//! // The unfair-by-design dataset of the paper's Figure 1(b): uniform
//! // locations, left half has twice the positives of the right half.
//! let outcomes = sfdata::synth::SynthConfig::small().generate(42);
//!
//! // Scan the partitions of a regular grid. (The small demo dataset
//! // has 1,000 points; coarse cells keep per-region evidence strong.)
//! let regions = RegionSet::regular_grid(outcomes.bounding_box(), 2, 2);
//!
//! // Audit at the paper's significance level with a small Monte Carlo
//! // budget (use 999 worlds for real audits).
//! let config = AuditConfig::new(0.05).with_worlds(99).with_seed(7);
//! let report = Auditor::new(config).audit(&outcomes, &regions).unwrap();
//!
//! assert!(report.is_unfair(), "Synth is unfair by design");
//! println!("{report}");
//! ```

pub use sfcluster as cluster;
pub use sfdata as data;
pub use sfgeo as geo;
pub use sfindex as index;
pub use sfml as ml;
pub use sfscan as scan;
pub use sfserve as serve;
pub use sfstats as stats;

/// Convenience re-exports of the most frequently used types.
pub mod prelude {
    pub use sfdata;
    pub use sfgeo::{BoundingBox, Circle, Partitioning, Point, Rect, Region, UniformGrid};
    pub use sfscan::{
        audit::Auditor,
        config::{AuditConfig, Statistic},
        direction::Direction,
        meanvar::MeanVar,
        outcomes::SpatialOutcomes,
        prepared::{AuditRequest, PreparedAudit},
        regions::RegionSet,
        report::AuditReport,
    };
    pub use sfserve::{
        AuditResponse, AuditService, DatasetHandle, DrainPolicy, ServerStats, Status, SubmitError,
        Ticket,
    };
    #[allow(deprecated)]
    pub use sfserve::{AuditServer, RequestId};
    pub use sfstats::llr::bernoulli_llr;
}
