//! Mortgage-lending audit (the paper's LAR scenario, §4.1/§4.3).
//!
//! ```sh
//! cargo run --release --example mortgage_audit
//! ```
//!
//! Audits mortgage approval outcomes for **statistical parity by
//! location**: does every area have the same chance of being granted a
//! loan? The workflow mirrors the paper's §4.3 unrestricted-region
//! setting:
//!
//! 1. cluster the application locations with k-means (100 centers);
//! 2. scan square regions of 20 side lengths around each center;
//! 3. run the two-sided audit plus both one-sided variants ("red" =
//!    under-approved areas, "green" = over-approved areas);
//! 4. report non-overlapping evidence regions with nearest-metro names.

use spatial_fairness::cluster::{KMeans, KMeansConfig};
use spatial_fairness::data::lar::{LarConfig, LarDataset};
use spatial_fairness::prelude::*;
use spatial_fairness::scan::identify::select_non_overlapping;

fn main() {
    // Paper-scale synthetic LAR: 206,418 applications, ~50k locations.
    let lar = LarDataset::generate(&LarConfig::paper());
    println!(
        "LAR: {} applications, {} approved (rate {:.3})",
        lar.outcomes.len(),
        lar.outcomes.positives(),
        lar.outcomes.rate()
    );

    // §4.3 region construction.
    let km = KMeans::fit(&lar.locations, &KMeansConfig::new(100, 9));
    let regions = RegionSet::squares(km.centers, &RegionSet::paper_side_lengths());
    println!("scanning {} square regions\n", regions.len());

    let base = AuditConfig::new(0.005).with_worlds(999).with_seed(11);
    for (title, direction) in [
        ("TWO-SIDED (any deviation)", Direction::TwoSided),
        ("RED (under-approved areas)", Direction::Low),
        ("GREEN (over-approved areas)", Direction::High),
    ] {
        let config = base.with_direction(direction);
        let report = Auditor::new(config)
            .audit(&lar.outcomes, &regions)
            .expect("auditable");
        let kept = select_non_overlapping(&report.findings);
        println!(
            "{title}: verdict {}, p={:.3}; {} significant regions, {} non-overlapping",
            report.verdict(),
            report.p_value,
            report.findings.len(),
            kept.len()
        );
        let mut top: Vec<_> = kept.iter().collect();
        top.sort_by(|a, b| b.llr.partial_cmp(&a.llr).unwrap());
        for f in top.iter().take(4) {
            let (metro, _) = LarDataset::nearest_metro(&f.region.center());
            println!(
                "   {:>7} applications near {:<20} approval rate {:.2} (global {:.2}), LLR {:.0}",
                f.n,
                metro.name,
                f.rate,
                lar.outcomes.rate(),
                f.llr
            );
        }
        println!();
    }
}
