//! Crime-model audit (the paper's Crime scenario, §4.1/Figure 4).
//!
//! ```sh
//! cargo run --release --example crime_audit
//! ```
//!
//! End-to-end **equal opportunity** audit of a real ML pipeline built
//! entirely in this workspace:
//!
//! 1. generate synthetic LA crime incidents (7 tabular features,
//!    locations clustered around precincts, ground-truth seriousness);
//! 2. train a random forest (location is NOT a feature);
//! 3. predict on a held-out test set;
//! 4. audit whether the model's *true positive rate* is independent of
//!    location — i.e. does the model work equally well everywhere?

use spatial_fairness::data::crime::{hollywood_region, CrimeConfig, CrimeData};
use spatial_fairness::ml::RandomForestConfig;
use spatial_fairness::prelude::*;

fn main() {
    // 1-3. Generate, train, predict (the pipeline of the paper's §4.1).
    let data = CrimeData::generate(&CrimeConfig::medium());
    let mut rf = RandomForestConfig::new(20, 5);
    rf.tree.max_depth = 12;
    let pipeline = data.run_pipeline(&rf);
    println!(
        "model: accuracy {:.3}, TPR {:.3}, FPR {:.3} on the test set",
        pipeline.accuracy, pipeline.tpr, pipeline.fpr
    );
    // What the model relies on (the 7 features of §4.1; location is absent).
    let model = spatial_fairness::ml::RandomForest::fit(&data.features, &rf);
    let names: Vec<&str> = data
        .features
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let mut ranked: Vec<(f64, &str)> = model.feature_importances().into_iter().zip(names).collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let summary: Vec<String> = ranked
        .iter()
        .map(|(imp, name)| format!("{name} {:.2}", imp))
        .collect();
    println!("feature importances: {}", summary.join(", "));
    println!(
        "equal-opportunity view: {} serious incidents; global TPR {:.3}\n",
        pipeline.outcomes.len(),
        pipeline.outcomes.rate()
    );

    // 4. Audit the TPR by location on the paper's 20x20 grid.
    let regions = RegionSet::regular_grid(pipeline.outcomes.expanded_bounding_box(), 20, 20);
    let config = AuditConfig::new(0.005).with_worlds(999).with_seed(17);
    let report = Auditor::new(config)
        .audit(&pipeline.outcomes, &regions)
        .expect("auditable");

    println!(
        "verdict: {} (p={:.3}); {} significant partitions",
        report.verdict(),
        report.p_value,
        report.findings.len()
    );
    let hollywood = hollywood_region();
    for f in report.top_k(5) {
        let in_hw = f.region.bounding_rect().intersects(&hollywood);
        println!(
            "  cell with {} serious incidents: local TPR {:.2} vs global {:.2}, LLR {:.1}{}",
            f.n,
            f.rate,
            pipeline.outcomes.rate(),
            f.llr,
            if in_hw {
                "   <- inside the drifted 'Hollywood' area"
            } else {
                ""
            }
        );
    }
    println!(
        "\nInterpretation: the model never sees location, yet its accuracy is\n\
         location-dependent (concept drift inside the Hollywood region) —\n\
         exactly the situation the paper's equal-opportunity audit detects."
    );
}
