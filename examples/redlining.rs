//! Redlining detection (the paper's §1 motivating scenario).
//!
//! ```sh
//! cargo run --release --example redlining
//! ```
//!
//! A lending policy penalises applications from certain *districts*.
//! It never looks at the protected attribute — but because the
//! protected group concentrates in those districts, the group is
//! indirectly harmed ("fairness by unawareness … is not sufficient",
//! §2.1). The spatial audit exposes the policy from the outcomes
//! alone: no group labels, no knowledge of the district map.

use spatial_fairness::data::redlining::{RedliningConfig, RedliningScenario};
use spatial_fairness::prelude::*;
use spatial_fairness::scan::identify::select_non_overlapping;

fn main() {
    let scenario = RedliningScenario::generate(&RedliningConfig::default());
    let (prot_rate, rest_rate) = scenario.group_rates();
    println!(
        "policy under audit: approval {:.3} overall; protected group {:.3} vs others {:.3}",
        scenario.outcomes.rate(),
        prot_rate,
        rest_rate
    );
    println!("(the policy never sees the group attribute; the gap arises via location)\n");

    // The auditor sees ONLY (location, outcome). Scan square regions
    // around k-means centers — no administrative boundaries assumed.
    let regions = RegionSet::square_scan_kmeans(
        scenario.outcomes.points(),
        40,
        &[0.1, 0.15, 0.2, 0.3, 0.45],
        3,
    );
    let config = AuditConfig::new(0.005)
        .with_worlds(999)
        .with_seed(4)
        .with_direction(Direction::Low); // under-approved areas
    let report = Auditor::new(config)
        .audit(&scenario.outcomes, &regions)
        .unwrap();
    println!(
        "audit: {} (p={:.3}); {} significant under-approved regions",
        report.verdict(),
        report.p_value,
        report.findings.len()
    );

    // How well does the evidence recover the hidden redlined map?
    let kept = select_non_overlapping(&report.findings);
    let mut hits = 0;
    for f in &kept {
        let c = f.region.center();
        if scenario.redlined_districts.iter().any(|d| d.contains(&c)) {
            hits += 1;
        }
    }
    println!(
        "evidence: {} non-overlapping regions; {} of them centered inside a truly \
         redlined district",
        kept.len(),
        hits
    );
    for f in kept.iter().take(5) {
        println!(
            "   region at ({:.2}, {:.2}): {} applications, approval {:.2} (global {:.2}), LLR {:.0}",
            f.region.center().x,
            f.region.center().y,
            f.n,
            f.rate,
            scenario.outcomes.rate(),
            f.llr
        );
    }
}
