//! Runtime counting substrates and adaptive Monte Carlo budgets.
//!
//! ```sh
//! cargo run --release --example backends_and_budget
//! ```
//!
//! Demonstrates the two audit-throughput knobs:
//!
//! 1. **Index backend** (`AuditConfig::with_backend`): the `Q` in the
//!    paper's `O(M·N·Q)` cost. Every backend is exact, so reports are
//!    bit-identical — the choice is purely about speed and memory.
//! 2. **Monte Carlo budget** (`AuditConfig::with_early_stop`): batched
//!    Besag–Clifford-style sequential stopping ends the calibration at
//!    the first batch where the verdict at `α` is decided. Verdicts
//!    always match the full-budget run; `worlds_evaluated` records the
//!    saving.

use spatial_fairness::prelude::*;
use spatial_fairness::scan::{CountingStrategy, IndexBackend};

fn main() {
    // Unfair-by-design data (paper Fig. 1b) over a modest grid.
    let outcomes = sfdata::synth::SynthConfig::paper().generate(42);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 8);
    let base = AuditConfig::new(0.005).with_worlds(999).with_seed(7);

    // --- 1. Same audit, every backend: identical reports. -------------
    println!("backend sweep (identical answers, different cost):");
    let reference = Auditor::new(base).audit(&outcomes, &regions).unwrap();
    for backend in IndexBackend::ALL {
        let t = std::time::Instant::now();
        let report = Auditor::new(base.with_backend(backend))
            .audit(&outcomes, &regions)
            .unwrap();
        assert_eq!(report.tau, reference.tau);
        assert_eq!(report.p_value, reference.p_value);
        assert_eq!(report.findings, reference.findings);
        println!(
            "  {backend:<9} verdict {} p={:.4}  ({:.1?})",
            report.verdict(),
            report.p_value,
            t.elapsed()
        );
    }

    // --- 2. Auto counting strategy. ------------------------------------
    // Auto measures the membership density Σ n(R) against its M·N worst
    // case at build time and picks Membership or Requery accordingly.
    let auto = Auditor::new(base.with_strategy(CountingStrategy::Auto))
        .audit(&outcomes, &regions)
        .unwrap();
    assert_eq!(auto.p_value, reference.p_value);
    println!("\nCountingStrategy::Auto: same report, self-tuned counting path");

    // --- 3. Early-stopping Monte Carlo. --------------------------------
    // The saving depends on the regime. On *unfair* data the stop is a
    // certainty stop, which can save at most ⌊α·w⌋ worlds; on *fair*
    // data the stop is a futility stop, which usually fires within a
    // few batches. Use a batch of 16 at α=0.05 to make both visible.
    let demo = AuditConfig::new(0.05)
        .with_worlds(999)
        .with_seed(7)
        .with_mc_strategy(spatial_fairness::stats::montecarlo::McStrategy::EarlyStop {
            batch_size: 16,
        });

    let t = std::time::Instant::now();
    let stopped = Auditor::new(demo).audit(&outcomes, &regions).unwrap();
    println!(
        "\nearly stop on unfair data: verdict {} after {} of {} worlds ({:.1?})",
        stopped.verdict(),
        stopped.worlds_evaluated,
        demo.worlds,
        t.elapsed()
    );

    let fair = sfdata::semisynth::SemiSynthConfig::paper().generate_from_lar(
        &sfdata::lar::LarDataset::generate(&sfdata::lar::LarConfig::small()),
        43,
    );
    let fair_regions = RegionSet::regular_grid(fair.expanded_bounding_box(), 16, 8);
    let t = std::time::Instant::now();
    let fair_report = Auditor::new(demo).audit(&fair, &fair_regions).unwrap();
    println!(
        "early stop on fair data:   verdict {} after {} of {} worlds ({:.1?})",
        fair_report.verdict(),
        fair_report.worlds_evaluated,
        demo.worlds,
        t.elapsed()
    );
}
