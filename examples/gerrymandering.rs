//! Gerrymandering and the modifiable areal unit problem (MAUP).
//!
//! ```sh
//! cargo run --release --example gerrymandering
//! ```
//!
//! The paper's §1 motivation: conclusions from *partition-based*
//! fairness checks depend on where the partition boundaries sit — an
//! auditor (or auditee!) can redraw them to manufacture or hide
//! disparities. This example demonstrates both failure modes on a
//! dataset with a genuine east-west disparity, then shows that the
//! scan audit is stable because it considers *many* regions and
//! calibrates significance globally.

use rand::Rng;
use spatial_fairness::prelude::*;
use spatial_fairness::stats::rng::seeded_rng;

fn main() {
    // A city where the western half is under-approved: west rate 0.45,
    // east rate 0.65.
    let mut rng = seeded_rng(23);
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..20_000 {
        let x: f64 = rng.gen_range(0.0..10.0);
        let y: f64 = rng.gen_range(0.0..10.0);
        let rate = if x < 5.0 { 0.45 } else { 0.65 };
        points.push(sfgeo::Point::new(x, y));
        labels.push(rng.gen_bool(rate));
    }
    let outcomes = SpatialOutcomes::new(points, labels).unwrap();
    println!(
        "ground truth: west rate 0.45, east rate 0.65, global {:.3}\n",
        outcomes.rate()
    );

    // --- Naive partition comparison #1: an "honest" split at x=5. ----
    let honest = Partitioning::from_splits(outcomes.expanded_bounding_box(), vec![5.0], vec![]);
    print_partition_rates("honest split at x=5", &outcomes, &honest);

    // --- Naive partition comparison #2: a gerrymandered split. -------
    // Each partition mixes half-west and half-east via horizontal
    // strips, so per-partition rates look identical: disparity hidden.
    let gerrymandered = Partitioning::from_splits(
        outcomes.expanded_bounding_box(),
        vec![],
        vec![2.5, 5.0, 7.5],
    );
    print_partition_rates("gerrymandered horizontal strips", &outcomes, &gerrymandered);

    // --- The audit is not fooled: it scans many regions and asks -----
    // whether ANY of them deviates more than chance allows.
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 8, 8);
    let config = AuditConfig::new(0.005).with_worlds(999).with_seed(29);
    let report = Auditor::new(config).audit(&outcomes, &regions).unwrap();
    println!(
        "scan audit over {} regions: {} (p={:.3}), {} significant regions",
        regions.len(),
        report.verdict(),
        report.p_value,
        report.findings.len()
    );
    println!(
        "  -> the west-side deficit is found regardless of how anyone draws\n\
        administrative boundaries; the Monte Carlo calibration guarantees the\n\
        verdict is not an artifact of multiple testing."
    );
}

fn print_partition_rates(name: &str, outcomes: &SpatialOutcomes, p: &Partitioning) {
    let ids = p.assign(outcomes.points());
    let mut n = vec![0u64; p.num_partitions()];
    let mut pos = vec![0u64; p.num_partitions()];
    for (&id, &l) in ids.iter().zip(outcomes.labels()) {
        n[id as usize] += 1;
        pos[id as usize] += l as u64;
    }
    let rates: Vec<String> = n
        .iter()
        .zip(&pos)
        .filter(|(n, _)| **n > 0)
        .map(|(n, p)| format!("{:.3}", *p as f64 / *n as f64))
        .collect();
    let spread = {
        let vals: Vec<f64> = n
            .iter()
            .zip(&pos)
            .filter(|(n, _)| **n > 0)
            .map(|(n, p)| *p as f64 / *n as f64)
            .collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    println!(
        "{name}: per-partition rates [{}] (spread {:.3})",
        rates.join(", "),
        spread
    );
    if spread < 0.03 {
        println!("  -> partitions look equal: the disparity is HIDDEN by this partitioning\n");
    } else {
        println!("  -> partitions differ: this partitioning happens to expose the disparity\n");
    }
}
