//! Quickstart: audit a dataset for spatial fairness in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the paper's two headline datasets — SemiSynth (fair by
//! design) and Synth (unfair by design) — and audits both. The auditor
//! must clear SemiSynth and reject Synth.

use spatial_fairness::prelude::*;

fn main() {
    // --- 1. Data: (location, binary outcome) pairs. -------------------
    // Synth (paper Fig. 1b): uniform locations; the left half of the
    // space receives twice as many positive outcomes as the right half.
    let synth = sfdata::synth::SynthConfig::paper().generate(42);

    // SemiSynth (paper Fig. 1a): strongly clustered Florida locations,
    // but every outcome is an independent fair coin — fair by design.
    let lar = sfdata::lar::LarDataset::generate(&sfdata::lar::LarConfig::small());
    let semisynth = sfdata::semisynth::SemiSynthConfig::paper().generate_from_lar(&lar, 43);

    // --- 2. Candidate regions: a grid over the data's extent. ---------
    // (Any RegionSet works: grids, random partitionings, square scans.)
    let audit = |name: &str, outcomes: &SpatialOutcomes| {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 8);

        // --- 3. Audit: Monte Carlo-calibrated likelihood-ratio test. --
        // (See examples/backends_and_budget.rs for the runtime index
        // backend and early-stopping Monte Carlo knobs.)
        let config = AuditConfig::new(0.005) // the paper's significance level
            .with_worlds(999) //                999 simulated fair worlds
            .with_seed(7);
        let report = Auditor::new(config)
            .audit(outcomes, &regions)
            .expect("auditable data");

        println!("--- {name} ---");
        println!(
            "verdict: {} (p-value {:.3}, tau {:.1}, critical LLR {:.1})",
            report.verdict(),
            report.p_value,
            report.tau,
            report.critical_value
        );
        for finding in report.top_k(3) {
            println!("  evidence: {finding}");
        }
        println!();
    };

    audit("Synth (unfair by design)", &synth);
    audit("SemiSynth (fair by design)", &semisynth);
}
