//! Rate-surface audit (the paper's crime-forecasting motivation, §1).
//!
//! ```sh
//! cargo run --release --example crime_forecast_rates
//! ```
//!
//! "Consider crime forecasting, where an algorithm predicts how likely
//! a crime is to occur in a particular area. … we require the
//! predicted crime rate to not differ greatly than the observed crime
//! rate in all areas." Here the data is *area-level counts*: observed
//! incidents per cell vs the forecaster's expected incidents per cell.
//! The Poisson-model audit (an extension; DESIGN.md §6) asks whether
//! the observed/expected discrepancy is spatially homogeneous — i.e.
//! whether the forecaster is equally well calibrated everywhere.

use rand::Rng;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::rates::{audit_rates, CellCounts};
use spatial_fairness::stats::rng::seeded_rng;

fn main() {
    // A 12x12 city. The forecaster's expectations are correct
    // everywhere EXCEPT a 3x3 district where it under-predicts by 40%
    // (leading to under-policing there and a sense of injustice — the
    // paper's motivating harm).
    let mut rng = seeded_rng(99);
    let mut cells = Vec::new();
    let mut observed = Vec::new();
    let mut expected = Vec::new();
    for iy in 0..12 {
        for ix in 0..12 {
            cells.push(sfgeo::Rect::from_coords(
                ix as f64,
                iy as f64,
                (ix + 1) as f64,
                (iy + 1) as f64,
            ));
            let truth = 80.0 + 40.0 * ((ix + iy) % 3) as f64; // heterogeneous city
            let under_predicted = (4..7).contains(&ix) && (4..7).contains(&iy);
            let forecast = if under_predicted { truth * 0.6 } else { truth };
            // Observed events: Bernoulli-thinned realisation of truth.
            let mut c = 0u64;
            for _ in 0..(truth * 4.0) as usize {
                if rng.gen_bool(0.25) {
                    c += 1;
                }
            }
            observed.push(c);
            expected.push(forecast);
        }
    }
    let data = CellCounts::new(cells, observed, expected).unwrap();
    println!(
        "forecast audit: {} cells, {} observed events, exposure = forecaster's expectations\n",
        data.cells.len(),
        data.total_observed()
    );

    let config = AuditConfig::new(0.005).with_worlds(999).with_seed(100);
    let report = audit_rates(&config, &data).unwrap();
    println!(
        "verdict: {} (p={:.3}, tau={:.1}, critical={:.1})",
        if report.is_unfair() {
            "MISCALIBRATED BY AREA"
        } else {
            "calibrated everywhere"
        },
        report.p_value,
        report.tau,
        report.critical_value
    );
    for f in report.findings.iter().take(9) {
        println!(
            "  cell ({:.0},{:.0}): observed {} vs forecast {:.0} (relative risk {:.2}, LLR {:.1})",
            f.rect.min.x, f.rect.min.y, f.observed, f.expected, f.relative_risk, f.llr
        );
    }
    println!(
        "\nAll flagged cells sit inside the 3x3 under-predicted district —\n\
         the audit localises the calibration failure without knowing the\n\
         district map, and ignores the (legitimate) heterogeneity of the city."
    );
}
