//! The audit serving layer: prepare once, serve many.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! A deployed auditor rarely answers one question. The serving layer
//! splits the pipeline into **prepare** (dataset + regions → immutable
//! engine), **plan** (queued requests → world-sharing groups), and
//! **execute** (batched evaluation, bit-identical to sequential):
//!
//! * requests agreeing on `(null model, seed)` share every simulated
//!   world — generated and recounted once, scored per direction;
//! * early-stopped requests release their remaining budget, which the
//!   scheduler spends only on still-contested requests;
//! * every response equals a standalone `Auditor::audit` run bit for
//!   bit.

use spatial_fairness::prelude::*;
use spatial_fairness::scan::McStrategy;
use std::time::Instant;

fn main() {
    // Unfair-by-design data (paper Fig. 1b) over a fine grid.
    let outcomes = sfdata::synth::SynthConfig::paper().generate(42);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = AuditConfig::new(0.005).with_worlds(199).with_seed(7);

    // --- prepare: the expensive phase happens exactly once. -----------
    let t = Instant::now();
    let mut server = AuditServer::new(&outcomes, &regions, base).unwrap();
    println!(
        "prepared engine over {} points x {} regions in {:.1?}\n",
        outcomes.len(),
        regions.len(),
        t.elapsed()
    );

    // --- submit: a mixed queue of cheap-knob variations. --------------
    // Three directions at two alphas share one world stream; an
    // early-stopping probe rides along; a differently-seeded replica
    // gets its own stream.
    let mut ids = Vec::new();
    for direction in [Direction::TwoSided, Direction::High, Direction::Low] {
        let mut request = server.default_request().with_direction(direction);
        ids.push((format!("{direction}, a=0.005"), server.submit(request)));
        request.alpha = 0.05;
        ids.push((format!("{direction}, a=0.05"), server.submit(request)));
    }
    ids.push((
        "two-sided, early-stop".into(),
        server.submit(
            server
                .default_request()
                .with_mc_strategy(McStrategy::early_stop()),
        ),
    ));
    ids.push((
        "two-sided, seed 99".into(),
        server.submit(server.default_request().with_seed(99)),
    ));
    println!("queued {} requests; plan:", server.pending());
    for (g, group) in server.plan().groups().iter().enumerate() {
        println!(
            "  group {g}: seed {}, {:?}, {} requests, {} directions, max budget {}",
            group.seed,
            group.null_model,
            group.members.len(),
            group.directions.len(),
            group.max_budget
        );
    }

    // --- drain: plan + execute the whole queue as one batch. ----------
    let t = Instant::now();
    let responses = server.drain();
    println!(
        "\nserved {} audits in {:.1?}:",
        responses.len(),
        t.elapsed()
    );
    for ((label, id), response) in ids.iter().zip(&responses) {
        assert_eq!(*id, response.id);
        let r = &response.report;
        println!(
            "  {label:<24} {} p={:.4} ({} of {} worlds)",
            r.verdict(),
            r.p_value,
            r.worlds_evaluated,
            r.config.worlds
        );
    }

    let stats = server.stats();
    println!(
        "\nsharing: {} unique worlds served {} lane-worlds \
         ({} shared, {} saved by early stopping)",
        stats.unique_worlds,
        stats.lane_worlds,
        stats.worlds_shared(),
        stats.worlds_saved()
    );

    // The contract: every batched answer is bit-identical to a
    // standalone audit of the same request.
    let probe = server.default_request().with_direction(Direction::High);
    let solo = Auditor::new(probe.apply_to(base))
        .audit(&outcomes, &regions)
        .unwrap();
    let prepared = PreparedAudit::prepare(&outcomes, &regions, base).unwrap();
    assert_eq!(prepared.run(&probe), solo);
    println!("\nbatched == sequential: verified bit-identical");
}
