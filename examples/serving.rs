//! The audit serving layer v2: sessions → tickets → policies → cache.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! A deployed auditor rarely answers one question — and it answers the
//! *same* questions over and over (dashboards re-polling, regulators
//! re-checking at new significance levels). `AuditService` is built
//! for that workload:
//!
//! * **register** a dataset once → a `DatasetHandle` routes requests
//!   to its prepared engine;
//! * **submit** returns a `Ticket` immediately (typed `SubmitError`s,
//!   no panics); `poll`/`take` decouple submission from execution;
//! * a **drain policy** (here `MaxPending`) decides when queued
//!   requests execute as one world-sharing batch, driven by an
//!   explicit deterministic clock — `flush()` is the manual override;
//! * executed batches feed the session's **world cache**: a repeated
//!   audit replays cached τ-streams and simulates **zero** new worlds,
//!   bit-identical to its cold run.

use spatial_fairness::prelude::*;
use spatial_fairness::scan::McStrategy;
use std::time::Instant;

fn main() {
    // Unfair-by-design data (paper Fig. 1b) over a fine grid.
    let outcomes = sfdata::synth::SynthConfig::paper().generate(42);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = AuditConfig::new(0.005).with_worlds(199).with_seed(7);

    // --- register: the expensive phase happens exactly once. ----------
    let t = Instant::now();
    let mut service = AuditService::new().with_policy(DrainPolicy::MaxPending(8));
    let handle = service.register(&outcomes, &regions, base).unwrap();
    println!(
        "registered {} points x {} regions as {} in {:.1?}\n",
        outcomes.len(),
        regions.len(),
        handle,
        t.elapsed()
    );

    // --- submit: tickets come back immediately. -----------------------
    // Three directions at two alphas share one world stream; an
    // early-stopping probe rides along; a differently-seeded replica
    // gets its own stream. The eighth submission reaches MaxPending(8)
    // and the whole queue executes as one world-sharing batch.
    let default_request = service.default_request(handle).unwrap();
    let mut tickets = Vec::new();
    for direction in [Direction::TwoSided, Direction::High, Direction::Low] {
        let mut request = default_request.with_direction(direction);
        let ticket = service.submit(handle, request).unwrap();
        tickets.push((format!("{direction}, a=0.005"), ticket, request));
        request.alpha = 0.05;
        let ticket = service.submit(handle, request).unwrap();
        tickets.push((format!("{direction}, a=0.05"), ticket, request));
    }
    let probe = default_request.with_mc_strategy(McStrategy::early_stop());
    tickets.push((
        "two-sided, early-stop".into(),
        service.submit(handle, probe).unwrap(),
        probe,
    ));
    println!(
        "queued {} requests; plan:",
        service.pending(handle).unwrap()
    );
    for (g, group) in service.plan(handle).unwrap().groups().iter().enumerate() {
        println!(
            "  group {g}: seed {}, {:?}, {} requests, {} directions, max budget {}",
            group.seed,
            group.null_model,
            group.members.len(),
            group.directions.len(),
            group.max_budget
        );
    }
    assert!(
        service.poll(tickets[0].1).is_queued(),
        "nothing executes before the policy fires"
    );

    // --- the policy fires: submission #8 executes the batch. ----------
    let t = Instant::now();
    let reseeded = default_request.with_seed(99);
    let ticket = service.submit(handle, reseeded).unwrap();
    tickets.push(("two-sided, seed 99".into(), ticket, reseeded));
    println!(
        "\nMaxPending(8) fired on submission #8; {} audits ready in {:.1?}:",
        service.ready_total(),
        t.elapsed()
    );
    for (label, ticket, _) in &tickets {
        let response = service.take(*ticket).expect("batch executed");
        let r = &response.report;
        println!(
            "  {label:<24} {} p={:.4} ({} of {} worlds)",
            r.verdict(),
            r.p_value,
            r.worlds_evaluated,
            r.config.worlds
        );
    }

    // --- repeat requests hit the cross-batch world cache. -------------
    let t = Instant::now();
    let repeat = service.submit(handle, default_request).unwrap();
    let extended = service
        .submit(handle, default_request.with_worlds(299))
        .unwrap();
    service.flush(); // manual escape hatch, policy notwithstanding
    let warm = service.take(repeat).unwrap();
    let grown = service.take(extended).unwrap();
    println!(
        "\nwarm repeat + extended budget served in {:.1?}: \
         p={:.4} (199 worlds cached), p={:.4} (299 worlds: one shared \
         stream, 199 replayed + 100 new)",
        t.elapsed(),
        warm.report.p_value,
        grown.report.p_value
    );

    let stats = service.stats();
    println!("stats: {stats}");

    // The contract: every served answer is bit-identical to a
    // standalone audit of the same request — including the cached ones.
    let solo = Auditor::new(default_request.apply_to(base))
        .audit(&outcomes, &regions)
        .unwrap();
    assert_eq!(warm.report, solo);
    // The repeat and the extension share one world class, so the warm
    // batch replays the 199 cached worlds once and simulates only the
    // extension's 100-world suffix.
    assert_eq!(stats.worlds_replayed, 199);
    assert_eq!(stats.unique_worlds, 398 + 100, "only the suffix was new");
    println!("\ncached == cold: verified bit-identical (zero new worlds for the repeat)");

    // Typed rejection instead of a panic: the v1 AuditServer would
    // have taken the process down here.
    let mut bad = default_request;
    bad.alpha = 42.0;
    let err = service.submit(handle, bad).unwrap_err();
    println!("rejected bad request: {err}");

    // Eviction drops the session's engine, queue, and cache.
    let final_cache = service.unregister(handle).unwrap();
    println!("unregistered {handle}: cache had served {final_cache}");
}
