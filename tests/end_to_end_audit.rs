//! Cross-crate integration tests: the full audit pipeline from data
//! generation (sfdata) through region enumeration (sfgeo, sfcluster),
//! counting (sfindex), statistics (sfstats) and the auditor (sfscan).

use spatial_fairness::data::lar::{LarConfig, LarDataset};
use spatial_fairness::data::semisynth::SemiSynthConfig;
use spatial_fairness::data::synth::SynthConfig;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::identify::select_non_overlapping;
use spatial_fairness::scan::{CountingStrategy, NullModel};

fn small_lar() -> LarDataset {
    LarDataset::generate(&LarConfig::small())
}

#[test]
fn synth_is_unfair_and_semisynth_is_fair() {
    let synth = SynthConfig {
        per_half: 2_000,
        ..SynthConfig::paper()
    }
    .generate(1);
    let lar = small_lar();
    let semisynth = SemiSynthConfig {
        observations: 4_000,
        rate: 0.5,
    }
    .generate_from_lar(&lar, 2);

    let config = AuditConfig::new(0.01).with_worlds(199).with_seed(3);
    let synth_regions = RegionSet::regular_grid(synth.expanded_bounding_box(), 8, 4);
    let synth_report = Auditor::new(config).audit(&synth, &synth_regions).unwrap();
    assert!(synth_report.is_unfair(), "Synth p={}", synth_report.p_value);

    let semi_regions = RegionSet::regular_grid(semisynth.expanded_bounding_box(), 8, 4);
    let semi_report = Auditor::new(config)
        .audit(&semisynth, &semi_regions)
        .unwrap();
    assert!(semi_report.is_fair(), "SemiSynth p={}", semi_report.p_value);
}

#[test]
fn synth_significant_regions_sit_in_the_correct_half() {
    let synth = SynthConfig {
        per_half: 3_000,
        ..SynthConfig::paper()
    }
    .generate(4);
    let config = AuditConfig::new(0.01).with_worlds(199).with_seed(5);
    let regions = RegionSet::regular_grid(synth.expanded_bounding_box(), 8, 4);
    let report = Auditor::new(config).audit(&synth, &regions).unwrap();
    assert!(report.is_unfair());
    let mid = 1.0; // Synth bounds are [0,2]x[0,1]
    for f in &report.findings {
        let cx = f.region.center().x;
        if f.rate > synth.rate() {
            assert!(
                cx < mid,
                "high-rate finding should be in the left half: {f}"
            );
        } else {
            assert!(
                cx > mid,
                "low-rate finding should be in the right half: {f}"
            );
        }
    }
}

#[test]
fn lar_audit_finds_the_calibrated_structure() {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 40, 20);
    let config = AuditConfig::new(0.005).with_worlds(399).with_seed(6);
    let report = Auditor::new(config).audit(&lar.outcomes, &regions).unwrap();
    assert!(report.is_unfair());
    // The strongest finding must be the Northern California block.
    let best = &report.findings[0];
    let (metro, _) = LarDataset::nearest_metro(&best.region.center());
    assert!(
        [
            "San Jose, CA",
            "San Francisco, CA",
            "Oakland, CA",
            "Sacramento, CA"
        ]
        .contains(&metro.name),
        "best finding near {} (expected Northern California)",
        metro.name
    );
    assert!(best.rate > 0.78, "NorCal approval rate {}", best.rate);
}

#[test]
fn square_scan_with_kmeans_centers_works_end_to_end() {
    let lar = small_lar();
    let regions =
        RegionSet::square_scan_kmeans(&lar.locations, 30, &RegionSet::paper_side_lengths(), 7);
    assert_eq!(regions.len(), 600);
    let config = AuditConfig::new(0.01).with_worlds(199).with_seed(8);
    let report = Auditor::new(config).audit(&lar.outcomes, &regions).unwrap();
    assert!(report.is_unfair());

    // Non-overlapping selection invariants.
    let kept = select_non_overlapping(&report.findings);
    assert!(!kept.is_empty());
    assert!(kept.len() <= 30, "at most one region per center");
    for i in 0..kept.len() {
        for j in (i + 1)..kept.len() {
            assert!(
                !kept[i].region.may_intersect(&kept[j].region),
                "kept regions {i} and {j} overlap"
            );
        }
    }
    // Each kept region is that center's best significant region.
    for k in &kept {
        let cid = k.center_id.expect("square scans carry center ids");
        let best_for_center = report
            .findings
            .iter()
            .filter(|f| f.center_id == Some(cid))
            .map(|f| f.llr)
            .fold(f64::MIN, f64::max);
        assert_eq!(k.llr, best_for_center);
    }
}

#[test]
fn directed_audits_agree_with_two_sided_split() {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 20, 10);
    let base = AuditConfig::new(0.01).with_worlds(199).with_seed(9);
    let two = Auditor::new(base).audit(&lar.outcomes, &regions).unwrap();
    let high = Auditor::new(base.with_direction(Direction::High))
        .audit(&lar.outcomes, &regions)
        .unwrap();
    let low = Auditor::new(base.with_direction(Direction::Low))
        .audit(&lar.outcomes, &regions)
        .unwrap();
    // The two-sided tau equals the max of the directional taus.
    assert_eq!(two.tau, high.tau.max(low.tau));
    // Directional findings deviate in their own direction only.
    for f in &high.findings {
        assert!(f.rate > lar.outcomes.rate());
    }
    for f in &low.findings {
        assert!(f.rate < lar.outcomes.rate());
    }
}

#[test]
fn null_models_agree_on_clear_cut_data() {
    let synth = SynthConfig {
        per_half: 2_000,
        ..SynthConfig::paper()
    }
    .generate(10);
    let regions = RegionSet::regular_grid(synth.expanded_bounding_box(), 4, 2);
    let base = AuditConfig::new(0.01).with_worlds(199).with_seed(11);
    let bern = Auditor::new(base).audit(&synth, &regions).unwrap();
    let perm = Auditor::new(base.with_null_model(NullModel::Permutation))
        .audit(&synth, &regions)
        .unwrap();
    assert!(bern.is_unfair());
    assert!(perm.is_unfair());
    // Same real-world statistic; only the calibration differs.
    assert_eq!(bern.tau, perm.tau);
}

#[test]
fn counting_strategies_are_bit_identical() {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 10, 5);
    let base = AuditConfig::new(0.05).with_worlds(99).with_seed(12);
    let mem = Auditor::new(base.with_strategy(CountingStrategy::Membership))
        .audit(&lar.outcomes, &regions)
        .unwrap();
    let req = Auditor::new(base.with_strategy(CountingStrategy::Requery))
        .audit(&lar.outcomes, &regions)
        .unwrap();
    assert_eq!(mem.tau, req.tau);
    assert_eq!(mem.p_value, req.p_value);
    assert_eq!(mem.simulated, req.simulated);
    assert_eq!(mem.findings, req.findings);
}

#[test]
fn report_json_roundtrip_through_the_facade() {
    let synth = SynthConfig::small().generate(13);
    let regions = RegionSet::regular_grid(synth.expanded_bounding_box(), 4, 2);
    let config = AuditConfig::new(0.05).with_worlds(99).with_seed(14);
    let report = Auditor::new(config).audit(&synth, &regions).unwrap();
    let json = report.to_json();
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn csv_persistence_roundtrips_through_an_audit() {
    let synth = SynthConfig::small().generate(15);
    let mut buf = Vec::new();
    spatial_fairness::data::csv::write_outcomes(&mut buf, &synth).unwrap();
    let loaded = spatial_fairness::data::csv::read_outcomes(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(loaded, synth);
    // Audits of the original and the roundtripped data are identical.
    let regions = RegionSet::regular_grid(synth.expanded_bounding_box(), 4, 2);
    let config = AuditConfig::new(0.05).with_worlds(49).with_seed(16);
    let a = Auditor::new(config).audit(&synth, &regions).unwrap();
    let b = Auditor::new(config).audit(&loaded, &regions).unwrap();
    assert_eq!(a, b);
}
