//! Integration test of the full Crime experiment: synthetic incident
//! generation → random forest training → prediction → equal-opportunity
//! audit (the paper's §4.1/Figure 4 pipeline, reduced scale).

use spatial_fairness::data::crime::{hollywood_region, CrimeConfig, CrimeData};
use spatial_fairness::ml::RandomForestConfig;
use spatial_fairness::prelude::*;

fn pipeline() -> spatial_fairness::data::crime::CrimePipelineResult {
    let data = CrimeData::generate(&CrimeConfig {
        incidents: 60_000,
        ..CrimeConfig::small()
    });
    let mut rf = RandomForestConfig::new(10, 21);
    rf.tree.max_depth = 10;
    data.run_pipeline(&rf)
}

#[test]
fn equal_opportunity_audit_flags_the_drift_region() {
    let result = pipeline();
    // Model quality in the paper's ballpark.
    assert!(result.accuracy > 0.7, "accuracy {}", result.accuracy);
    assert!(result.tpr > 0.4 && result.tpr < 0.8, "tpr {}", result.tpr);

    // The paper uses a 20x20 grid on its 61k-point equal-opportunity
    // view; this reduced-scale test has ~6k points, so a 10x10 grid
    // keeps the per-cell evidence comparable.
    let regions = RegionSet::regular_grid(result.outcomes.expanded_bounding_box(), 10, 10);
    let config = AuditConfig::new(0.005).with_worlds(399).with_seed(22);
    let report = Auditor::new(config)
        .audit(&result.outcomes, &regions)
        .unwrap();

    assert!(report.is_unfair(), "p={}", report.p_value);
    assert!(!report.findings.is_empty());
    // The strongest finding must intersect the drifted Hollywood area
    // and have a *depressed* local TPR.
    let hw = hollywood_region();
    let best = &report.findings[0];
    assert!(
        best.region.bounding_rect().intersects(&hw),
        "best finding at {} not in Hollywood",
        best.region
    );
    assert!(
        best.rate < result.outcomes.rate(),
        "drift lowers the local TPR: {} vs {}",
        best.rate,
        result.outcomes.rate()
    );
}

#[test]
fn statistical_parity_view_differs_from_equal_opportunity() {
    let result = pipeline();
    // Build the parity view from the same predictions.
    let parity = SpatialOutcomes::from_predictions(
        &result.test_points,
        &result.y_true,
        &result.y_pred,
        Statistic::BernoulliLlr,
    )
    .unwrap();
    let eq_opp = &result.outcomes;
    // The two views have different sizes and rates by construction.
    assert!(parity.len() > eq_opp.len());
    assert!((parity.rate() - eq_opp.rate()).abs() > 1e-6);
    // Parity view rate is the model's overall positive prediction rate.
    let pred_rate =
        result.y_pred.iter().filter(|&&p| p).count() as f64 / result.y_pred.len() as f64;
    assert!((parity.rate() - pred_rate).abs() < 1e-12);
}

#[test]
fn false_positive_view_is_auditable_too() {
    // The paper describes equal odds as the FPR analogue (§3); it is
    // the equal-opportunity view conditioned on y = 0, obtained by
    // negating the ground truth before the keep rule.
    let result = pipeline();
    let not_y: Vec<bool> = result.y_true.iter().map(|&y| !y).collect();
    let fpr_view = SpatialOutcomes::from_predictions(
        &result.test_points,
        &not_y,
        &result.y_pred,
        Statistic::EqualOppTpr,
    )
    .unwrap();
    assert!((fpr_view.rate() - result.fpr).abs() < 1e-12);
    let regions = RegionSet::regular_grid(fpr_view.expanded_bounding_box(), 10, 10);
    let config = AuditConfig::new(0.01).with_worlds(99).with_seed(23);
    let report = Auditor::new(config).audit(&fpr_view, &regions).unwrap();
    // No assertion on the verdict (drift affects FPR too, but weakly at
    // this scale) — the point is the full path runs.
    assert!(report.p_value > 0.0 && report.p_value <= 1.0);
}
