//! Integration tests pinning the paper's qualitative claims at reduced
//! scale: the `MeanVar` failure modes (§1, §4.2) and the Appendix A
//! chance-cluster phenomenon.

use spatial_fairness::data::lar::{LarConfig, LarDataset};
use spatial_fairness::data::semisynth::SemiSynthConfig;
use spatial_fairness::data::synth::SynthConfig;
use spatial_fairness::data::worlds::{largest_pure_negative_cluster, FairWorlds};
use spatial_fairness::prelude::*;
use spatial_fairness::stats::rng::seeded_rng;

/// Paper Figure 1: MeanVar ranks the fair clustered dataset as LESS
/// fair than the unfair uniform one.
#[test]
fn meanvar_inversion_reproduces() {
    // The inversion depends on SemiSynth's observations being spread
    // thinly over many distinct locations (sparse partitions). The
    // paper-scale location pool provides that; the reduced pool of
    // `LarConfig::small` would put ~100 observations on each location
    // and wash the effect out.
    let lar = LarDataset::generate(&LarConfig::paper());
    let semisynth = SemiSynthConfig::paper().generate_from_lar(&lar, 31);
    let synth = SynthConfig::paper().generate(32);

    let partitionings = |outcomes: &SpatialOutcomes, seed: u64| {
        let mut rng = seeded_rng(seed);
        (0..40)
            .map(|_| {
                Partitioning::random_regular(
                    outcomes.expanded_bounding_box(),
                    &sfgeo::RandomPartitioningConfig::PAPER,
                    &mut rng,
                )
            })
            .collect::<Vec<_>>()
    };
    let mv_semi = MeanVar::compute(&semisynth, &partitionings(&semisynth, 33)).mean_variance;
    let mv_synth = MeanVar::compute(&synth, &partitionings(&synth, 34)).mean_variance;
    assert!(
        mv_semi > mv_synth,
        "MeanVar must invert: fair {mv_semi} should exceed unfair {mv_synth}"
    );
    // And the paper's Synth value is ~0.043 — ours is fully specified
    // by the construction, so it should be close.
    assert!((mv_synth - 0.0431).abs() < 0.01, "Synth MeanVar {mv_synth}");
}

/// Paper Figures 2(a)/3(b): MeanVar's top contributions are sparse
/// one-label cells whose scan statistic is insignificant.
#[test]
fn meanvar_top_contributors_are_sparse_and_insignificant() {
    let lar = LarDataset::generate(&LarConfig::small());
    let bounds = lar.outcomes.expanded_bounding_box();
    let partitioning = Partitioning::regular(bounds, 50, 25);
    let contribs = MeanVar::contributions(&lar.outcomes, &partitioning);
    let top = &contribs[0];
    // Sparse and extreme.
    assert!(top.n <= 20, "top MeanVar cell has n={}", top.n);
    assert!(top.rate == 0.0 || top.rate == 1.0, "rate {}", top.rate);

    // Its scan LLR is far below the audit's critical value.
    let regions = RegionSet::regular_grid(bounds, 50, 25);
    let config = AuditConfig::new(0.005).with_worlds(399).with_seed(35);
    let report = Auditor::new(config).audit(&lar.outcomes, &regions).unwrap();
    let llr = bernoulli_llr(&spatial_fairness::stats::llr::Counts2x2::new(
        top.n,
        top.p,
        report.n_total,
        report.p_total,
    ));
    assert!(
        llr < report.critical_value,
        "MeanVar's evidence must be insignificant: LLR {llr} vs critical {}",
        report.critical_value
    );
    // While the audit's own top finding is dense and very significant
    // (at paper scale the margin is ~80x; keep a conservative bound at
    // this reduced scale).
    let best = &report.findings[0];
    assert!(best.n >= 100, "audit evidence is dense: n={}", best.n);
    assert!(
        best.llr > 2.0 * report.critical_value,
        "llr {} vs critical {}",
        best.llr,
        report.critical_value
    );
}

/// Paper Appendix A (Figure 6): under a fair process, pure negative
/// clusters of ≥5 points are found in essentially every world — and
/// the audit correctly does not flag fair worlds.
#[test]
fn fair_worlds_contain_chance_clusters_but_audit_fair() {
    let fw = FairWorlds::uniform(1_000, 0.5, 36);
    let mut clusters_found = 0;
    let mut fair_verdicts = 0;
    for w in 0..4 {
        let world = fw.world(w);
        if largest_pure_negative_cluster(&world).is_some_and(|c| c.count >= 5) {
            clusters_found += 1;
        }
        let regions = RegionSet::regular_grid(world.expanded_bounding_box(), 8, 8);
        let config = AuditConfig::new(0.005).with_worlds(399).with_seed(37 + w);
        if Auditor::new(config)
            .audit(&world, &regions)
            .unwrap()
            .is_fair()
        {
            fair_verdicts += 1;
        }
    }
    assert_eq!(
        clusters_found, 4,
        "every fair world has a >=5 pure-negative cluster"
    );
    assert!(
        fair_verdicts >= 3,
        "fair worlds must be declared fair ({fair_verdicts}/4)"
    );
}

/// The paper's critical-value narrative: at LAR scale the 0.005-level
/// threshold is a small constant (≈9.6 in the paper), so dense
/// deviations are detectable while sparse extremes are not.
#[test]
fn critical_value_is_a_small_constant_at_scale() {
    let lar = LarDataset::generate(&LarConfig::small());
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 50, 25);
    let config = AuditConfig::new(0.005).with_worlds(399).with_seed(38);
    let report = Auditor::new(config).audit(&lar.outcomes, &regions).unwrap();
    assert!(
        report.critical_value > 5.0 && report.critical_value < 20.0,
        "critical value {} should be a small constant (paper: 9.6)",
        report.critical_value
    );
}
