//! Integration tests for district-style (convex polygon) scan regions
//! — the paper's §1 "city blocks, zipcodes, districts" shapes, through
//! the full audit pipeline.

use rand::Rng;
use spatial_fairness::geo::ConvexPolygon;
use spatial_fairness::prelude::*;
use spatial_fairness::stats::rng::seeded_rng;

/// A city where a hexagonal "district" around (7, 7) is under-served.
fn district_city(n: usize, seed: u64) -> (SpatialOutcomes, ConvexPolygon) {
    let district = ConvexPolygon::regular(Point::new(7.0, 7.0), 2.0, 6);
    let mut rng = seeded_rng(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let p = Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
        let rate = if district.contains(&p) { 0.3 } else { 0.6 };
        points.push(p);
        labels.push(rng.gen_bool(rate));
    }
    (SpatialOutcomes::new(points, labels).unwrap(), district)
}

#[test]
fn polygon_regions_flow_through_the_audit() {
    let (outcomes, district) = district_city(8_000, 61);
    // Scan a mix of shapes: hexagonal districts of several sizes at
    // several anchors, plus the true district.
    let mut regions: Vec<Region> = vec![district.clone().into()];
    for cx in [2.0, 5.0, 7.0] {
        for cy in [2.0, 5.0, 7.0] {
            for r in [1.0, 2.0] {
                regions.push(ConvexPolygon::regular(Point::new(cx, cy), r, 6).into());
            }
        }
    }
    let region_set = RegionSet::from_regions(regions);
    let config = AuditConfig::new(0.01).with_worlds(199).with_seed(62);
    let report = Auditor::new(config).audit(&outcomes, &region_set).unwrap();
    assert!(report.is_unfair(), "p={}", report.p_value);
    // The strongest finding is the true district (index 0) or an
    // equivalent hexagon centered on it.
    let best = &report.findings[0];
    let c = best.region.center();
    assert!(
        c.distance(&Point::new(7.0, 7.0)) < 1.0,
        "best finding centered at {c}, expected near (7,7)"
    );
    assert!(best.rate < outcomes.rate());
}

#[test]
fn polygon_counts_match_brute_force_through_the_engine() {
    let (outcomes, district) = district_city(3_000, 63);
    let region: Region = district.clone().into();
    // Count via the audit engine's index...
    let region_set = RegionSet::from_regions(vec![region.clone()]);
    let config = AuditConfig::new(0.05).with_worlds(19).with_seed(64);
    let report = Auditor::new(config).audit(&outcomes, &region_set).unwrap();
    let _ = report;
    // ...and by hand.
    let mut n = 0u64;
    let mut p = 0u64;
    for (pt, &l) in outcomes.points().iter().zip(outcomes.labels()) {
        if district.contains(pt) {
            n += 1;
            p += l as u64;
        }
    }
    // Use the engine directly for exact comparison.
    let engine = spatial_fairness::scan::engine::ScanEngine::build(
        &outcomes,
        &region_set,
        spatial_fairness::scan::CountingStrategy::Membership,
    )
    .unwrap();
    let real = engine.scan_real(Direction::TwoSided);
    assert_eq!(real.counts[0].n, n);
    assert_eq!(real.counts[0].p, p);
}

#[test]
fn mixed_shape_region_sets_are_supported() {
    let (outcomes, district) = district_city(2_000, 65);
    let regions = RegionSet::from_regions(vec![
        Rect::square(Point::new(7.0, 7.0), 3.0).into(),
        Circle::new(Point::new(7.0, 7.0), 1.8).into(),
        district.into(),
    ]);
    let config = AuditConfig::new(0.05).with_worlds(99).with_seed(66);
    let report = Auditor::new(config).audit(&outcomes, &regions).unwrap();
    // All three shapes cover the deficit district: all significant.
    assert!(report.is_unfair());
    assert!(
        report.findings.len() >= 2,
        "found {}",
        report.findings.len()
    );
}
