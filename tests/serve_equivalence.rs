//! Batched-vs-sequential bit-identity: the serving layer's core
//! contract, pinned property-based.
//!
//! Any shuffled batch of audit requests — mixed directions, alphas,
//! seeds, budgets, null models, early stopping on and off — served
//! through one `PreparedAudit` must yield exactly the same
//! `AuditResult`s as running each request alone through `Auditor`
//! (which rebuilds the engine per call). "Exactly" means full struct
//! equality: verdict, p-value, critical value, findings, the truncated
//! `simulated` distribution, and the embedded config.
//!
//! The v2 `AuditService` adds the cross-batch world cache, so the
//! contract extends across *drains*: any interleaving of
//! repeat/extended/fresh requests over any flush pattern must stay
//! bit-identical to standalone audits, and strict repeats must cost
//! zero newly simulated worlds.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::prepared::ExecutionPlan;
use spatial_fairness::scan::{McStrategy, NullModel, WorldGen};
use spatial_fairness::serve::{AuditService, Ticket};

/// Arbitrary small outcome sets guaranteed to contain both classes.
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    prop::collection::vec(((0.0..10.0f64), (0.0..10.0f64), any::<bool>()), 40..200).prop_map(
        |mut rows| {
            rows[0].2 = true;
            rows[1].2 = false;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect();
            SpatialOutcomes::new(points, labels).unwrap()
        },
    )
}

/// Arbitrary requests over a small knob grid: enough collisions for
/// world sharing, enough variety to exercise every grouping axis.
fn arb_request() -> impl Strategy<Value = AuditRequest> {
    (
        0usize..3,
        0usize..3,
        0u64..3,
        0usize..3,
        any::<bool>(),
        0usize..3,
        any::<bool>(),
    )
        .prop_map(
            |(alpha_i, worlds_i, seed, dir_i, permutation, mc_i, word)| {
                let alphas = [0.25, 0.1, 0.05];
                let worlds = [19usize, 39, 60];
                let directions = [Direction::TwoSided, Direction::High, Direction::Low];
                let strategies = [
                    McStrategy::FullBudget,
                    McStrategy::EarlyStop { batch_size: 8 },
                    McStrategy::EarlyStop { batch_size: 16 },
                ];
                let mut request = AuditRequest::new(alphas[alpha_i])
                    .with_worlds(worlds[worlds_i])
                    .with_seed(seed)
                    .with_direction(directions[dir_i])
                    .with_mc_strategy(strategies[mc_i]);
                if permutation {
                    request = request.with_null_model(NullModel::Permutation);
                }
                if word {
                    request = request.with_worldgen(WorldGen::Word);
                }
                request
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_shuffled_batch_is_bit_identical_to_sequential_audits(
        outcomes in arb_outcomes(),
        requests in prop::collection::vec(arb_request(), 1..9),
        grid_seed in 0u64..100,
    ) {
        let regions = RegionSet::regular_grid(
            outcomes.expanded_bounding_box(),
            2 + (grid_seed % 3) as usize,
            2 + (grid_seed % 4) as usize,
        );
        let base = AuditConfig::new(0.05).with_worlds(39).with_seed(grid_seed);
        let prepared = PreparedAudit::prepare(&outcomes, &regions, base).unwrap();
        let batched = prepared.run_batch(&requests);
        prop_assert_eq!(batched.len(), requests.len());
        for (request, report) in requests.iter().zip(&batched) {
            let solo = Auditor::new(request.apply_to(base))
                .audit(&outcomes, &regions)
                .unwrap();
            prop_assert_eq!(report, &solo, "request {:?}", request);
        }
    }

    #[test]
    fn batch_results_are_order_invariant(
        outcomes in arb_outcomes(),
        requests in prop::collection::vec(arb_request(), 2..7),
        rotation in 0usize..6,
    ) {
        // The same requests in a different submission order must get
        // the same per-request reports (sharing changes scheduling,
        // never results).
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let base = AuditConfig::new(0.05).with_worlds(39).with_seed(7);
        let prepared = PreparedAudit::prepare(&outcomes, &regions, base).unwrap();

        let mut shuffled = requests.clone();
        let len = shuffled.len();
        shuffled.rotate_left(rotation % len);
        let original = prepared.run_batch(&requests);
        let rotated = prepared.run_batch(&shuffled);
        for (request, report) in requests.iter().zip(&original) {
            let position = shuffled
                .iter()
                .position(|r| r == request)
                .expect("rotation preserves membership");
            prop_assert_eq!(report, &rotated[position]);
        }
    }

    #[test]
    fn service_flush_matches_direct_batch(
        outcomes in arb_outcomes(),
        requests in prop::collection::vec(arb_request(), 1..6),
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let base = AuditConfig::new(0.05).with_worlds(19).with_seed(1);
        let prepared = PreparedAudit::prepare(&outcomes, &regions, base).unwrap();
        let direct = prepared.run_batch(&requests);

        let mut service = AuditService::new();
        let handle = service.register(&outcomes, &regions, base).unwrap();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| service.submit(handle, *r).unwrap())
            .collect();
        service.flush();
        for (expected, ticket) in direct.iter().zip(&tickets) {
            let response = service.take(*ticket).expect("flushed tickets are ready");
            prop_assert_eq!(expected, &response.report);
        }
        prop_assert_eq!(service.stats().requests_served, requests.len() as u64);
    }

    #[test]
    fn interleaved_drains_through_the_world_cache_match_standalone_audits(
        outcomes in arb_outcomes(),
        pool in prop::collection::vec(arb_request(), 2..5),
        ops in prop::collection::vec((0usize..8, any::<bool>()), 1..12),
    ) {
        // Any interleaving of repeat / extended / fresh requests (the
        // pool's knob grid collides on world classes, so later picks
        // replay or extend earlier ones' cached τ-streams) across any
        // flush pattern must be bit-identical to standalone audits.
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let base = AuditConfig::new(0.05).with_worlds(19).with_seed(2);
        let mut service = AuditService::new();
        let handle = service.register(&outcomes, &regions, base).unwrap();
        let mut submitted: Vec<(Ticket, AuditRequest)> = Vec::new();
        for &(pick, flush) in &ops {
            let request = pool[pick % pool.len()];
            let ticket = service.submit(handle, request).unwrap();
            submitted.push((ticket, request));
            if flush {
                service.flush();
            }
        }
        service.flush();
        for (ticket, request) in &submitted {
            let response = service.take(*ticket).expect("flushed tickets are ready");
            let solo = Auditor::new(request.apply_to(base))
                .audit(&outcomes, &regions)
                .unwrap();
            prop_assert_eq!(&response.report, &solo, "request {:?}", request);
        }
        // A strict repeat of anything already served costs ZERO newly
        // simulated worlds — the acceptance bar of the world cache.
        let repeat = submitted[0].1;
        let before = service.stats().unique_worlds;
        let ticket = service.submit(handle, repeat).unwrap();
        service.flush();
        let warm = service.take(ticket).expect("ready");
        prop_assert_eq!(service.stats().unique_worlds, before,
            "repeat request must be answered entirely from the cache");
        let solo = Auditor::new(repeat.apply_to(base))
            .audit(&outcomes, &regions)
            .unwrap();
        prop_assert_eq!(&warm.report, &solo);
    }

    #[test]
    fn plan_accounting_is_consistent(
        requests in prop::collection::vec(arb_request(), 1..12),
    ) {
        let plan = ExecutionPlan::new(requests.clone());
        // Every request lands in exactly one group.
        let mut seen = vec![false; requests.len()];
        for group in plan.groups() {
            for &member in &group.members {
                prop_assert!(!seen[member], "request in two groups");
                seen[member] = true;
                let request = &requests[member];
                prop_assert_eq!(request.null_model, group.null_model);
                prop_assert_eq!(request.seed, group.seed);
                prop_assert_eq!(request.worldgen, group.worldgen);
                prop_assert!(group.directions.contains(&request.direction));
                prop_assert!(request.worlds <= group.max_budget);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert!(plan.shared_budget_total() <= plan.budget_total());
    }
}
