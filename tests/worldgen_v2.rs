//! WorldGen v2 contract tests: the word-parallel generator's exactness
//! (`Permutation` worlds carry exactly `P` positives), its statistical
//! equivalence to the scalar generator (Bernoulli totals follow the
//! same binomial law), its bit-identity across every index backend and
//! counting strategy, and the world-class separation that keeps
//! `Scalar` and `Word` τ-prefixes from ever being spliced in the
//! world cache.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::engine::ScanEngine;
use spatial_fairness::scan::{
    CountingStrategy, IndexBackend, McStrategy, NullModel, WorldCache, WorldGen,
};
use spatial_fairness::stats::rng::world_rng;

/// Arbitrary outcome sets with both classes present; `dense` flips the
/// labels so the positive rate crosses 1/2 (exercising the word
/// permutation generator's complement path).
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    (
        prop::collection::vec(((0.0..12.0f64), (0.0..12.0f64), 0u8..4), 40..260),
        any::<bool>(),
    )
        .prop_map(|(mut rows, dense)| {
            rows[0].2 = 0;
            rows[1].2 = 3;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            // Base rate 1/4; `dense` inverts to 3/4.
            let labels = rows
                .iter()
                .map(|&(_, _, l)| (l == 0) ^ dense)
                .collect::<Vec<bool>>();
            SpatialOutcomes::new(points, labels).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (c) `Word` worlds are bit-identical across all 5 backends and
    /// all explicit counting strategies: same per-point labels (same
    /// popcount; equal bitsets whenever the storage layout matches)
    /// and the same multi-direction τ fold.
    #[test]
    fn word_worlds_are_bit_identical_across_backends_and_strategies(
        outcomes in arb_outcomes(),
        nx in 2usize..6,
        ny in 2usize..6,
        seed in 0u64..500,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), nx, ny);
        let reference =
            ScanEngine::build(&outcomes, &regions, CountingStrategy::Membership).unwrap();
        let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
        for backend in IndexBackend::ALL {
            for strategy in [
                CountingStrategy::Membership,
                CountingStrategy::Requery,
                CountingStrategy::Blocked,
            ] {
                let engine =
                    ScanEngine::build_with(&outcomes, &regions, backend, strategy).unwrap();
                for (w, null_model) in [NullModel::Bernoulli, NullModel::Permutation]
                    .into_iter()
                    .enumerate()
                {
                    let mut rng = world_rng(seed, w as u64);
                    let world = engine.generate_world_with(null_model, WorldGen::Word, &mut rng);
                    let mut ref_rng = world_rng(seed, w as u64);
                    let ref_world =
                        reference.generate_world_with(null_model, WorldGen::Word, &mut ref_rng);
                    prop_assert_eq!(world.count_ones(), ref_world.count_ones());
                    if engine.resolved_strategy() != CountingStrategy::Blocked {
                        prop_assert_eq!(&world, &ref_world, "{} {:?}", backend, strategy);
                    }
                    let mut taus = [0.0; 3];
                    let mut ref_taus = [0.0; 3];
                    engine.eval_world_into(&world, &dirs, &mut taus);
                    reference.eval_world_into(&ref_world, &dirs, &mut ref_taus);
                    prop_assert_eq!(
                        taus, ref_taus,
                        "{} {:?} {:?} diverged", backend, strategy, null_model
                    );
                }
            }
        }
    }

    /// (a) The exact-P invariant: every `Word` permutation world
    /// carries exactly the observed number of positives, on both
    /// sides of the ρ = 1/2 complement switch.
    #[test]
    fn word_permutation_worlds_have_exactly_p_positives(
        outcomes in arb_outcomes(),
        seed in 0u64..1000,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        for strategy in [CountingStrategy::Membership, CountingStrategy::Blocked] {
            let engine = ScanEngine::build(&outcomes, &regions, strategy).unwrap();
            for w in 0..8u64 {
                let mut rng = world_rng(seed, w);
                let world =
                    engine.generate_world_with(NullModel::Permutation, WorldGen::Word, &mut rng);
                prop_assert_eq!(world.count_ones(), outcomes.positives(), "{:?}", strategy);
            }
        }
    }

    /// (d) Cache keys never mix generator versions: a cache warmed by
    /// one version replays nothing for the other, and both versions'
    /// replays stay bit-identical to their own cold runs.
    #[test]
    fn cached_batches_never_splice_scalar_and_word_prefixes(
        outcomes in arb_outcomes(),
        seed in 0u64..100,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let base = AuditConfig::new(0.05).with_worlds(29).with_seed(seed);
        let prepared = PreparedAudit::prepare(&outcomes, &regions, base).unwrap();
        let scalar = AuditRequest::from_config(&base).with_worldgen(WorldGen::Scalar);
        let word = scalar.with_worldgen(WorldGen::Word);
        let mut cache = WorldCache::new();
        let (word_cold, s1) = prepared.run_batch_cached(std::slice::from_ref(&word), &mut cache);
        prop_assert_eq!(s1.worlds_replayed, 0);
        prop_assert_eq!(s1.unique_worlds, 29);
        // The scalar request shares (null model, seed) but NOT the
        // generator version: full simulation, no replay.
        let (scalar_cold, s2) =
            prepared.run_batch_cached(std::slice::from_ref(&scalar), &mut cache);
        prop_assert_eq!(s2.worlds_replayed, 0, "scalar must not replay word rows");
        prop_assert_eq!(s2.unique_worlds, 29);
        // Both classes now replay from their own prefixes, bit-identically.
        let (word_warm, s3) = prepared.run_batch_cached(std::slice::from_ref(&word), &mut cache);
        prop_assert_eq!(s3.unique_worlds, 0);
        prop_assert_eq!(s3.worlds_replayed, 29);
        prop_assert_eq!(&word_warm, &word_cold);
        let (scalar_warm, s4) =
            prepared.run_batch_cached(std::slice::from_ref(&scalar), &mut cache);
        prop_assert_eq!(s4.unique_worlds, 0);
        prop_assert_eq!(&scalar_warm, &scalar_cold);
        // And the streams themselves are genuinely different.
        prop_assert_ne!(&word_cold[0].simulated, &scalar_cold[0].simulated);
        // Both stay bit-identical to standalone audits of their version.
        prop_assert_eq!(&word_cold[0], &Auditor::new(word.apply_to(base))
            .audit(&outcomes, &regions).unwrap());
        prop_assert_eq!(&scalar_cold[0], &Auditor::new(scalar.apply_to(base))
            .audit(&outcomes, &regions).unwrap());
    }
}

/// (b) Statistical equivalence of the generators: `Word` Bernoulli
/// world totals follow the same Binomial(N, ρ̂) law as `Scalar` ones —
/// matching mean and variance, and a two-sample Kolmogorov–Smirnov
/// distance within the deterministic-seed bound.
#[test]
fn word_bernoulli_totals_match_the_scalar_binomial_law() {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for i in 0..4000usize {
        points.push(Point::new((i % 64) as f64, (i / 64) as f64));
        labels.push(i % 10 < 3); // ρ̂ = 0.3
    }
    let outcomes = SpatialOutcomes::new(points, labels).unwrap();
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
    let engine = ScanEngine::build(&outcomes, &regions, CountingStrategy::Blocked).unwrap();
    let n = outcomes.len() as f64;
    let rho = outcomes.rate();
    let worlds = 400usize;
    let totals = |worldgen: WorldGen| -> Vec<f64> {
        (0..worlds)
            .map(|w| {
                let mut rng = world_rng(77, w as u64);
                engine
                    .generate_world_with(NullModel::Bernoulli, worldgen, &mut rng)
                    .count_ones() as f64
            })
            .collect()
    };
    let scalar = totals(WorldGen::Scalar);
    let word = totals(WorldGen::Word);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var = |v: &[f64]| {
        let m = mean(v);
        v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
    };
    let expected_mean = n * rho;
    let expected_var = n * rho * (1.0 - rho);
    let sd_of_mean = (expected_var / worlds as f64).sqrt();
    for (name, sample) in [("scalar", &scalar), ("word", &word)] {
        let m = mean(sample);
        assert!(
            (m - expected_mean).abs() < 5.0 * sd_of_mean,
            "{name} mean {m} vs binomial {expected_mean}"
        );
        let v = var(sample);
        assert!(
            v > 0.5 * expected_var && v < 1.6 * expected_var,
            "{name} variance {v} vs binomial {expected_var}"
        );
    }
    // Two-sample KS distance between the empirical total distributions.
    let mut a = scalar.clone();
    let mut b = word.clone();
    a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    b.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let grid: Vec<f64> = a.iter().chain(&b).copied().collect();
    let cdf = |sorted: &[f64], x: f64| -> f64 {
        sorted.partition_point(|&v| v <= x) as f64 / sorted.len() as f64
    };
    let ks = grid
        .iter()
        .map(|&x| (cdf(&a, x) - cdf(&b, x)).abs())
        .fold(0.0f64, f64::max);
    // α = 0.001 critical value for n = m = 400 is ~0.138.
    assert!(
        ks < 0.138,
        "KS distance {ks} between scalar and word totals"
    );
}

/// The serving stack end to end: mixed Scalar/Word batches through an
/// `AuditService` session stay bit-identical to standalone audits and
/// account their world classes separately.
#[test]
fn mixed_worldgen_service_batches_are_bit_identical_and_separately_cached() {
    use spatial_fairness::serve::AuditService;
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for i in 0..1500usize {
        points.push(Point::new((i % 50) as f64 / 5.0, (i / 50) as f64 / 3.0));
        labels.push((i * 7 + i / 13) % 5 < 2);
    }
    let outcomes = SpatialOutcomes::new(points, labels).unwrap();
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
    let base = AuditConfig::new(0.05).with_worlds(49).with_seed(9);
    let mut service = AuditService::new();
    let handle = service.register(&outcomes, &regions, base).unwrap();
    let scalar = AuditRequest::from_config(&base).with_worldgen(WorldGen::Scalar);
    let requests = [
        scalar,
        scalar.with_worldgen(WorldGen::Word),
        scalar
            .with_worldgen(WorldGen::Word)
            .with_direction(Direction::High),
        scalar.with_mc_strategy(McStrategy::EarlyStop { batch_size: 8 }),
    ];
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| service.submit(handle, *r).unwrap())
        .collect();
    service.flush();
    // Scalar class + word class: 49 worlds each (the word directions
    // share one stream; the early stopper rides the scalar stream).
    assert_eq!(service.stats().unique_worlds, 2 * 49);
    for (request, ticket) in requests.iter().zip(tickets) {
        let response = service.take(ticket).unwrap();
        let expected = Auditor::new(request.apply_to(base))
            .audit(&outcomes, &regions)
            .unwrap();
        assert_eq!(response.report, expected, "request {request:?}");
    }
    // Warm repeats of both versions replay from their own classes.
    let before = service.stats().unique_worlds;
    for request in &requests {
        service.submit(handle, *request).unwrap();
    }
    service.flush();
    assert_eq!(service.stats().unique_worlds, before);
}
