//! Sharded-engine equivalence: the full audit pipeline under any
//! shard count must be **bit-identical** to the unsharded engine —
//! every τ, p-value, critical value, finding, and simulated-world
//! prefix — across every index backend, every explicit counting
//! strategy, and both world-generation versions, sequential and
//! parallel alike. Sharding (like the backend and the parallel knob)
//! is a pure execution-layout choice; only the `shards` field of the
//! embedded config may differ.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::{CountingStrategy, IndexBackend, NullModel, Shards, WorldGen};

/// Arbitrary outcome sets with both classes present.
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    prop::collection::vec(((0.0..10.0f64), (0.0..10.0f64), any::<bool>()), 80..300).prop_map(
        |mut rows| {
            rows[0].2 = false;
            rows[1].2 = true;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect::<Vec<bool>>();
            SpatialOutcomes::new(points, labels).unwrap()
        },
    )
}

/// Audits `outcomes` with `config` plus the given shard count and
/// returns the report with the shard knob normalised away, so reports
/// from different shard counts can be compared with `==`.
fn audit_with_shards(
    outcomes: &SpatialOutcomes,
    regions: &RegionSet,
    config: AuditConfig,
    shards: Shards,
) -> AuditReport {
    let mut report = Auditor::new(config.with_shards(shards))
        .audit(outcomes, regions)
        .unwrap();
    report.config.shards = Shards::Auto;
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full matrix: 5 backends x 3 explicit strategies x 2
    /// worldgens, each audited unsharded and with several shard
    /// counts (including more shards than label words, which clamps).
    #[test]
    fn sharded_audits_are_bit_identical_across_the_matrix(
        outcomes in arb_outcomes(),
        seed in 0u64..200,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        for backend in IndexBackend::ALL {
            for strategy in [
                CountingStrategy::Membership,
                CountingStrategy::Requery,
                CountingStrategy::Blocked,
            ] {
                for worldgen in [WorldGen::Scalar, WorldGen::Word] {
                    let config = AuditConfig::new(0.05)
                        .with_worlds(19)
                        .with_seed(seed)
                        .with_backend(backend)
                        .with_strategy(strategy)
                        .with_worldgen(worldgen);
                    let unsharded =
                        audit_with_shards(&outcomes, &regions, config, Shards::Fixed(1));
                    for k in [2usize, 3, 64] {
                        let sharded = audit_with_shards(
                            &outcomes,
                            &regions,
                            config,
                            Shards::Fixed(k),
                        );
                        prop_assert_eq!(
                            &unsharded,
                            &sharded,
                            "{} {:?} {:?} diverged at {} shards",
                            backend,
                            strategy,
                            worldgen,
                            k
                        );
                    }
                }
            }
        }
    }

    /// Sequential vs parallel execution under sharding: all four
    /// combinations of (parallel, sharded) produce the same bytes,
    /// for both null models.
    #[test]
    fn parallel_and_sequential_sharded_runs_agree(
        outcomes in arb_outcomes(),
        seed in 0u64..200,
        permutation in any::<bool>(),
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let null_model = if permutation {
            NullModel::Permutation
        } else {
            NullModel::Bernoulli
        };
        let config = AuditConfig::new(0.05)
            .with_worlds(19)
            .with_seed(seed)
            .with_strategy(CountingStrategy::Blocked)
            .with_null_model(null_model);
        let mut reports = vec![
            audit_with_shards(&outcomes, &regions, config, Shards::Fixed(1)),
            audit_with_shards(&outcomes, &regions, config, Shards::Fixed(4)),
            audit_with_shards(&outcomes, &regions, config.sequential(), Shards::Fixed(1)),
            audit_with_shards(&outcomes, &regions, config.sequential(), Shards::Fixed(4)),
        ];
        for report in &mut reports {
            report.config.parallel = true;
        }
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
        prop_assert_eq!(&reports[0], &reports[3]);
    }
}

/// The `Shards::Auto` default resolves to whatever the machine offers
/// and still reproduces the `Fixed(1)` bytes.
#[test]
fn auto_sharding_matches_fixed_one() {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for i in 0..1100usize {
        points.push(Point::new((i % 40) as f64 / 4.0, (i / 40) as f64 / 3.0));
        labels.push((i * 11 + i / 7) % 4 == 0);
    }
    let outcomes = SpatialOutcomes::new(points, labels).unwrap();
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
    let config = AuditConfig::new(0.05)
        .with_worlds(49)
        .with_seed(13)
        .with_strategy(CountingStrategy::Blocked);
    let auto = audit_with_shards(&outcomes, &regions, config, Shards::Auto);
    let one = audit_with_shards(&outcomes, &regions, config, Shards::Fixed(1));
    assert_eq!(auto, one);
}
