//! Property-based integration tests over the whole pipeline.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::identify::select_non_overlapping;
use spatial_fairness::scan::CountingStrategy;

/// Arbitrary small outcome sets guaranteed to contain both classes.
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    prop::collection::vec(((0.0..10.0f64), (0.0..10.0f64), any::<bool>()), 20..200).prop_map(
        |mut rows| {
            // Force both classes to exist so the audit is non-degenerate.
            rows[0].2 = true;
            rows[1].2 = false;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect();
            SpatialOutcomes::new(points, labels).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn audit_invariants_hold_on_arbitrary_data(
        outcomes in arb_outcomes(),
        nx in 2usize..8,
        ny in 2usize..8,
        seed in 0u64..1000,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), nx, ny);
        let config = AuditConfig::new(0.05).with_worlds(39).with_seed(seed);
        let report = Auditor::new(config).audit(&outcomes, &regions).unwrap();

        // p-value bounds: k/w with w = 40.
        prop_assert!(report.p_value >= 1.0 / 40.0 - 1e-12);
        prop_assert!(report.p_value <= 1.0);
        // tau is the max over a set including empty regions -> >= 0.
        prop_assert!(report.tau >= 0.0);
        // findings: significant, sorted, consistent counts.
        let mut prev = f64::INFINITY;
        for f in &report.findings {
            prop_assert!(f.llr > report.critical_value);
            prop_assert!(f.llr <= prev + 1e-12);
            prev = f.llr;
            prop_assert!(f.p <= f.n);
            prop_assert!(f.n <= report.n_total);
        }
        // Verdict consistent with p-value.
        prop_assert_eq!(report.is_unfair(), report.p_value <= 0.05);
    }

    #[test]
    fn audit_is_deterministic_and_strategy_independent(
        outcomes in arb_outcomes(),
        seed in 0u64..100,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
        let base = AuditConfig::new(0.1).with_worlds(19).with_seed(seed);
        let a = Auditor::new(base).audit(&outcomes, &regions).unwrap();
        let b = Auditor::new(base).audit(&outcomes, &regions).unwrap();
        prop_assert_eq!(&a, &b);
        let req = Auditor::new(base.with_strategy(CountingStrategy::Requery))
            .audit(&outcomes, &regions)
            .unwrap();
        prop_assert_eq!(a.simulated, req.simulated);
        prop_assert_eq!(a.tau, req.tau);
    }

    #[test]
    fn label_flip_preserves_two_sided_tau(outcomes in arb_outcomes(), seed in 0u64..100) {
        // Swapping the positive/negative convention must not change the
        // two-sided statistic (it is direction-free).
        let flipped = SpatialOutcomes::new(
            outcomes.points().to_vec(),
            outcomes.labels().iter().map(|&l| !l).collect(),
        )
        .unwrap();
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
        let config = AuditConfig::new(0.1).with_worlds(19).with_seed(seed);
        let a = Auditor::new(config).audit(&outcomes, &regions).unwrap();
        let b = Auditor::new(config).audit(&flipped, &regions).unwrap();
        prop_assert!((a.tau - b.tau).abs() < 1e-9, "{} vs {}", a.tau, b.tau);
    }

    #[test]
    fn non_overlapping_selection_is_sound(outcomes in arb_outcomes(), seed in 0u64..100) {
        let centers: Vec<Point> =
            (0..5).map(|i| Point::new(1.0 + 2.0 * i as f64, 5.0)).collect();
        let regions = RegionSet::squares(centers, &[0.5, 1.5, 3.0]);
        let config = AuditConfig::new(0.2).with_worlds(19).with_seed(seed);
        let report = Auditor::new(config).audit(&outcomes, &regions).unwrap();
        let kept = select_non_overlapping(&report.findings);
        // Pairwise disjoint and a subset of the findings.
        for i in 0..kept.len() {
            prop_assert!(report.findings.contains(&kept[i]));
            for j in (i + 1)..kept.len() {
                prop_assert!(!kept[i].region.may_intersect(&kept[j].region));
            }
        }
    }

    #[test]
    fn meanvar_is_invariant_to_observation_order(
        outcomes in arb_outcomes(),
        nx in 2usize..6,
        ny in 2usize..6,
    ) {
        let p = Partitioning::regular(outcomes.expanded_bounding_box(), nx, ny);
        let forward = MeanVar::compute(&outcomes, std::slice::from_ref(&p)).mean_variance;
        // Reverse the observation order.
        let reversed = SpatialOutcomes::new(
            outcomes.points().iter().rev().copied().collect(),
            outcomes.labels().iter().rev().copied().collect(),
        )
        .unwrap();
        let backward = MeanVar::compute(&reversed, &[p]).mean_variance;
        prop_assert!((forward - backward).abs() < 1e-12);
    }
}
