//! Kernel-selection equivalence: the full audit pipeline under every
//! [`KernelSelect`] must be **bit-identical** to the pinned scalar
//! kernel — every τ, p-value, critical value, finding, and
//! simulated-world prefix — sequential and parallel, unsharded and
//! sharded, across both world-generation versions. The kernel (like
//! shards and the parallel knob) is a pure execution choice; counts
//! are exact integers under every kernel, so only the `kernel` field
//! of the embedded config may differ between reports.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::{CountingStrategy, KernelSelect, NullModel, Shards, WorldGen};

/// Arbitrary outcome sets with both classes present.
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    prop::collection::vec(((0.0..10.0f64), (0.0..10.0f64), any::<bool>()), 80..300).prop_map(
        |mut rows| {
            rows[0].2 = false;
            rows[1].2 = true;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect::<Vec<bool>>();
            SpatialOutcomes::new(points, labels).unwrap()
        },
    )
}

/// Audits `outcomes` with `config` plus the given kernel selection
/// and returns the report with the kernel knob normalised away, so
/// reports from different kernels can be compared with `==`.
fn audit_with_kernel(
    outcomes: &SpatialOutcomes,
    regions: &RegionSet,
    config: AuditConfig,
    kernel: KernelSelect,
) -> AuditReport {
    let mut report = Auditor::new(config.with_kernel(kernel))
        .audit(outcomes, regions)
        .unwrap();
    report.config.kernel = KernelSelect::Auto;
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The matrix the satellite demands: every kernel selection ×
    /// {sequential, parallel} × {unsharded, sharded}, on blocked
    /// engines under both worldgen versions — all bit-identical to
    /// the scalar kernel's bytes.
    #[test]
    fn kernel_selections_are_bit_identical_across_the_matrix(
        outcomes in arb_outcomes(),
        seed in 0u64..200,
        permutation in any::<bool>(),
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
        let null_model = if permutation {
            NullModel::Permutation
        } else {
            NullModel::Bernoulli
        };
        for worldgen in [WorldGen::Scalar, WorldGen::Word] {
            let base = AuditConfig::new(0.05)
                .with_worlds(19)
                .with_seed(seed)
                .with_strategy(CountingStrategy::Blocked)
                .with_null_model(null_model)
                .with_worldgen(worldgen);
            for shards in [Shards::Fixed(1), Shards::Fixed(4)] {
                for parallel in [false, true] {
                    let config = if parallel {
                        base.with_shards(shards)
                    } else {
                        base.with_shards(shards).sequential()
                    };
                    let reference =
                        audit_with_kernel(&outcomes, &regions, config, KernelSelect::Scalar);
                    for select in KernelSelect::ALL {
                        let report = audit_with_kernel(&outcomes, &regions, config, select);
                        prop_assert_eq!(
                            &report,
                            &reference,
                            "{} diverged from scalar ({:?}, {:?}, parallel={})",
                            select,
                            worldgen,
                            shards,
                            parallel
                        );
                    }
                }
            }
        }
    }
}

/// Non-blocked strategies carry the kernel knob inertly: the audit is
/// byte-identical whatever the selection, because scalar membership
/// replay and requery counting have no dense word ranges to popcount.
#[test]
fn kernel_knob_is_inert_for_non_blocked_strategies() {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for i in 0..600usize {
        points.push(Point::new((i % 30) as f64 / 3.0, (i / 30) as f64 / 2.0));
        labels.push((i * 7 + i / 11) % 3 == 0);
    }
    let outcomes = SpatialOutcomes::new(points, labels).unwrap();
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 3, 3);
    for strategy in [CountingStrategy::Membership, CountingStrategy::Requery] {
        let config = AuditConfig::new(0.05)
            .with_worlds(29)
            .with_seed(11)
            .with_strategy(strategy);
        let reference = audit_with_kernel(&outcomes, &regions, config, KernelSelect::Scalar);
        for select in KernelSelect::ALL {
            let report = audit_with_kernel(&outcomes, &regions, config, select);
            assert_eq!(report, reference, "{select} diverged under {strategy:?}");
        }
    }
}
