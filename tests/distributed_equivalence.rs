//! Wire-transcript identity for the distributed shard service: the
//! exact JSONL response lines the in-process `AuditService` prints for
//! a mixed request stream must also come out — byte for byte, in the
//! same order — when the same service routes its world evaluation
//! through a [`DistributedEvaluator`] over real shard-worker sockets,
//! healthy or faulted. This is the library-level twin of the CI leg
//! that diffs `experiments serve --coordinator` output against the
//! stdin path.

use sfcluster::{CoordinatorConfig, DistributedEvaluator, FaultPlan, ShardWorker, SpanCounter};
use sfnet::SystemClock;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::prepared::WorldEvaluator;
use spatial_fairness::scan::{CountingStrategy, NullModel, WorldGen};
use spatial_fairness::serve::{RequestEnvelope, ResponseEnvelope};
use std::str::FromStr;
use std::sync::Arc;

/// Deterministic unfair layout with both classes present everywhere.
fn outcomes(n: usize) -> SpatialOutcomes {
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 17;
        let x = (h % 1000) as f64 / 100.0;
        let y = ((h >> 10) % 1000) as f64 / 100.0;
        points.push(Point::new(x, y));
        let five = h.is_multiple_of(5);
        labels.push(if x < 5.0 { !five } else { five });
    }
    SpatialOutcomes::new(points, labels).unwrap()
}

fn grid() -> RegionSet {
    RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
}

/// Coordinator modes require the blocked engine (the shard protocol is
/// word-window partials), so the base pins it explicitly.
fn base() -> AuditConfig {
    AuditConfig::new(0.05)
        .with_worlds(40)
        .with_seed(9)
        .with_strategy(CountingStrategy::Blocked)
}

fn line_for(handle: u64, request: AuditRequest) -> String {
    RequestEnvelope::new(DatasetHandle(handle), request).to_json()
}

/// The request stream: cold audits across worldgens / statistics /
/// null models, a warm cache repeat, a GeoJSON rendering, an unknown
/// handle, and a malformed line — every response-envelope shape the
/// wire can produce (stats probes excluded: their payloads are
/// timing-dependent by design and never part of a diffable transcript).
fn mixed_stream() -> Vec<String> {
    let r = AuditRequest::new(0.05).with_worlds(40).with_seed(1);
    vec![
        line_for(0, r),
        line_for(0, r.with_worldgen(WorldGen::Scalar)),
        line_for(0, r.with_statistic(Statistic::EqualOppTpr)),
        line_for(0, r.with_null_model(NullModel::Permutation)),
        line_for(0, r), // warm repeat: answered from the world cache
        RequestEnvelope::new(
            DatasetHandle(0),
            r.with_direction(Direction::High).with_seed(2),
        )
        .with_geojson()
        .to_json(),
        line_for(9, r), // unknown handle
        String::from("not json"),
    ]
}

/// What `experiments serve` prints for the stream: submit every line,
/// flush at EOF, one envelope per line in input order.
fn transcript(service: &mut AuditService, lines: &[String]) -> Vec<String> {
    let fates: Vec<_> = lines.iter().map(|l| service.submit_json(l)).collect();
    service.flush();
    fates
        .into_iter()
        .map(|fate| match fate {
            Ok(ticket) => {
                let wants_geojson = service.geojson_requested(ticket);
                let envelope = ResponseEnvelope::ready(service.take(ticket).unwrap());
                if wants_geojson {
                    envelope.with_geojson_findings()
                } else {
                    envelope
                }
                .to_json()
            }
            Err(error) => ResponseEnvelope::rejected(&error).to_json(),
        })
        .collect()
}

/// A service whose drains run through a coordinator over `plans.len()`
/// shard workers (one fault plan each; `""` = healthy). Returns the
/// workers too so they outlive the service.
fn distributed_service(
    config: CoordinatorConfig,
    plans: &[&str],
) -> (AuditService, Vec<ShardWorker>, Arc<DistributedEvaluator>) {
    let o = outcomes(1200);
    let regions = grid();
    let prepared = Arc::new(PreparedAudit::prepare(&o, &regions, base()).unwrap());
    let workers: Vec<ShardWorker> = plans
        .iter()
        .map(|plan| {
            let counter = Arc::new(SpanCounter::new(prepared.clone()).unwrap());
            let fault = Arc::new(FaultPlan::from_str(plan).unwrap());
            ShardWorker::bind("127.0.0.1:0", counter, fault).unwrap()
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let evaluator = Arc::new(
        DistributedEvaluator::new(prepared, &addrs, config, Arc::new(SystemClock::new())).unwrap(),
    );
    let mut service =
        AuditService::new().with_evaluator(Arc::clone(&evaluator) as Arc<dyn WorldEvaluator>);
    let handle = service.register(&o, &regions, base()).unwrap();
    assert_eq!(handle, DatasetHandle(0));
    (service, workers, evaluator)
}

fn reference_transcript(lines: &[String]) -> Vec<String> {
    let mut service = AuditService::new();
    service.register(&outcomes(1200), &grid(), base()).unwrap();
    transcript(&mut service, lines)
}

#[test]
fn healthy_coordinator_transcript_is_byte_identical_to_inprocess() {
    let lines = mixed_stream();
    let expected = reference_transcript(&lines);
    assert_eq!(expected.len(), lines.len(), "one response per line");

    let (mut service, workers, evaluator) =
        distributed_service(CoordinatorConfig::default(), &["", ""]);
    let actual = transcript(&mut service, &lines);
    assert_eq!(actual, expected, "distributed wire bytes drifted");

    let stats = evaluator.stats();
    assert!(stats.completed_remote > 0, "no spans went over the wire");
    assert_eq!(
        stats.degraded_local_spans, 0,
        "healthy run degraded: {stats:?}"
    );
    drop(workers);
}

#[test]
fn killed_worker_transcript_is_byte_identical_to_inprocess() {
    let lines = mixed_stream();
    let expected = reference_transcript(&lines);

    // Worker 0 dies after two requests: its spans must re-dispatch to
    // the survivors (or degrade locally) without touching a byte.
    let config = CoordinatorConfig {
        connect_timeout_ms: 200,
        backoff_base_ms: 1,
        ..CoordinatorConfig::default()
    };
    let (mut service, workers, evaluator) = distributed_service(config, &["kill-after=2", "", ""]);
    let actual = transcript(&mut service, &lines);
    assert_eq!(actual, expected, "faulted wire bytes drifted");

    assert!(workers[0].is_killed(), "the kill fault never fired");
    let stats = evaluator.stats();
    assert!(
        stats.redispatches > 0 || stats.degraded_local_spans > 0,
        "the kill never forced a recovery: {stats:?}"
    );
}

#[test]
fn all_dead_coordinator_degrades_locally_with_identical_transcript() {
    let lines = mixed_stream();
    let expected = reference_transcript(&lines);

    // An address nothing listens on: every dispatch fails fast and the
    // coordinator recomputes every span locally — same bytes, louder
    // failure accounting.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let o = outcomes(1200);
    let regions = grid();
    let prepared = Arc::new(PreparedAudit::prepare(&o, &regions, base()).unwrap());
    let evaluator = Arc::new(
        DistributedEvaluator::new(
            prepared,
            &[dead_addr],
            CoordinatorConfig {
                connect_timeout_ms: 50,
                backoff_base_ms: 1,
                max_attempts: 1,
                dead_after: 1,
                ..CoordinatorConfig::default()
            },
            Arc::new(SystemClock::new()),
        )
        .unwrap(),
    );
    let mut service =
        AuditService::new().with_evaluator(Arc::clone(&evaluator) as Arc<dyn WorldEvaluator>);
    service.register(&o, &regions, base()).unwrap();
    let actual = transcript(&mut service, &lines);
    assert_eq!(actual, expected, "degraded wire bytes drifted");
    assert!(
        evaluator.stats().degraded_local_spans > 0,
        "never degraded: {:?}",
        evaluator.stats()
    );
}
