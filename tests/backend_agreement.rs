//! Cross-backend agreement: the index backend and counting strategy
//! are pure performance knobs — every combination must produce
//! **bit-identical** audits. These tests pin that contract end to end
//! through the public API, over mixed region shapes (rectangles and
//! circles) that exercise every backend's pruning paths.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::{run_suite, CountingStrategy, IndexBackend, McStrategy};

/// Clustered, mildly unfair data: three blobs, one with a depressed
/// positive rate.
fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers = [(2.0, 2.0, 0.55), (7.0, 7.0, 0.55), (8.0, 2.0, 0.25)];
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let (cx, cy, rate) = centers[rng.gen_range(0..centers.len())];
        points.push(sfgeo::Point::new(
            cx + rng.gen_range(-1.5..1.5),
            cy + rng.gen_range(-1.5..1.5),
        ));
        labels.push(rng.gen_bool(rate));
    }
    SpatialOutcomes::new(points, labels).unwrap()
}

/// Grid cells plus circles: regions that stress rectangle fast paths
/// and exact circle containment alike.
fn mixed_regions(outcomes: &SpatialOutcomes) -> RegionSet {
    let bb = outcomes.expanded_bounding_box();
    let mut regions: Vec<sfgeo::Region> = RegionSet::regular_grid(bb, 5, 5).regions().to_vec();
    for (cx, cy) in [(2.0, 2.0), (7.0, 7.0), (8.0, 2.0), (5.0, 5.0)] {
        regions.push(sfgeo::Circle::new(sfgeo::Point::new(cx, cy), 1.2).into());
    }
    RegionSet::from_regions(regions)
}

fn strategies() -> [CountingStrategy; 4] {
    CountingStrategy::ALL
}

#[test]
fn every_backend_and_strategy_yields_bit_identical_reports() {
    let o = outcomes(3000, 1);
    let regions = mixed_regions(&o);
    let base = AuditConfig::new(0.05).with_worlds(99).with_seed(3);
    let reference = Auditor::new(base).audit(&o, &regions).unwrap();
    assert!(reference.is_unfair(), "p={}", reference.p_value);

    for backend in IndexBackend::ALL {
        for strategy in strategies() {
            let cfg = base.with_backend(backend).with_strategy(strategy);
            let report = Auditor::new(cfg).audit(&o, &regions).unwrap();
            assert_eq!(report.tau, reference.tau, "{backend}/{strategy:?}");
            assert_eq!(report.p_value, reference.p_value, "{backend}/{strategy:?}");
            assert_eq!(
                report.critical_value, reference.critical_value,
                "{backend}/{strategy:?}"
            );
            assert_eq!(
                report.findings, reference.findings,
                "{backend}/{strategy:?}"
            );
            assert_eq!(
                report.simulated, reference.simulated,
                "{backend}/{strategy:?}"
            );
        }
    }
}

#[test]
fn backend_agreement_holds_under_permutation_null_and_directions() {
    use spatial_fairness::scan::{Direction, NullModel};
    let o = outcomes(1500, 2);
    let regions = mixed_regions(&o);
    for direction in [Direction::TwoSided, Direction::Low, Direction::High] {
        let base = AuditConfig::new(0.05)
            .with_worlds(49)
            .with_seed(11)
            .with_direction(direction)
            .with_null_model(NullModel::Permutation);
        let reference = Auditor::new(base).audit(&o, &regions).unwrap();
        for backend in IndexBackend::ALL {
            let report = Auditor::new(base.with_backend(backend))
                .audit(&o, &regions)
                .unwrap();
            assert_eq!(report.tau, reference.tau, "{backend} {direction}");
            assert_eq!(report.p_value, reference.p_value, "{backend} {direction}");
            assert_eq!(report.findings, reference.findings, "{backend} {direction}");
        }
    }
}

#[test]
fn suite_reports_are_backend_invariant() {
    let o = outcomes(1200, 4);
    let regions = mixed_regions(&o);
    let base = AuditConfig::new(0.05).with_worlds(49).with_seed(5);
    let reference = run_suite(base, &o, &regions).unwrap();
    for backend in IndexBackend::ALL {
        let suite = run_suite(base.with_backend(backend), &o, &regions).unwrap();
        for (dir, ref_dir) in [
            (&suite.two_sided, &reference.two_sided),
            (&suite.low, &reference.low),
            (&suite.high, &reference.high),
        ] {
            assert_eq!(dir.report.tau, ref_dir.report.tau, "{backend}");
            assert_eq!(dir.report.p_value, ref_dir.report.p_value, "{backend}");
            assert_eq!(dir.report.findings, ref_dir.report.findings, "{backend}");
            assert_eq!(dir.evidence, ref_dir.evidence, "{backend}");
        }
    }
}

#[test]
fn early_stop_is_backend_invariant_and_verdict_preserving() {
    let o = outcomes(2500, 6);
    let regions = mixed_regions(&o);
    let base = AuditConfig::new(0.05).with_worlds(199).with_seed(8);
    let full = Auditor::new(base).audit(&o, &regions).unwrap();
    let mut stopped_reports = Vec::new();
    for backend in IndexBackend::ALL {
        let cfg = base
            .with_backend(backend)
            .with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 });
        let report = Auditor::new(cfg).audit(&o, &regions).unwrap();
        assert_eq!(report.verdict(), full.verdict(), "{backend}");
        // Evaluated worlds are a prefix of the full run's.
        assert_eq!(
            full.simulated[..report.worlds_evaluated],
            report.simulated[..],
            "{backend}"
        );
        stopped_reports.push((backend, report));
    }
    // All backends stop at the same batch with the same truncated
    // distribution.
    let (_, first) = &stopped_reports[0];
    for (backend, report) in &stopped_reports[1..] {
        assert_eq!(report.worlds_evaluated, first.worlds_evaluated, "{backend}");
        assert_eq!(report.p_value, first.p_value, "{backend}");
    }
}

#[test]
fn auto_strategy_report_matches_reference_json() {
    // Belt and braces: Auto must not even perturb serialization-level
    // content (beyond the recorded strategy knob itself).
    let o = outcomes(900, 9);
    let regions = mixed_regions(&o);
    let base = AuditConfig::new(0.05).with_worlds(49).with_seed(13);
    let reference = Auditor::new(base).audit(&o, &regions).unwrap();
    let mut auto = Auditor::new(base.with_strategy(CountingStrategy::Auto))
        .audit(&o, &regions)
        .unwrap();
    auto.config.strategy = reference.config.strategy;
    assert_eq!(auto.to_json(), reference.to_json());
}
