//! Pluggable-statistic contracts, pinned end to end.
//!
//! The `TauKernel` refactor threads the per-region test statistic
//! through every execution path — engine fold, fused sweep, shard
//! reduce, world cache, wire. Four contracts keep it honest:
//!
//! 1. **BernoulliLlr is the pre-refactor audit, bit for bit**, on
//!    every backend × counting strategy × world generator × shard
//!    count — the kernel indirection must cost nothing semantically.
//! 2. **Statistics are distinct world-cache classes**: same null
//!    model, seed, and generator under a different statistic must
//!    never replay a cached τ-stream (a cached row stores the
//!    *scored* τ, not the counts).
//! 3. **v1 wire lines replay bit-identically**: request payloads
//!    without a `"statistic"` field decode as Bernoulli LLR, and a
//!    default-statistic request serialises without the field at all.
//! 4. **The new statistics run end to end** through submit → drain
//!    with early stopping, warm world-cache replays, and sharding.

use spatial_fairness::prelude::*;
use spatial_fairness::scan::prepared::ExecutionPlan;
use spatial_fairness::scan::{CountingStrategy, IndexBackend, McStrategy, Shards, WorldGen};

fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
    // Deterministic unfair layout: left half is positive-rich, with a
    // mild hash-mixed sprinkle so no region is degenerate.
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        let x = (h % 1000) as f64 / 100.0;
        let y = ((h >> 10) % 1000) as f64 / 100.0;
        points.push(Point::new(x, y));
        let five = h.is_multiple_of(5);
        labels.push(if x < 5.0 { !five } else { five });
    }
    SpatialOutcomes::new(points, labels).unwrap()
}

fn grid() -> RegionSet {
    RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
}

#[test]
fn bernoulli_llr_is_bit_identical_on_every_execution_path() {
    let o = outcomes(1000, 3);
    let regions = grid();
    let strategies = [
        CountingStrategy::Membership,
        CountingStrategy::Requery,
        CountingStrategy::Blocked,
    ];
    for worldgen in [WorldGen::Scalar, WorldGen::Word] {
        // The reference: default backend/strategy, unsharded, with the
        // statistic left at its default (the pre-refactor fold).
        let base = AuditConfig::new(0.05)
            .with_worlds(49)
            .with_seed(11)
            .with_worldgen(worldgen);
        let reference = Auditor::new(base.with_shards(Shards::Fixed(1)))
            .audit(&o, &regions)
            .unwrap();
        for backend in IndexBackend::ALL {
            for strategy in strategies {
                for shards in [1usize, 4] {
                    let config = base
                        .with_backend(backend)
                        .with_strategy(strategy)
                        .with_shards(Shards::Fixed(shards))
                        .with_statistic(Statistic::BernoulliLlr);
                    let report = Auditor::new(config).audit(&o, &regions).unwrap();
                    let label = format!("{backend}/{strategy:?}/{worldgen:?}/shards={shards}");
                    assert_eq!(report.tau, reference.tau, "{label}");
                    assert_eq!(report.p_value, reference.p_value, "{label}");
                    assert_eq!(report.simulated, reference.simulated, "{label}");
                    assert_eq!(report.findings, reference.findings, "{label}");
                }
            }
        }
    }
}

#[test]
fn statistics_are_distinct_world_classes_and_never_cross_replay() {
    let o = outcomes(800, 7);
    let regions = grid();
    let base = AuditConfig::new(0.05).with_worlds(39).with_seed(5);

    // Plan level: identical knobs except the statistic must split into
    // separate world-sharing groups…
    let request = AuditRequest::from_config(&base);
    let split = ExecutionPlan::new(vec![
        request,
        request.with_statistic(Statistic::EqualOppTpr),
        request.with_statistic(Statistic::MeanResidual),
    ]);
    assert_eq!(split.groups().len(), 3, "one group per statistic");
    // …while a same-statistic pair still shares.
    let shared = ExecutionPlan::new(vec![request, request.with_direction(Direction::High)]);
    assert_eq!(shared.groups().len(), 1);

    // Cache level: a warmed Bernoulli-LLR session must not replay its
    // τ-stream for a different statistic under the same (null model,
    // seed, worldgen).
    let mut service = AuditService::new();
    let handle = service.register(&o, &regions, base).unwrap();
    let llr = service.submit(handle, request).unwrap();
    service.flush();
    let after_llr = *service.stats();
    service.take(llr).unwrap();

    let eo = service
        .submit(handle, request.with_statistic(Statistic::EqualOppTpr))
        .unwrap();
    service.flush();
    let after_eo = *service.stats();
    service.take(eo).unwrap();
    assert!(
        after_eo.unique_worlds > after_llr.unique_worlds,
        "a new statistic must simulate its own worlds, not replay LLR τ"
    );
    assert_eq!(after_eo.cache_hits, after_llr.cache_hits);

    // A strict repeat of the equal-opportunity request IS a cache hit.
    let repeat = service
        .submit(handle, request.with_statistic(Statistic::EqualOppTpr))
        .unwrap();
    service.flush();
    let after_repeat = *service.stats();
    service.take(repeat).unwrap();
    assert_eq!(after_repeat.unique_worlds, after_eo.unique_worlds);
    assert!(after_repeat.cache_hits > after_eo.cache_hits);
}

#[test]
fn v1_wire_lines_replay_bit_identically() {
    let o = outcomes(900, 9);
    let regions = grid();
    let base = AuditConfig::new(0.05).with_worlds(49).with_seed(13);
    let mut service = AuditService::new();
    let handle = service.register(&o, &regions, base).unwrap();

    // A hardcoded v1 request line: no "statistic", no "worldgen" — the
    // pre-refactor wire shape.
    let v1_line = format!(
        "{{\"handle\": {}, \"request\": {{\"alpha\": 0.05, \"worlds\": 49, \"seed\": 13, \
         \"direction\": \"TwoSided\", \"null_model\": \"Bernoulli\", \
         \"mc_strategy\": \"FullBudget\"}}}}",
        handle.0
    );
    let ticket = service.submit_json(&v1_line).unwrap();
    service.flush();
    let report = service.take(ticket).unwrap().report;
    assert_eq!(report.config.statistic, Statistic::BernoulliLlr);
    assert_eq!(report.config.worldgen, WorldGen::Scalar);
    let expected = Auditor::new(
        base.with_worldgen(WorldGen::Scalar)
            .with_statistic(Statistic::BernoulliLlr),
    )
    .audit(&o, &regions)
    .unwrap();
    assert_eq!(report, expected, "v1 lines replay the v1 audit bit for bit");

    // A default-statistic request serialises WITHOUT the field, so
    // today's envelopes are byte-compatible with v1 consumers…
    let request = service.default_request(handle).unwrap();
    let line = spatial_fairness::serve::RequestEnvelope::new(handle, request).to_json();
    assert!(!line.contains("statistic"), "{line}");
    // …and a non-default statistic declares itself on the wire and
    // round-trips.
    let eo_line = spatial_fairness::serve::RequestEnvelope::new(
        handle,
        request.with_statistic(Statistic::EqualOppTpr),
    )
    .to_json();
    assert!(
        eo_line.contains("\"statistic\":\"equal-opp-tpr\""),
        "{eo_line}"
    );
    let back = spatial_fairness::serve::RequestEnvelope::from_json(&eo_line).unwrap();
    assert_eq!(back.request.statistic, Statistic::EqualOppTpr);
}

#[test]
fn new_statistics_run_end_to_end_with_early_stop_cache_and_shards() {
    let o = outcomes(1200, 21);
    let regions = grid();
    for statistic in [Statistic::EqualOppTpr, Statistic::MeanResidual] {
        let base = AuditConfig::new(0.05)
            .with_worlds(99)
            .with_seed(17)
            .with_statistic(statistic)
            .with_shards(Shards::Fixed(4));
        let mut service = AuditService::new();
        let handle = service.register(&o, &regions, base).unwrap();
        let request = service.default_request(handle).unwrap();
        let cold = service.submit(handle, request).unwrap();
        let stopped = service
            .submit(
                handle,
                request.with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }),
            )
            .unwrap();
        service.flush();
        let cold_report = service.take(cold).unwrap().report;
        let stopped_report = service.take(stopped).unwrap().report;
        assert_eq!(cold_report.config.statistic, statistic);
        assert!(cold_report.p_value > 0.0 && cold_report.p_value <= 1.0);
        assert!(cold_report.tau.is_finite());
        // Early stopping evaluates a prefix of the full τ-stream and
        // preserves the verdict.
        assert!(stopped_report.worlds_evaluated <= cold_report.worlds_evaluated);
        assert_eq!(
            cold_report.simulated[..stopped_report.worlds_evaluated],
            stopped_report.simulated[..]
        );
        assert_eq!(stopped_report.verdict(), cold_report.verdict());
        // A repeat is answered warm from the statistic's own cache
        // class: zero new worlds, bit-identical report.
        let before = *service.stats();
        let warm = service.submit(handle, request).unwrap();
        service.flush();
        let after = *service.stats();
        assert_eq!(service.take(warm).unwrap().report, cold_report);
        assert_eq!(after.unique_worlds, before.unique_worlds);
        assert!(after.cache_hits > before.cache_hits);
        // Sharded equals unsharded under the new statistic too.
        let unsharded = Auditor::new(base.with_shards(Shards::Fixed(1)).sequential())
            .audit(&o, &regions)
            .unwrap();
        assert_eq!(cold_report.tau, unsharded.tau, "{statistic}");
        assert_eq!(cold_report.p_value, unsharded.p_value, "{statistic}");
        assert_eq!(cold_report.simulated, unsharded.simulated, "{statistic}");
        assert_eq!(cold_report.findings, unsharded.findings, "{statistic}");
    }

    // On identical binary outcomes the equal-opportunity fold IS the
    // Bernoulli LLR (the conditioning happens upstream in
    // `SpatialOutcomes::from_predictions`), so the two reports differ
    // only in the config's statistic tag. MeanResidual genuinely
    // rescores.
    let base = AuditConfig::new(0.05).with_worlds(49).with_seed(29);
    let llr = Auditor::new(base).audit(&o, &regions).unwrap();
    let mut eo = Auditor::new(base.with_statistic(Statistic::EqualOppTpr))
        .audit(&o, &regions)
        .unwrap();
    assert_eq!(eo.config.statistic, Statistic::EqualOppTpr);
    eo.config.statistic = Statistic::BernoulliLlr;
    assert_eq!(eo, llr);
    let mr = Auditor::new(base.with_statistic(Statistic::MeanResidual))
        .audit(&o, &regions)
        .unwrap();
    assert_ne!(mr.tau, llr.tau, "mean-residual is a different score");
}
