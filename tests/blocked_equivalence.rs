//! Bit-identity of blocked world counting across the whole engine
//! stack: for every index backend, `blocked == membership == requery`
//! — for the real-world scan, single-direction `eval_world`, and the
//! multi-direction `eval_world_into` fold batched serving runs on.
//!
//! Each engine generates its own worlds (blocked engines store them in
//! Morton layout), so the property under test is exactly the serving
//! layer's invariant: per-world `τ` values are a function of `(seed,
//! null model, direction)` only, never of the counting strategy or
//! backend.

use proptest::prelude::*;
use spatial_fairness::prelude::*;
use spatial_fairness::scan::engine::ScanEngine;
use spatial_fairness::scan::{CountingStrategy, IndexBackend, NullModel};

/// Arbitrary outcome sets with both classes present.
fn arb_outcomes() -> impl Strategy<Value = SpatialOutcomes> {
    prop::collection::vec(((0.0..12.0f64), (0.0..12.0f64), any::<bool>()), 40..300).prop_map(
        |mut rows| {
            rows[0].2 = true;
            rows[1].2 = false;
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect();
            SpatialOutcomes::new(points, labels).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blocked_matches_scalar_strategies_across_backends(
        outcomes in arb_outcomes(),
        nx in 2usize..6,
        ny in 2usize..6,
        seed in 0u64..500,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), nx, ny);
        let reference =
            ScanEngine::build(&outcomes, &regions, CountingStrategy::Membership).unwrap();
        let ref_real = reference.scan_real(Direction::TwoSided);
        let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
        for backend in IndexBackend::ALL {
            let blocked = ScanEngine::build_with(
                &outcomes,
                &regions,
                backend,
                CountingStrategy::Blocked,
            )
            .unwrap();
            let requery = ScanEngine::build_with(
                &outcomes,
                &regions,
                backend,
                CountingStrategy::Requery,
            )
            .unwrap();
            let real = blocked.scan_real(Direction::TwoSided);
            prop_assert_eq!(&real.counts, &ref_real.counts);
            prop_assert_eq!(&real.llrs, &ref_real.llrs);
            prop_assert_eq!(real.tau, ref_real.tau);

            for (w, null_model) in [NullModel::Bernoulli, NullModel::Permutation]
                .into_iter()
                .enumerate()
            {
                let mut rng = spatial_fairness::stats::rng::world_rng(seed, w as u64);
                let ref_world = reference.generate_world(null_model, &mut rng);
                let mut rng = spatial_fairness::stats::rng::world_rng(seed, w as u64);
                let blk_world = blocked.generate_world(null_model, &mut rng);
                let mut rng = spatial_fairness::stats::rng::world_rng(seed, w as u64);
                let req_world = requery.generate_world(null_model, &mut rng);

                // Same world, different storage layout for blocked.
                prop_assert_eq!(ref_world.count_ones(), blk_world.count_ones());
                prop_assert_eq!(&ref_world, &req_world);

                let mut ref_taus = [0.0; 3];
                let mut blk_taus = [0.0; 3];
                let mut req_taus = [0.0; 3];
                reference.eval_world_into(&ref_world, &dirs, &mut ref_taus);
                blocked.eval_world_into(&blk_world, &dirs, &mut blk_taus);
                requery.eval_world_into(&req_world, &dirs, &mut req_taus);
                prop_assert_eq!(ref_taus, blk_taus, "blocked vs membership, {:?}", backend);
                prop_assert_eq!(ref_taus, req_taus, "requery vs membership, {:?}", backend);

                for &d in &dirs {
                    prop_assert_eq!(
                        blocked.eval_world(&blk_world, d),
                        reference.eval_world(&ref_world, d)
                    );
                }
            }
        }
    }

    #[test]
    fn full_audits_agree_between_blocked_and_membership(
        outcomes in arb_outcomes(),
        seed in 0u64..100,
    ) {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 4, 4);
        let base = AuditConfig::new(0.1).with_worlds(19).with_seed(seed);
        let mem = Auditor::new(base.with_strategy(CountingStrategy::Membership))
            .audit(&outcomes, &regions)
            .unwrap();
        let mut blk = Auditor::new(base.with_strategy(CountingStrategy::Blocked))
            .audit(&outcomes, &regions)
            .unwrap();
        // The report embeds its config; align the strategy knob so the
        // comparison checks the *results* are bit-identical.
        blk.config.strategy = mem.config.strategy;
        prop_assert_eq!(blk, mem);
    }
}
