//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-rolled `proc_macro` token parsing (no `syn`/`quote` available
//! offline) covering the shapes this workspace derives on:
//!
//! * structs with named fields;
//! * enums with unit variants, newtype variants (`V(T)`), and struct
//!   variants (`V { a: T }`).
//!
//! Generic types are not supported (none of the workspace's serialized
//! types are generic). Enum representation matches serde's external
//! tagging: unit variants serialize as `"Variant"`, data variants as
//! `{"Variant": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(fields)\n\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(inner))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((String::from(\"{f}\"), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bindings} }} => {{\n\
                               let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                               {pushes}\
                               ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(inner))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::get_field(value, \"{f}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name} {{ {inits} }})\n\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Newtype => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::get_field(payload, \"{f}\")?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     match value {{\n\
                       ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::Error::msg(format!(\n\
                           \"unknown {name} variant `{{other}}`\"))),\n\
                       }},\n\
                       ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                           {data_arms}\
                           other => Err(::serde::Error::msg(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                       }}\n\
                       other => Err(::serde::Error::msg(format!(\n\
                         \"expected {name} variant, got {{}}\", other.kind()))),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let body = expect_group(&tokens, &mut i, Delimiter::Brace, &name);
            Shape::Struct {
                name,
                fields: parse_named_fields(body),
            }
        }
        "enum" => {
            let body = expect_group(&tokens, &mut i, Delimiter::Brace, &name);
            Shape::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: expected struct or enum, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

fn expect_group(tokens: &[TokenTree], i: &mut usize, delim: Delimiter, name: &str) -> TokenStream {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.stream()
        }
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body with named fields, found {other:?}"
        ),
    }
}

/// Parses `field: Type, ...` bodies, returning field names in order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive shim: expected `:` after field `{field}`, found {other:?} \
                 (tuple structs are not supported)"
            ),
        }
        fields.push(field);
        // Consume the type: only `<`/`>` need nesting bookkeeping,
        // since parenthesized/bracketed tokens arrive as atomic groups.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let has_top_level_comma = {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let mut depth = 0i32;
                    let mut found = false;
                    for t in &inner {
                        match t {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => found = true,
                            _ => {}
                        }
                    }
                    found
                };
                if has_top_level_comma {
                    panic!(
                        "serde_derive shim: multi-field tuple variant `{name}` is not supported"
                    );
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separator.
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
