//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] plumbing, the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). Determinism is guaranteed *within* this workspace; the
//! exact streams are not intended to be bit-compatible with upstream
//! `rand` (every consumer seeds explicitly, so only internal
//! reproducibility matters).

/// Low-level random number generation: sources of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Fills `dest` with consecutive [`next_u64`](RngCore::next_u64)
    /// outputs. Generators with cheap bulk block output may override
    /// this; an override must emit the exact same words *and* leave the
    /// generator in the exact same state as this default loop.
    fn fill_words(&mut self, dest: &mut [u64]) {
        for word in dest.iter_mut() {
            *word = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_words(&mut self, dest: &mut [u64]) {
        (**self).fill_words(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a 64-bit seed by expanding it with
    /// SplitMix64 (stable across platforms and releases of this shim).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// Unbiased uniform integer in `[0, span)` via Lemire's method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types `Rng::gen_range` can sample uniformly between two bounds.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + (hi - lo) * f64::sample(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo.max(prev_down(hi))
        } else {
            v
        }
    }
    #[inline]
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    #[inline]
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_closed(rng, lo as f64, hi as f64) as f32
    }
}

#[inline]
fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: raw draw is already uniform.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts. The single blanket impl per
/// range shape lets integer literals in ranges infer their type from
/// the call site, matching upstream `rand` 0.8 behavior.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Minimal `prelude` mirroring upstream layout.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            splitmix64(&mut s)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&y));
            let z = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Counter(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_below_covers_support() {
        let mut rng = Counter(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[uniform_below(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
