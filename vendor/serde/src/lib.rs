//! Offline vendored serialization framework.
//!
//! The build environment has no crates.io access, so this crate
//! provides the slice of the `serde` surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (value-based rather than
//! visitor-based), derive macros re-exported from `serde_derive`, and
//! the [`Value`] tree that `serde_json` renders and parses.
//!
//! Design notes:
//! * Numbers keep their integer/float identity ([`Value::U64`],
//!   [`Value::I64`], [`Value::F64`]) so `u64` counters round-trip
//!   exactly; deserialization of floats accepts any numeric value.
//! * Objects are ordered key/value vectors — field order is stable and
//!   equality is structural.
//! * Non-finite floats are preserved (rendered by `serde_json` as
//!   `NaN` / `Infinity` / `-Infinity`), so audit reports containing an
//!   infinite critical value survive a round trip.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number (possibly non-finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An ordered map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes a named field from an object value
/// (used by derived `Deserialize` impls).
pub fn get_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {}", e.message)))
        }
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

/// A [`Value`] serializes as itself, so dynamically assembled JSON
/// (e.g. GeoJSON documents) flows through the same `to_string` path as
/// derived types.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, got {}", value.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| {
                    Error::msg(format!("expected integer, got {}", value.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx; // positional
                            $name::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_identity_preserved() {
        assert_eq!(42u64.to_value(), Value::U64(42));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(3i64.to_value(), Value::U64(3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
    }

    #[test]
    fn float_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::U64(1)).unwrap(), 1.0);
        assert_eq!(f64::from_value(&Value::I64(-2)).unwrap(), -2.0);
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("b"), None);
        assert!(get_field::<u64>(&obj, "b").is_err());
        assert_eq!(get_field::<u64>(&obj, "a").unwrap(), 1);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
