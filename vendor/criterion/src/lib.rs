//! Offline vendored micro-benchmark harness.
//!
//! API-compatible (for this workspace's usage) with `criterion`:
//! [`Criterion`], benchmark groups, [`black_box`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs a short warm-up, then `sample_size`
//! timed samples of an adaptively chosen iteration count, and prints
//! median / mean per-iteration times to stdout.
//!
//! Benches are registered with `harness = false`, so `cargo bench`
//! runs these mains directly; `cargo test --benches` compiles them.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target wall time per benchmark (split across samples).
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(
            &id.label(),
            self.sample_size,
            self.measurement_time,
            None,
            &mut f,
        );
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.throughput,
            &mut f,
        );
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark (name, or name + parameter).
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by its parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.name, p),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::from("<unnamed>"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Work performed per iteration, for reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: find an iteration count so one sample lasts roughly
    // measurement_time / sample_size.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher); // warm-up + calibration probe
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = measurement_time / sample_size.max(1) as u32;
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / median / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<56} median {}  mean {}{rate}",
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.3} s ")
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` compiles and runs bench mains; keep
            // that fast by skipping measurement unless invoked by
            // `cargo bench` (which sets the `--bench` argument).
            let bench_mode = std::env::args().any(|a| a == "--bench");
            let quick = std::env::var_os("CRITERION_QUICK").is_some();
            if bench_mode && !quick {
                $($group();)+
            } else {
                println!("bench binary compiled; run via `cargo bench` to measure");
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("param", 42), |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
