//! Offline vendored property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace's tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple and collection
//! strategies, [`arbitrary::any`], the [`proptest!`] test macro with
//! `proptest_config`, and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case index so it can be re-run), and rejected
//! assumptions count toward the case budget. Case generation is fully
//! deterministic per (test path, case index), so failures are
//! reproducible across runs and machines.

/// Deterministic RNG + config + error types for the test runner.
pub mod test_runner {
    /// Test-runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Property violated.
        Fail(String),
        /// Assumption rejected; the case does not count as a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected case.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Deterministic RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator from a test path and case index.
        pub fn deterministic(test_path: &str, case: u64) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_path.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng {
                state: hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            // Warm up the mixer so nearby seeds decorrelate.
            rng.next_u64();
            rng
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            // 128-bit multiply-shift; bias is negligible for test sizes.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of alternatives.
        ///
        /// # Panics
        /// Panics if `variants` is empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.variants.len() as u64) as usize;
            self.variants[index].generate(rng)
        }
    }

    /// Exact-value strategy (`Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Ranges ----------------------------------------------------------

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuples ----------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Canonical strategy types.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_full_range_int {
        ($($t:ty => $strat:ident),* $(,)?) => {$(
            /// Full-range integer strategy.
            pub struct $strat;
            impl Strategy for $strat {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $strat;
                fn arbitrary() -> $strat { $strat }
            }
        )*};
    }
    impl_arbitrary_full_range_int!(
        u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize,
    );
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each contained function runs `config.cases` deterministic cases;
/// the bindings before `in` receive values generated from the
/// strategies after it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..(config.cases as u64) {
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut proptest_rng,
                            );
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property `{}` failed at deterministic case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Rejects the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniformly picks among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5.0..5.0f64, z in 0usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
            prop_assert!(z <= 3);
        }

        #[test]
        fn map_and_flat_map(v in (1u64..10).prop_flat_map(|n| {
            crate::collection::vec(0u64..n, 1..5).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in xs {
                prop_assert!(x < n, "{} >= {}", x, n);
            }
        }

        #[test]
        fn oneof_and_any(flag in any::<bool>(), pick in prop_oneof![0u64..1, 10u64..11]) {
            let _ = flag;
            prop_assert!(pick == 0 || pick == 10);
        }

        #[test]
        fn assume_rejects(k in 0u64..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 3..10);
        let mut a_rng = crate::test_runner::TestRng::deterministic("x", 5);
        let mut b_rng = crate::test_runner::TestRng::deterministic("x", 5);
        assert_eq!(strat.generate(&mut a_rng), strat.generate(&mut b_rng));
    }

    #[test]
    #[should_panic(expected = "failed at deterministic case")]
    fn failure_reports_case() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
