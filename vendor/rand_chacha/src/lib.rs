//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher with 8 rounds as an RNG, with
//! the [`ChaCha8Rng::set_stream`] API the workspace uses for cheap
//! independent per-world substreams. Output is deterministic, portable
//! across platforms, and stable across releases of this shim (it is a
//! direct implementation of the ChaCha block function); it is not
//! intended to be bit-compatible with the upstream `rand_chacha`
//! crate.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha RNG with 8 rounds: fast, high quality, seekable streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    /// Selects the nonce/stream. Streams are independent: the same key
    /// with different streams produces unrelated output sequences.
    ///
    /// Any buffered output from the previous stream is discarded; the
    /// block counter is left unchanged.
    pub fn set_stream(&mut self, stream: u64) {
        if stream != self.stream {
            self.stream = stream;
            self.index = 16; // force a refill from the new stream
        }
    }

    /// The currently selected stream.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        input[14] = self.stream as u32;
        input[15] = (self.stream >> 32) as u32;

        let mut working = input;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self.buffer.iter_mut().zip(working.iter().zip(input.iter())) {
            *out = w.wrapping_add(*inp);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let value = self.buffer[self.index];
        self.index += 1;
        value
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Bulk keystream fill: one block-function run per 8 output words,
    /// skipping the per-`next_u64` buffer bookkeeping. The emitted
    /// words and the final generator state are bit-identical to a
    /// `next_u64` loop (pinned by `fill_words_matches_next_u64`).
    fn fill_words(&mut self, dest: &mut [u64]) {
        let mut n = 0;
        // Drain whole buffered pairs first.
        while n < dest.len() && self.index + 2 <= 16 {
            dest[n] = self.next_u64();
            n += 1;
        }
        if n == dest.len() {
            return;
        }
        if self.index < 16 {
            // A lone buffered u32 pairs across a refill, so the buffer
            // stays odd-aligned forever: keep the word-at-a-time path,
            // which is exact by construction.
            while n < dest.len() {
                dest[n] = self.next_u64();
                n += 1;
            }
            return;
        }
        // Buffer exhausted and 16-aligned: each block is 8 whole words.
        while dest.len() - n >= 8 {
            self.refill();
            for (k, word) in dest[n..n + 8].iter_mut().enumerate() {
                let lo = self.buffer[2 * k] as u64;
                let hi = self.buffer[2 * k + 1] as u64;
                *word = (hi << 32) | lo;
            }
            self.index = 16;
            n += 8;
        }
        while n < dest.len() {
            dest[n] = self.next_u64();
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = ChaCha8Rng::seed_from_u64(1).next_u64();
        let b = ChaCha8Rng::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_differ_and_are_reproducible() {
        let draw = |stream: u64| -> Vec<u64> {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            rng.set_stream(stream);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(draw(0), draw(1));
        assert_ne!(draw(1), draw(2));
        assert_eq!(draw(5), draw(5));
    }

    #[test]
    fn set_stream_discards_buffered_output() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u32(); // fills the buffer from stream 0
        rng.set_stream(3);
        let after = rng.next_u64();
        let mut fresh = ChaCha8Rng::seed_from_u64(9);
        fresh.set_stream(3);
        // The fresh generator starts at counter 0, the other at counter 1,
        // so outputs differ — but both must come from stream 3 blocks.
        let fresh_first = fresh.next_u64();
        assert_ne!(after, fresh_first);
        assert_eq!(rng.get_stream(), 3);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_words_matches_next_u64() {
        // Same words AND same final state as the word-at-a-time path,
        // from every buffer alignment (fresh, and after 1..=3 u32s).
        for pre_draws in 0..4usize {
            for len in [0usize, 1, 3, 7, 8, 9, 16, 29, 40] {
                let mut bulk = ChaCha8Rng::seed_from_u64(77);
                bulk.set_stream(pre_draws as u64);
                let mut slow = bulk.clone();
                for _ in 0..pre_draws {
                    assert_eq!(bulk.next_u32(), slow.next_u32());
                }
                let mut out = vec![0u64; len];
                bulk.fill_words(&mut out);
                let reference: Vec<u64> = (0..len).map(|_| slow.next_u64()).collect();
                assert_eq!(out, reference, "pre={pre_draws}, len={len}");
                assert_eq!(bulk, slow, "state diverged: pre={pre_draws}, len={len}");
                assert_eq!(bulk.next_u64(), slow.next_u64());
            }
        }
    }

    #[test]
    fn chacha_block_known_structure() {
        // Counter advances once per 16 output words.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..16 {
            let _ = rng.next_u32();
        }
        assert_eq!(rng.counter, 1);
        let _ = rng.next_u32();
        assert_eq!(rng.counter, 2);
    }
}
