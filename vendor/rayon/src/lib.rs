//! Offline vendored subset of the `rayon` API.
//!
//! The workspace uses two parallelism patterns:
//!
//! * `(0..n).into_par_iter().map(f).collect::<Vec<T>>()` — fan out an
//!   index range, collect results in index order;
//! * `buf.par_chunks_mut(k).enumerate().for_each(|(i, chunk)| …)` —
//!   fill disjoint chunks of one flat output buffer in place (the
//!   allocation-free span evaluation of the batched audit executor).
//!
//! This shim implements exactly those with `std::thread::scope`,
//! statically chunking the work over the available cores. Results and
//! chunks are pre-assigned, so ordering — and therefore every
//! deterministic-RNG guarantee in the workspace — is identical to the
//! sequential evaluation.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Number of worker threads to use (available parallelism, at least 1).
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads a parallel operation will use (the rayon
/// API surface work-splitters consult to choose between a coarse outer
/// axis and a finer inner one).
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel iterator (the only shape the workspace collects).
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluates the map over all indices and collects the results in
    /// index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParResults<T>,
    {
        let n = self.range.len();
        let start = self.range.start;
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let threads = num_threads().min(n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let f = &self.f;
        std::thread::scope(|scope| {
            for (c, out) in slots.chunks_mut(chunk).enumerate() {
                let base = start + c * chunk;
                scope.spawn(move || {
                    for (offset, slot) in out.iter_mut().enumerate() {
                        *slot = Some(f(base + offset));
                    }
                });
            }
        });
        C::from_par_results(slots.into_iter().map(|s| s.expect("worker filled slot")))
    }
}

/// Collection targets for parallel results.
pub trait FromParResults<T> {
    /// Builds the collection from results in index order.
    fn from_par_results<I: Iterator<Item = T>>(iter: I) -> Self;
}

impl<T> FromParResults<T> for Vec<T> {
    fn from_par_results<I: Iterator<Item = T>>(iter: I) -> Self {
        iter.collect()
    }
}

/// In-place parallel iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into disjoint chunks of `size` elements (the
    /// final chunk may be shorter) for parallel mutation.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// A parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index (the only downstream shape the
    /// workspace uses).
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// An enumerated parallel chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` over every `(index, chunk)` pair, distributing
    /// contiguous runs of chunks across the available cores. Chunks
    /// are disjoint borrows, so the mutation is data-race-free by
    /// construction; indices are global chunk positions regardless of
    /// which worker runs them.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.slice.len().div_ceil(self.size);
        if n_chunks == 0 {
            return;
        }
        let threads = num_threads().min(n_chunks);
        let per_worker = n_chunks.div_ceil(threads).max(1);
        let f = &f;
        let size = self.size;
        std::thread::scope(|scope| {
            for (worker, run) in self.slice.chunks_mut(per_worker * size).enumerate() {
                scope.spawn(move || {
                    for (offset, chunk) in run.chunks_mut(size).enumerate() {
                        f((worker * per_worker + offset, chunk));
                    }
                });
            }
        });
    }
}

/// Prelude mirroring upstream layout.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParChunksMut, ParChunksMutEnumerate, ParMap, ParRange,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let out: Vec<u8> = (0..0).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nontrivial_offset() {
        let out: Vec<usize> = (10..25).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (11..26).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_fills_every_chunk_once() {
        let mut buf = vec![0usize; 103]; // 34 chunks of 3, last short
        buf.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = i * 3 + k + 1;
            }
        });
        let expected: Vec<usize> = (1..=103).collect();
        assert_eq!(buf, expected);
    }

    #[test]
    fn par_chunks_mut_empty_slice() {
        let mut buf: Vec<u8> = Vec::new();
        buf.par_chunks_mut(4).enumerate().for_each(|(_, _)| {
            panic!("no chunks expected");
        });
    }

    #[test]
    fn parallel_matches_sequential_with_side_work() {
        let seq: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        let par: Vec<u64> = (0..257)
            .into_par_iter()
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        assert_eq!(seq, par);
    }
}
