//! Offline vendored subset of the `rayon` API.
//!
//! The workspace's parallelism pattern is exclusively
//! `(0..n).into_par_iter().map(f).collect::<Vec<T>>()`; this shim
//! implements exactly that with `std::thread::scope`, statically
//! chunking the index range over the available cores. Results are
//! written into pre-assigned slots, so ordering — and therefore every
//! deterministic-RNG guarantee in the workspace — is identical to the
//! sequential evaluation.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Number of worker threads to use (available parallelism, at least 1).
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel iterator (the only shape the workspace collects).
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluates the map over all indices and collects the results in
    /// index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParResults<T>,
    {
        let n = self.range.len();
        let start = self.range.start;
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let threads = num_threads().min(n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let f = &self.f;
        std::thread::scope(|scope| {
            for (c, out) in slots.chunks_mut(chunk).enumerate() {
                let base = start + c * chunk;
                scope.spawn(move || {
                    for (offset, slot) in out.iter_mut().enumerate() {
                        *slot = Some(f(base + offset));
                    }
                });
            }
        });
        C::from_par_results(slots.into_iter().map(|s| s.expect("worker filled slot")))
    }
}

/// Collection targets for parallel results.
pub trait FromParResults<T> {
    /// Builds the collection from results in index order.
    fn from_par_results<I: Iterator<Item = T>>(iter: I) -> Self;
}

impl<T> FromParResults<T> for Vec<T> {
    fn from_par_results<I: Iterator<Item = T>>(iter: I) -> Self {
        iter.collect()
    }
}

/// Prelude mirroring upstream layout.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParMap, ParRange};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let out: Vec<u8> = (0..0).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nontrivial_offset() {
        let out: Vec<usize> = (10..25).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (11..26).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_with_side_work() {
        let seq: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        let par: Vec<u64> = (0..257)
            .into_par_iter()
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        assert_eq!(seq, par);
    }
}
