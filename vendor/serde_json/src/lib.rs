//! Offline vendored JSON serialization over the workspace `serde` shim.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] with
//! lossless round-trips for the workspace's report types. One
//! deliberate extension beyond strict JSON: non-finite floats are
//! rendered as the bare tokens `NaN`, `Infinity`, and `-Infinity`
//! (and accepted back by the parser), because audit reports legally
//! contain infinite critical values when the Monte Carlo budget cannot
//! reach significance.

pub use serde::Value;
use serde::{Deserialize, Error, Serialize};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON and deserializes it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

/// Parses JSON into a dynamically typed [`Value`].
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's shortest round-trippable representation.
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::F64(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::F64(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::I64(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::msg(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::U64(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::msg(format!("invalid number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn non_finite_floats_survive() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "Infinity");
        assert_eq!(from_str::<f64>("Infinity").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-Infinity").unwrap(), f64::NEG_INFINITY);
        assert!(from_str::<f64>("NaN").unwrap().is_nan());
    }

    #[test]
    fn string_escapes() {
        let original = "a\"b\\c\nd\te\u{1}f héllo".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
        let opt: Vec<Option<u32>> = vec![Some(1), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), opt);
    }

    #[test]
    fn pretty_print_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -2.5e17] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
    }
}
