//! # sfserve — the audit serving surface
//!
//! A spatial-fairness audit service is read-mostly: the expensive
//! artifacts (spatial index, membership CSR, region totals) depend only
//! on the dataset and regions, while each audit request varies only
//! cheap knobs. [`AuditServer`] wraps the prepare/plan/execute pipeline
//! of [`sfscan::prepared`] behind a queue:
//!
//! * **[`AuditServer::new`]** prepares the engine once (phase 1);
//! * **[`AuditServer::submit`]** enqueues an [`AuditRequest`] and
//!   returns its [`RequestId`] — nothing expensive happens yet;
//! * **[`AuditServer::drain`]** plans the queued batch into
//!   world-sharing groups and executes it (phases 2 + 3), returning one
//!   [`AuditResponse`] per request, each **bit-identical** to running
//!   that request alone through [`sfscan::Auditor`].
//!
//! Requests and responses round-trip through JSON
//! ([`AuditServer::submit_json`], [`AuditResponse::to_json`]) so the
//! server drops into any transport.
//!
//! ```
//! use sfscan::{AuditConfig, AuditRequest, Direction, RegionSet, SpatialOutcomes};
//! use sfserve::AuditServer;
//! use sfgeo::{Point, Rect};
//!
//! // A tiny dataset: left half positive, right half negative.
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5))
//!     .collect();
//! let labels: Vec<bool> = (0..100).map(|i| i % 10 < 5).collect();
//! let outcomes = SpatialOutcomes::new(points, labels).unwrap();
//! let regions = RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1);
//!
//! // Prepare once, serve many.
//! let config = AuditConfig::new(0.05).with_worlds(99);
//! let mut server = AuditServer::new(&outcomes, &regions, config).unwrap();
//! let base = AuditRequest::from_config(&config);
//! let two_sided = server.submit(base);
//! let green = server.submit(base.with_direction(Direction::High));
//!
//! let responses = server.drain();
//! assert_eq!(responses.len(), 2);
//! assert_eq!(responses[0].id, two_sided);
//! assert_eq!(responses[1].id, green);
//! assert!(responses[0].report.is_unfair());
//! assert_eq!(server.stats().requests_served, 2);
//! ```

use serde::{Deserialize, Serialize};
use sfscan::prepared::{AuditRequest, BatchStats, ExecutionPlan, PreparedAudit};
use sfscan::{AuditConfig, AuditReport, RegionSet, ScanError, SpatialOutcomes};

/// Opaque id of a submitted request, unique per server instance and
/// assigned in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

// The vendored serde derive shim only handles braced structs; a bare
// numeric encoding is the right wire format for an id anyway.
impl Serialize for RequestId {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for RequestId {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(value).map(RequestId)
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request-{}", self.0)
    }
}

/// One served audit: the id it was submitted under and its full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditResponse {
    /// The id [`AuditServer::submit`] returned.
    pub id: RequestId,
    /// The audit result — bit-identical to a standalone
    /// [`sfscan::Auditor`] run of the same request.
    pub report: AuditReport,
}

impl AuditResponse {
    /// Serialises the response as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("response serialisation cannot fail")
    }

    /// Deserialises a response from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

/// Cumulative serving statistics across every drained batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests served over the server's lifetime.
    pub requests_served: u64,
    /// Batches drained.
    pub batches: u64,
    /// Worlds generated and counted.
    pub unique_worlds: u64,
    /// Worlds sequential single audits would have generated
    /// (`Σ worlds_evaluated`).
    pub lane_worlds: u64,
    /// Worlds the per-request budgets allowed in total.
    pub budget_total: u64,
}

impl ServerStats {
    /// Worlds answered from a shared stream instead of being
    /// regenerated.
    pub fn worlds_shared(&self) -> u64 {
        self.lane_worlds.saturating_sub(self.unique_worlds)
    }

    /// Worlds early stopping saved across all batches.
    pub fn worlds_saved(&self) -> u64 {
        self.budget_total.saturating_sub(self.lane_worlds)
    }

    fn absorb(&mut self, batch: &BatchStats) {
        self.requests_served += batch.requests as u64;
        self.batches += 1;
        self.unique_worlds += batch.unique_worlds as u64;
        self.lane_worlds += batch.lane_worlds as u64;
        self.budget_total += batch.budget_total as u64;
    }
}

/// A queueing front-end over one [`PreparedAudit`]: build the engine
/// once, serve any number of audit requests in shared batches.
#[derive(Debug)]
pub struct AuditServer {
    prepared: PreparedAudit,
    queue: Vec<(RequestId, AuditRequest)>,
    next_id: u64,
    stats: ServerStats,
}

impl AuditServer {
    /// Prepares the serving engine from the dataset, candidate regions,
    /// and base config (whose backend/strategy are the expensive knobs;
    /// the rest become per-request defaults).
    ///
    /// # Errors
    /// Propagates [`PreparedAudit::prepare`]'s validation errors
    /// ([`ScanError::EmptyRegionSet`],
    /// [`ScanError::DegenerateOutcomes`]).
    pub fn new(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        config: AuditConfig,
    ) -> Result<Self, ScanError> {
        Ok(Self::from_prepared(PreparedAudit::prepare(
            outcomes, regions, config,
        )?))
    }

    /// Wraps an already-prepared engine.
    pub fn from_prepared(prepared: PreparedAudit) -> Self {
        AuditServer {
            prepared,
            queue: Vec::new(),
            next_id: 0,
            stats: ServerStats::default(),
        }
    }

    /// The prepared engine serving this queue.
    pub fn prepared(&self) -> &PreparedAudit {
        &self.prepared
    }

    /// The base config requests are completed against.
    pub fn base_config(&self) -> &AuditConfig {
        self.prepared.base_config()
    }

    /// A request with this server's per-request defaults.
    pub fn default_request(&self) -> AuditRequest {
        AuditRequest::from_config(self.base_config())
    }

    /// Enqueues a request; returns the id its response will carry.
    /// Queued requests cost nothing until [`AuditServer::drain`].
    ///
    /// # Panics
    /// Panics if the request carries invalid knobs (a programmer
    /// error: the [`AuditRequest`] builders maintain the invariants;
    /// hand-mutated fields can break them). Validation happens here —
    /// before queueing — so a bad request can never take an already
    /// queued batch down with it. Untrusted wire payloads go through
    /// [`AuditServer::submit_json`], which returns an error instead.
    pub fn submit(&mut self, request: AuditRequest) -> RequestId {
        if let Err(e) = request.validate() {
            panic!("{e}");
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.queue.push((id, request));
        id
    }

    /// Enqueues a JSON-encoded [`AuditRequest`].
    ///
    /// # Errors
    /// Returns an error — without touching the queue — when the
    /// payload does not decode *or* decodes to a request with invalid
    /// knobs (`alpha` outside `(0, 1)`, zero `worlds`, zero early-stop
    /// batch). Wire payloads are untrusted; rejecting them here keeps
    /// one malformed request from panicking a later [`drain`] and
    /// losing the rest of the batch.
    ///
    /// [`drain`]: AuditServer::drain
    pub fn submit_json(&mut self, json: &str) -> Result<RequestId, serde::Error> {
        let request: AuditRequest = serde_json::from_str(json)?;
        request
            .validate()
            .map_err(|e| serde::Error::msg(e.to_string()))?;
        Ok(self.submit(request))
    }

    /// Number of queued, not-yet-served requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The execution plan the current queue would run as (world-sharing
    /// groups, budgets) — for introspection; the queue is untouched.
    pub fn plan(&self) -> ExecutionPlan {
        ExecutionPlan::new(self.queue.iter().map(|(_, r)| *r).collect())
    }

    /// Serves every queued request as one batch: plans world-sharing
    /// groups, executes them over the shared engine, and returns the
    /// responses in submission order. The queue is left empty.
    pub fn drain(&mut self) -> Vec<AuditResponse> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let queued = std::mem::take(&mut self.queue);
        let requests: Vec<AuditRequest> = queued.iter().map(|(_, r)| *r).collect();
        let (reports, batch_stats) = self.prepared.run_batch_with_stats(&requests);
        self.stats.absorb(&batch_stats);
        queued
            .into_iter()
            .zip(reports)
            .map(|((id, _), report)| AuditResponse { id, report })
            .collect()
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};
    use sfscan::{Auditor, Direction, McStrategy};

    fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(if x < 5.0 { 0.8 } else { 0.3 }));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn grid() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    fn base() -> AuditConfig {
        AuditConfig::new(0.05).with_worlds(99).with_seed(5)
    }

    #[test]
    fn served_responses_match_standalone_audits() {
        let o = outcomes(1000, 1);
        let rs = grid();
        let mut server = AuditServer::new(&o, &rs, base()).unwrap();
        let requests = [
            server.default_request(),
            server.default_request().with_direction(Direction::High),
            server.default_request().with_seed(7),
            server
                .default_request()
                .with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }),
        ];
        let ids: Vec<RequestId> = requests.iter().map(|r| server.submit(*r)).collect();
        assert_eq!(server.pending(), 4);
        let responses = server.drain();
        assert_eq!(server.pending(), 0);
        for ((request, id), response) in requests.iter().zip(&ids).zip(&responses) {
            assert_eq!(response.id, *id);
            let expected = Auditor::new(request.apply_to(base()))
                .audit(&o, &rs)
                .unwrap();
            assert_eq!(response.report, expected);
        }
    }

    #[test]
    fn ids_are_stable_across_batches() {
        let o = outcomes(400, 2);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        let a = server.submit(server.default_request());
        assert_eq!(server.drain().len(), 1);
        let b = server.submit(server.default_request().with_seed(9));
        assert!(b > a, "ids must keep increasing across drains");
        let responses = server.drain();
        assert_eq!(responses[0].id, b);
        assert_eq!(server.stats().requests_served, 2);
        assert_eq!(server.stats().batches, 2);
    }

    #[test]
    fn drain_on_empty_queue_is_a_no_op() {
        let o = outcomes(200, 3);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        assert!(server.drain().is_empty());
        assert_eq!(server.stats().batches, 0);
    }

    #[test]
    fn stats_account_for_sharing_and_saving() {
        let o = outcomes(1500, 4);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        // Three same-class requests (different directions) plus one
        // early stopper: worlds are generated once per class.
        for direction in [Direction::TwoSided, Direction::High, Direction::Low] {
            server.submit(server.default_request().with_direction(direction));
        }
        server.submit(
            server
                .default_request()
                .with_mc_strategy(McStrategy::EarlyStop { batch_size: 8 }),
        );
        server.drain();
        let stats = *server.stats();
        assert_eq!(stats.requests_served, 4);
        assert_eq!(stats.unique_worlds, 99, "one shared stream");
        assert!(stats.worlds_shared() > 0, "{stats:?}");
        assert_eq!(stats.budget_total, 4 * 99, "budget ceiling is per-request");
    }

    #[test]
    fn json_round_trips() {
        let o = outcomes(500, 5);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        let request = server.default_request().with_direction(Direction::Low);
        let id = server
            .submit_json(&serde_json::to_string(&request).unwrap())
            .unwrap();
        let responses = server.drain();
        assert_eq!(responses[0].id, id);
        let json = responses[0].to_json();
        let back = AuditResponse::from_json(&json).unwrap();
        assert_eq!(back, responses[0]);
        // Malformed payloads leave the queue untouched.
        assert!(server.submit_json("{not json}").is_err());
        assert_eq!(server.pending(), 0);
    }

    #[test]
    fn invalid_wire_requests_are_rejected_at_submit_not_drain() {
        let o = outcomes(300, 8);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        let good = server.submit(server.default_request());
        // Well-formed JSON, invalid knobs: rejected up front, with the
        // offending knob named; the queued batch survives.
        let mut bad = server.default_request();
        bad.alpha = 2.0;
        let err = server
            .submit_json(&serde_json::to_string(&bad).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
        bad.alpha = 0.05;
        bad.worlds = 0;
        let err = server
            .submit_json(&serde_json::to_string(&bad).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("world"), "{err}");
        assert_eq!(server.pending(), 1);
        let responses = server.drain();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, good);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_typed_request_panics_before_queueing() {
        let o = outcomes(200, 9);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        let mut bad = server.default_request();
        bad.alpha = -1.0;
        let _ = server.submit(bad);
    }

    #[test]
    fn plan_introspection_reports_grouping() {
        let o = outcomes(300, 6);
        let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
        server.submit(server.default_request());
        server.submit(server.default_request().with_direction(Direction::High));
        server.submit(server.default_request().with_seed(42));
        let plan = server.plan();
        assert_eq!(plan.groups().len(), 2);
        assert_eq!(server.pending(), 3, "planning does not consume the queue");
    }

    #[test]
    fn prepare_errors_propagate() {
        let o = outcomes(100, 7);
        let empty = RegionSet::from_regions(vec![]);
        assert_eq!(
            AuditServer::new(&o, &empty, base()).unwrap_err(),
            ScanError::EmptyRegionSet
        );
    }
}
