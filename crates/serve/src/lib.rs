//! # sfserve — the audit serving surface
//!
//! A spatial-fairness audit service is read-mostly: the expensive
//! artifacts (spatial index, membership CSR, region totals) depend only
//! on the dataset and regions, while each audit request varies only
//! cheap knobs — and the same authority answers the same dataset's
//! audits over and over. [`AuditService`] is built for that workload:
//!
//! * **Sessions** — [`AuditService::register`] prepares a dataset's
//!   engine once and returns a [`DatasetHandle`]; one service hosts
//!   many datasets, requests route by handle, and
//!   [`AuditService::unregister`] evicts a session (engine, queue, and
//!   world cache).
//! * **Tickets** — [`AuditService::submit`] validates and queues,
//!   returning a [`Ticket`] immediately (typed [`SubmitError`]s, no
//!   panics); [`AuditService::poll`] and [`AuditService::take`]
//!   decouple submission from execution.
//! * **Drain policies** — [`DrainPolicy`] ([`Manual`](DrainPolicy::Manual),
//!   [`MaxPending`](DrainPolicy::MaxPending),
//!   [`Deadline`](DrainPolicy::Deadline)) decides when queues execute,
//!   driven by the explicit [`AuditService::tick`] clock — no
//!   wall-clock reads, so batching is deterministic and testable —
//!   with [`AuditService::flush`] as the manual escape hatch.
//! * **Cross-batch world cache** — each executed batch records its
//!   simulated worlds' τ-streams per world class `(null model, seed)`;
//!   later batches replay the cached prefix through the same stopping
//!   rule and simulate only the un-cached suffix. A repeated request
//!   costs **zero** new simulated worlds, and every resumed result is
//!   **bit-identical** to a cold run by construction
//!   ([`sfscan::WorldCache`]).
//! * **Wire envelopes** — [`RequestEnvelope`] / [`ResponseEnvelope`]
//!   JSONL lines over the existing serde layer, so the service drops
//!   into any byte transport (`experiments serve` is the reference
//!   loop).
//!
//! ```
//! use sfscan::{AuditConfig, AuditRequest, Direction, RegionSet, SpatialOutcomes};
//! use sfserve::{AuditService, DrainPolicy, Status};
//! use sfgeo::{Point, Rect};
//!
//! // A tiny dataset: left half positive, right half negative.
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5))
//!     .collect();
//! let labels: Vec<bool> = (0..100).map(|i| i % 10 < 5).collect();
//! let outcomes = SpatialOutcomes::new(points, labels).unwrap();
//! let regions = RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1);
//!
//! // Register once, serve many.
//! let mut service = AuditService::new().with_policy(DrainPolicy::MaxPending(2));
//! let config = AuditConfig::new(0.05).with_worlds(99);
//! let handle = service.register(&outcomes, &regions, config).unwrap();
//!
//! let base = AuditRequest::from_config(&config);
//! let two_sided = service.submit(handle, base).unwrap();
//! assert!(service.poll(two_sided).is_queued());
//! // The second submission reaches MaxPending(2): the batch executes.
//! let green = service.submit(handle, base.with_direction(Direction::High)).unwrap();
//!
//! let Status::Ready(response) = service.poll(two_sided) else { panic!("executed") };
//! assert!(response.report.is_unfair());
//! assert!(service.take(green).is_some());
//! assert_eq!(service.stats().requests_served, 2);
//!
//! // Resubmitting the same audit replays the cached worlds: zero new
//! // simulation, bit-identical report.
//! let again = service.submit(handle, base).unwrap();
//! service.flush();
//! assert_eq!(service.take(again).unwrap().report, response.report);
//! assert_eq!(service.stats().unique_worlds, 99, "no new worlds for the repeat");
//! ```

mod compat;
mod geojson;
mod service;
mod wire;

#[allow(deprecated)]
pub use compat::{AuditServer, RequestId};
pub use geojson::{findings_feature_collection, CIRCLE_SEGMENTS};
pub use service::{
    percentile, AuditResponse, AuditService, DatasetHandle, DrainPolicy, ServerStats, Status,
    SubmitError, Ticket,
};
pub use sfscan::worldcache::CacheStats;
pub use wire::{is_stats_request, ErrorCode, RequestEnvelope, ResponseEnvelope, WireStatus};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};
    use sfscan::{
        AuditConfig, Auditor, Direction, McStrategy, NullModel, RegionSet, ScanError,
        SpatialOutcomes,
    };

    fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(if x < 5.0 { 0.8 } else { 0.3 }));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn grid() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    fn base() -> AuditConfig {
        AuditConfig::new(0.05).with_worlds(99).with_seed(5)
    }

    fn service_with(n: usize, seed: u64) -> (AuditService, DatasetHandle, SpatialOutcomes) {
        let o = outcomes(n, seed);
        let mut service = AuditService::new();
        let handle = service.register(&o, &grid(), base()).unwrap();
        (service, handle, o)
    }

    #[test]
    fn ticketed_flow_matches_standalone_audits() {
        let (mut service, handle, o) = service_with(1000, 1);
        let base_request = service.default_request(handle).unwrap();
        let requests = [
            base_request,
            base_request.with_direction(Direction::High),
            base_request.with_seed(7),
            base_request.with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }),
        ];
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| service.submit(handle, *r).unwrap())
            .collect();
        assert_eq!(service.pending(handle), Some(4));
        for &t in &tickets {
            assert!(service.poll(t).is_queued());
        }
        assert_eq!(service.flush(), 4);
        assert_eq!(service.pending(handle), Some(0));
        for (request, &ticket) in requests.iter().zip(&tickets) {
            let Status::Ready(response) = service.poll(ticket) else {
                panic!("flushed tickets are ready");
            };
            assert_eq!(response.ticket, ticket);
            let expected = Auditor::new(request.apply_to(base()))
                .audit(&o, &grid())
                .unwrap();
            assert_eq!(response.report, expected);
            assert_eq!(service.take(ticket).unwrap().report, expected);
            assert_eq!(
                service.poll(ticket),
                Status::Unknown,
                "taken tickets vanish"
            );
        }
        assert_eq!(service.stats().requests_served, 4);
    }

    #[test]
    fn requests_route_by_handle() {
        let o1 = outcomes(500, 2);
        let o2 = outcomes(500, 3);
        let mut service = AuditService::new();
        let h1 = service.register(&o1, &grid(), base()).unwrap();
        let h2 = service.register(&o2, &grid(), base()).unwrap();
        assert_eq!(service.handles(), vec![h1, h2]);
        assert_ne!(h1, h2);
        let request = service.default_request(h1).unwrap();
        let t1 = service.submit(h1, request).unwrap();
        let t2 = service.submit(h2, request).unwrap();
        service.flush();
        let r1 = service.take(t1).unwrap();
        let r2 = service.take(t2).unwrap();
        assert_ne!(
            r1.report, r2.report,
            "different datasets, different answers"
        );
        let e1 = Auditor::new(request.apply_to(base()))
            .audit(&o1, &grid())
            .unwrap();
        let e2 = Auditor::new(request.apply_to(base()))
            .audit(&o2, &grid())
            .unwrap();
        assert_eq!(r1.report, e1);
        assert_eq!(r2.report, e2);
    }

    #[test]
    fn submit_errors_are_typed_not_panics() {
        let (mut service, handle, _) = service_with(300, 4);
        let mut bad = service.default_request(handle).unwrap();
        bad.alpha = 2.0;
        let err = service.submit(handle, bad).unwrap_err();
        assert!(matches!(err, SubmitError::InvalidRequest { .. }), "{err}");
        assert!(err.to_string().contains("alpha"), "{err}");
        bad.alpha = 0.05;
        bad.worlds = 0;
        let err = service.submit(handle, bad).unwrap_err();
        assert!(err.to_string().contains("world"), "{err}");
        let ghost = DatasetHandle(999);
        let err = service
            .submit(ghost, service.default_request(handle).unwrap())
            .unwrap_err();
        assert_eq!(err, SubmitError::UnknownHandle(ghost));
        assert_eq!(service.pending_total(), 0, "rejections never queue");
    }

    #[test]
    fn manual_policy_runs_nothing_until_flush() {
        let (mut service, handle, _) = service_with(300, 5);
        assert_eq!(service.policy(), DrainPolicy::Manual);
        let t = service
            .submit(handle, service.default_request(handle).unwrap())
            .unwrap();
        service.tick(1_000_000);
        assert!(service.poll(t).is_queued(), "Manual ignores the clock");
        assert_eq!(service.stats().batches, 0);
        assert_eq!(service.flush(), 1);
        assert!(service.poll(t).is_ready());
    }

    #[test]
    fn max_pending_policy_executes_on_the_nth_submission() {
        let (mut service, handle, _) = service_with(400, 6);
        service.set_policy(DrainPolicy::MaxPending(3));
        let request = service.default_request(handle).unwrap();
        let t1 = service.submit(handle, request).unwrap();
        let t2 = service
            .submit(handle, request.with_direction(Direction::High))
            .unwrap();
        assert_eq!(service.pending(handle), Some(2));
        assert_eq!(service.stats().batches, 0);
        let t3 = service
            .submit(handle, request.with_direction(Direction::Low))
            .unwrap();
        assert_eq!(service.pending(handle), Some(0), "third submission fired");
        assert_eq!(service.stats().batches, 1);
        for t in [t1, t2, t3] {
            assert!(service.poll(t).is_ready());
        }
    }

    #[test]
    fn deadline_policy_fires_on_tick_not_before() {
        let (mut service, handle, _) = service_with(400, 7);
        service.set_policy(DrainPolicy::Deadline(10));
        service.tick(100);
        let t = service
            .submit(handle, service.default_request(handle).unwrap())
            .unwrap();
        assert_eq!(service.tick(105), 0, "deadline not reached");
        assert!(service.poll(t).is_queued());
        assert_eq!(service.tick(110), 1, "10 ticks after submission");
        assert!(service.poll(t).is_ready());
        // The clock is monotonic: going backwards is ignored.
        service.tick(50);
        assert_eq!(service.clock(), 110);
    }

    #[test]
    fn repeat_requests_are_served_from_the_world_cache() {
        let (mut service, handle, _) = service_with(900, 8);
        let request = service.default_request(handle).unwrap();
        let t_cold = service.submit(handle, request).unwrap();
        service.flush();
        let cold = service.take(t_cold).unwrap();
        let after_cold = *service.stats();
        assert_eq!(after_cold.unique_worlds, 99);
        assert_eq!(after_cold.cache_hits, 0);

        let t_warm = service.submit(handle, request).unwrap();
        service.flush();
        let warm = service.take(t_warm).unwrap();
        assert_eq!(warm.report, cold.report, "bit-identical to the cold run");
        let stats = *service.stats();
        assert_eq!(stats.unique_worlds, 99, "ZERO new simulated worlds");
        assert_eq!(stats.worlds_replayed, 99);
        assert_eq!(stats.cache_hits, 1);
        let cache = service.cache_stats(handle).unwrap();
        assert_eq!(cache.worlds_replayed, 99);
        assert_eq!(service.cached_worlds(handle), Some(99));
    }

    #[test]
    fn cache_capacity_bounds_session_memory_with_lru_eviction() {
        use sfscan::WorldGen;
        let o = outcomes(600, 20);
        // One 99-world single-direction class costs 99 × 8 bytes; cap
        // the cache so only two classes fit.
        let mut service = AuditService::new().with_cache_capacity_bytes(2 * 99 * 8);
        assert_eq!(service.cache_capacity_bytes(), Some(1584));
        let handle = service.register(&o, &grid(), base()).unwrap();
        let request = service.default_request(handle).unwrap();
        for seed in [1u64, 2, 3] {
            service.submit(handle, request.with_seed(seed)).unwrap();
            service.flush();
        }
        let cache = service.cache_stats(handle).unwrap();
        assert_eq!(cache.evictions, 1, "third class evicted the oldest");
        assert!(cache.resident_bytes <= 1584, "{cache:?}");
        // Seed 1 was evicted: repeating it simulates again; seed 3 is
        // still resident and replays.
        let before = service.stats().unique_worlds;
        service.submit(handle, request.with_seed(3)).unwrap();
        service.flush();
        assert_eq!(service.stats().unique_worlds, before, "seed 3 replayed");
        service.submit(handle, request.with_seed(1)).unwrap();
        service.flush();
        assert_eq!(
            service.stats().unique_worlds,
            before + 99,
            "evicted seed 1 re-simulates"
        );
        // An uncapped service still reports None.
        assert_eq!(AuditService::new().cache_capacity_bytes(), None);
        // Worldgen knob rides through the service unchanged and stays
        // bit-identical to the standalone auditor.
        let word = request.with_worldgen(WorldGen::Word);
        let ticket = service.submit(handle, word).unwrap();
        service.flush();
        let response = service.take(ticket).unwrap();
        let expected = Auditor::new(word.apply_to(base()))
            .audit(&o, &grid())
            .unwrap();
        assert_eq!(response.report, expected);
    }

    #[test]
    fn wire_requests_without_worldgen_decode_as_scalar() {
        use sfscan::WorldGen;
        let (mut service, handle, o) = service_with(500, 21);
        // A v1 transcript line (no "worldgen" key) keeps decoding and
        // means the v1 Scalar stream.
        let v1_line = format!(
            "{{\"handle\": {}, \"request\": {{\"alpha\": 0.05, \"worlds\": 99, \"seed\": 5, \
             \"direction\": \"TwoSided\", \"null_model\": \"Bernoulli\", \
             \"mc_strategy\": \"FullBudget\"}}}}",
            handle.0
        );
        let t_v1 = service.submit_json(&v1_line).unwrap();
        // A v2 line selects the word generator explicitly.
        let word_request = service
            .default_request(handle)
            .unwrap()
            .with_worldgen(WorldGen::Word);
        let t_word = service
            .submit_json(&RequestEnvelope::new(handle, word_request).to_json())
            .unwrap();
        service.flush();
        let scalar_report = service.take(t_v1).unwrap().report;
        let word_report = service.take(t_word).unwrap().report;
        assert_eq!(scalar_report.config.worldgen, WorldGen::Scalar);
        assert_eq!(word_report.config.worldgen, WorldGen::Word);
        let scalar_expected = Auditor::new(
            service
                .default_request(handle)
                .unwrap()
                .with_worldgen(WorldGen::Scalar)
                .apply_to(base()),
        )
        .audit(&o, &grid())
        .unwrap();
        assert_eq!(
            scalar_report, scalar_expected,
            "v1 lines stay bit-identical"
        );
        assert_ne!(
            scalar_report.simulated, word_report.simulated,
            "the generators draw distinct streams"
        );
    }

    #[test]
    fn unregister_evicts_the_session_and_frees_its_cache() {
        let (mut service, handle, _) = service_with(600, 9);
        let request = service.default_request(handle).unwrap();
        service.submit(handle, request).unwrap();
        service.flush();
        assert!(service.cached_worlds(handle).unwrap() > 0);
        // A pending ticket at eviction time is dropped…
        let orphan = service.submit(handle, request.with_seed(3)).unwrap();
        let final_cache = service.unregister(handle).unwrap();
        assert_eq!(final_cache.worlds_simulated, 99);
        // …the handle stops routing…
        assert_eq!(service.cache_stats(handle), None);
        assert_eq!(service.cached_worlds(handle), None);
        assert_eq!(service.pending(handle), None);
        assert_eq!(service.poll(orphan), Status::Unknown);
        assert_eq!(
            service.submit(handle, request).unwrap_err(),
            SubmitError::UnknownHandle(handle)
        );
        assert_eq!(
            service.unregister(handle).unwrap_err(),
            SubmitError::UnknownHandle(handle)
        );
        // …and a re-registration is a fresh session under a NEW handle
        // with a cold cache.
        let o = outcomes(600, 9);
        let fresh = service.register(&o, &grid(), base()).unwrap();
        assert_ne!(fresh, handle, "handles are never reused");
        assert_eq!(service.cached_worlds(fresh), Some(0));
    }

    #[test]
    fn take_ready_returns_submission_order() {
        let (mut service, handle, _) = service_with(400, 10);
        let request = service.default_request(handle).unwrap();
        let tickets = [
            service.submit(handle, request).unwrap(),
            service
                .submit(handle, request.with_direction(Direction::High))
                .unwrap(),
            service.submit(handle, request.with_seed(9)).unwrap(),
        ];
        service.flush();
        let responses = service.take_ready();
        assert_eq!(
            responses.iter().map(|r| r.ticket).collect::<Vec<_>>(),
            tickets
        );
        assert_eq!(service.ready_total(), 0);
    }

    #[test]
    fn stats_display_is_the_summary_line() {
        let (mut service, handle, _) = service_with(700, 11);
        let request = service.default_request(handle).unwrap();
        service.submit(handle, request).unwrap();
        service
            .submit(handle, request.with_direction(Direction::High))
            .unwrap();
        service.flush();
        service.submit(handle, request).unwrap();
        service.flush();
        let line = service.stats().to_string();
        assert!(line.starts_with("requests=3"), "{line}");
        for token in ["worlds: unique=", "shared=", "saved=", "cache_hits=1"] {
            assert!(line.contains(token), "{line}");
        }
    }

    #[test]
    fn wire_envelopes_round_trip_and_reject_malformed_lines() {
        let (mut service, handle, _) = service_with(500, 12);
        let request = service
            .default_request(handle)
            .unwrap()
            .with_direction(Direction::Low)
            .with_null_model(NullModel::Permutation);
        let envelope = RequestEnvelope::new(handle, request);
        let line = envelope.to_json();
        assert_eq!(RequestEnvelope::from_json(&line).unwrap(), envelope);
        let ticket = service.submit_json(&line).unwrap();
        assert_eq!(
            ResponseEnvelope::from_status(ticket, service.poll(ticket)),
            ResponseEnvelope::queued(ticket)
        );
        service.flush();
        let out = ResponseEnvelope::from_status(ticket, service.poll(ticket));
        assert_eq!(out.status, WireStatus::Ready);
        assert_eq!(out.ticket, Some(ticket));
        assert!(out.report.is_some());
        assert_eq!(out.error, None);
        let back = ResponseEnvelope::from_json(&out.to_json()).unwrap();
        assert_eq!(back, out);

        // Malformed and invalid lines are rejected without queueing.
        let err = service.submit_json("{not json}").unwrap_err();
        assert!(matches!(err, SubmitError::Malformed { .. }), "{err}");
        let mut bad = envelope;
        bad.request.alpha = 5.0;
        let err = service.submit_json(&bad.to_json()).unwrap_err();
        assert!(matches!(err, SubmitError::InvalidRequest { .. }), "{err}");
        let rejected = ResponseEnvelope::rejected(&err);
        assert_eq!(rejected.status, WireStatus::Rejected);
        assert!(rejected.error.unwrap().contains("alpha"));
        assert_eq!(service.pending_total(), 0);
    }

    #[test]
    fn typed_error_envelopes_round_trip() {
        // Every SubmitError classifies to a stable kebab-case code, and
        // the envelope round-trips with the code intact.
        let cases: Vec<(SubmitError, ErrorCode, WireStatus)> = vec![
            (
                SubmitError::Busy {
                    pending: 4,
                    capacity: 4,
                },
                ErrorCode::Busy,
                WireStatus::Busy,
            ),
            (
                SubmitError::UnknownHandle(DatasetHandle(7)),
                ErrorCode::UnknownHandle,
                WireStatus::Rejected,
            ),
            (
                SubmitError::InvalidRequest {
                    reason: String::from("alpha must lie in (0, 1)"),
                },
                ErrorCode::InvalidRequest,
                WireStatus::Rejected,
            ),
            (
                SubmitError::Malformed {
                    reason: String::from("line 1: expected a value"),
                },
                ErrorCode::Malformed,
                WireStatus::Rejected,
            ),
        ];
        for (error, code, status) in cases {
            let envelope = ResponseEnvelope::rejected(&error);
            assert_eq!(envelope.status, status, "{error}");
            assert_eq!(envelope.code, Some(code), "{error}");
            assert_eq!(envelope.error.as_deref(), Some(&*error.to_string()));
            let line = envelope.to_json();
            assert!(line.contains(&format!("\"code\":\"{code}\"")), "{line}");
            assert_eq!(ResponseEnvelope::from_json(&line).unwrap(), envelope);
        }

        // The busy shorthand is the rejected() rendering of Busy.
        let busy = ResponseEnvelope::busy(3, 3);
        assert_eq!(busy.status, WireStatus::Busy);
        assert_eq!(busy.code, Some(ErrorCode::Busy));
        assert!(busy.to_json().contains("\"status\":\"busy\""));

        // Polling a ticket the service never issued is typed too.
        let unknown = ResponseEnvelope::from_status(Ticket(99), Status::Unknown);
        assert_eq!(unknown.code, Some(ErrorCode::UnknownTicket));
        let back = ResponseEnvelope::from_json(&unknown.to_json()).unwrap();
        assert_eq!(back, unknown);

        // Success envelopes never grow a code field — v1 bytes hold.
        assert!(!ResponseEnvelope::queued(Ticket(0))
            .to_json()
            .contains("code"));
    }

    #[test]
    fn queue_capacity_rejects_with_busy_and_recovers_after_drain() {
        let (service, handle, _) = service_with(600, 15);
        let mut service = service.with_queue_capacity(2);
        assert_eq!(service.queue_capacity(), Some(2));
        let request = service.default_request(handle).unwrap();

        let a = service.submit(handle, request).unwrap();
        let b = service
            .submit(handle, request.with_direction(Direction::High))
            .unwrap();
        // Third submission hits the cap: typed Busy, nothing queued,
        // no ticket burned.
        let err = service
            .submit(handle, request.with_direction(Direction::Low))
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::Busy {
                pending: 2,
                capacity: 2
            }
        );
        assert_eq!(service.pending_total(), 2);
        assert_eq!(service.stats().queue_depth, 2);

        // Draining frees the queue; the retry is accepted with the
        // next consecutive ticket (the busy rejection consumed none).
        service.flush();
        assert_eq!(service.stats().queue_depth, 0);
        let c = service
            .submit(handle, request.with_direction(Direction::Low))
            .unwrap();
        assert_eq!(c.0, b.0 + 1);
        service.flush();
        for t in [a, b, c] {
            assert!(service.poll(t).is_ready(), "{t}");
        }

        // The drain-latency summary is on the stats line for scrapers.
        let line = service.stats().to_string();
        for token in ["queue_depth=0", "drain_latency: p50=", "p99=", "(n=3)"] {
            assert!(line.contains(token), "{line}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank_on_sorted_samples() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.5), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn percentile_edges_empty_singleton_ties_and_degenerate_quantiles() {
        // Empty: 0 for every quantile, including the degenerate ends.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(percentile(&[], q), 0);
        }
        // n = 1: the only sample answers every quantile.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42], q), 42);
        }
        // q = 0 clamps to rank 1 (the minimum), never underflows.
        assert_eq!(percentile(&[3, 9], 0.0), 3);
        // Ties: a run of equal samples owns every quantile whose
        // nearest rank lands inside the run.
        let tied = [5, 5, 5, 9];
        assert_eq!(percentile(&tied, 0.25), 5);
        assert_eq!(percentile(&tied, 0.5), 5);
        assert_eq!(percentile(&tied, 0.75), 5);
        assert_eq!(percentile(&tied, 1.0), 9);
        let all_equal = [4u64; 16];
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&all_equal, q), 4);
        }
    }

    #[test]
    fn busy_envelope_round_trips_under_capacity_zero_and_one() {
        let o = outcomes(300, 9);
        // Capacity 0 floors to 1 (a queue that can accept nothing
        // would deadlock every client), so one submission lands and
        // the second bounces with the typed wire shape, not a panic.
        let mut shedder = AuditService::new().with_queue_capacity(0);
        assert_eq!(shedder.queue_capacity(), Some(1), "capacity 0 floors to 1");
        let h = shedder.register(&o, &grid(), base()).unwrap();
        let request = shedder.default_request(h).unwrap();
        shedder.submit(h, request).unwrap();
        let err = shedder.submit(h, request).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Busy {
                pending: 1,
                capacity: 1
            }
        );
        let envelope = ResponseEnvelope::rejected(&err);
        assert_eq!(envelope.status, WireStatus::Busy);
        assert_eq!(envelope.code, Some(ErrorCode::Busy));
        assert_eq!(envelope.ticket, None);
        let line = envelope.to_json();
        assert!(line.contains("\"status\":\"busy\""), "{line}");
        assert_eq!(ResponseEnvelope::from_json(&line).unwrap(), envelope);

        // Capacity 1: one accepted, the second bounces with the
        // pending/capacity the client needs for its retry policy; the
        // busy() shorthand renders the identical envelope.
        let mut single = AuditService::new().with_queue_capacity(1);
        let h = single.register(&o, &grid(), base()).unwrap();
        let request = single.default_request(h).unwrap();
        let ticket = single.submit(h, request).unwrap();
        let err = single.submit(h, request).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Busy {
                pending: 1,
                capacity: 1
            }
        );
        let envelope = ResponseEnvelope::rejected(&err);
        assert_eq!(envelope, ResponseEnvelope::busy(1, 1));
        let back = ResponseEnvelope::from_json(&envelope.to_json()).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.status, WireStatus::Busy);
        // The accepted ticket still drains normally after the shed.
        single.flush();
        assert!(single.poll(ticket).is_ready());
    }

    #[test]
    fn stats_probe_lines_are_recognised_and_nothing_else_is() {
        assert!(is_stats_request(r#"{"stats":true}"#));
        assert!(is_stats_request(r#" {"stats": true, "extra": 1} "#.trim()));
        // Anything that is not exactly `"stats": true` is a normal line.
        assert!(!is_stats_request(r#"{"stats":false}"#));
        assert!(!is_stats_request(r#"{"stats":1}"#));
        assert!(!is_stats_request(r#"{"handle":0}"#));
        assert!(!is_stats_request("not json"));
        assert!(!is_stats_request(""));
    }

    #[test]
    fn stats_snapshot_envelope_round_trips_with_both_payloads() {
        let (mut service, handle, _) = service_with(400, 11);
        let request = service.default_request(handle).unwrap();
        let t = service.submit(handle, request).unwrap();
        service.submit(handle, request).unwrap();
        service.flush();
        assert!(service.poll(t).is_ready());

        let envelope =
            ResponseEnvelope::stats_snapshot(*service.stats(), service.cache_stats_total());
        assert_eq!(envelope.status, WireStatus::Stats);
        assert_eq!(envelope.ticket, None);
        assert_eq!(envelope.code, None);
        let stats = envelope.stats.expect("snapshot carries server stats");
        assert_eq!(stats.requests_served, 2);
        let cache = envelope.cache.expect("snapshot carries cache stats");
        assert!(cache.hits + cache.misses > 0, "the flush touched the cache");

        let line = envelope.to_json();
        assert!(line.contains("\"status\":\"stats\""), "{line}");
        let back = ResponseEnvelope::from_json(&line).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.stats, Some(stats));
        assert_eq!(back.cache, Some(cache));

        // Non-stats envelopes do not grow the optional fields: the v1
        // wire bytes are unchanged.
        let busy = ResponseEnvelope::busy(1, 1).to_json();
        assert!(!busy.contains("\"stats\""), "{busy}");
        assert!(!busy.contains("\"cache\""), "{busy}");
    }

    #[test]
    fn geojson_flag_attaches_findings_and_leaves_other_lines_untouched() {
        let (mut service, handle, _) = service_with(500, 14);
        let request = service.default_request(handle).unwrap();

        // The flag round-trips and is skip-serialised when unset, so a
        // flagless envelope's bytes are exactly the v1 wire shape.
        let plain = RequestEnvelope::new(handle, request);
        let flagged = plain.with_geojson();
        assert!(!plain.to_json().contains("geojson"));
        assert!(flagged.to_json().contains("\"geojson\":true"));
        assert_eq!(RequestEnvelope::from_json(&plain.to_json()).unwrap(), plain);
        assert_eq!(
            RequestEnvelope::from_json(&flagged.to_json()).unwrap(),
            flagged
        );

        let t_plain = service.submit_json(&plain.to_json()).unwrap();
        let t_flagged = service.submit_json(&flagged.to_json()).unwrap();
        assert!(!service.geojson_requested(t_plain));
        assert!(service.geojson_requested(t_flagged));
        // The query consumed the mark; re-arm it the way a direct
        // submit caller would.
        service.mark_geojson(t_flagged);
        service.flush();

        let plain_out = ResponseEnvelope::ready(service.take(t_plain).unwrap());
        let mut flagged_out = ResponseEnvelope::ready(service.take(t_flagged).unwrap());
        if service.geojson_requested(t_flagged) {
            flagged_out = flagged_out.with_geojson_findings();
        }
        // Identical audits; only the presentation differs.
        assert_eq!(plain_out.report, flagged_out.report);
        assert_eq!(plain_out.geojson, None);
        assert!(!plain_out.to_json().contains("geojson"));
        let rendered = flagged_out.geojson.as_ref().expect("findings attached");
        assert!(rendered.contains("FeatureCollection"));
        assert_eq!(
            rendered,
            &findings_feature_collection(flagged_out.report.as_ref().unwrap())
        );
        // The extended envelope round-trips with its rendering intact.
        let back = ResponseEnvelope::from_json(&flagged_out.to_json()).unwrap();
        assert_eq!(back, flagged_out);
    }

    #[test]
    fn prepare_errors_propagate_from_register() {
        let o = outcomes(100, 13);
        let empty = RegionSet::from_regions(vec![]);
        let mut service = AuditService::new();
        assert_eq!(
            service.register(&o, &empty, base()).unwrap_err(),
            ScanError::EmptyRegionSet
        );
    }

    #[allow(deprecated)]
    mod compat_shim {
        use super::*;

        #[test]
        fn v1_surface_still_works_over_the_service() {
            let o = outcomes(800, 20);
            let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
            let a = server.submit(server.default_request());
            let b = server.submit(server.default_request().with_direction(Direction::High));
            assert_eq!(server.pending(), 2);
            assert_eq!(server.plan().groups().len(), 1);
            let responses = server.drain();
            assert_eq!(responses.len(), 2);
            assert_eq!(responses[0].ticket, a);
            assert_eq!(responses[1].ticket, b);
            let expected = Auditor::new(server.default_request().apply_to(base()))
                .audit(&o, &grid())
                .unwrap();
            assert_eq!(responses[0].report, expected);
            assert_eq!(server.stats().requests_served, 2);
            // Ids keep increasing across drains, and the v2 cache works
            // underneath: a repeat drain simulates nothing new.
            let c = server.submit(server.default_request());
            assert!(c > b);
            let repeat = server.drain();
            assert_eq!(repeat[0].report, expected);
            assert_eq!(server.stats().unique_worlds, 99);
            assert!(server.stats().worlds_replayed > 0);
        }

        #[test]
        #[should_panic(expected = "alpha")]
        fn v1_submit_still_panics_on_invalid_requests() {
            let o = outcomes(200, 21);
            let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
            let mut bad = server.default_request();
            bad.alpha = -1.0;
            let _ = server.submit(bad);
        }

        #[test]
        fn v1_submit_json_rejects_without_queueing() {
            let o = outcomes(300, 22);
            let mut server = AuditServer::new(&o, &grid(), base()).unwrap();
            assert!(server.submit_json("{not json}").is_err());
            let mut bad = server.default_request();
            bad.worlds = 0;
            let err = server
                .submit_json(&serde_json::to_string(&bad).unwrap())
                .unwrap_err();
            assert!(err.to_string().contains("world"), "{err}");
            assert_eq!(server.pending(), 0);
        }
    }
}
