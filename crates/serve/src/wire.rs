//! JSONL wire envelopes over the existing serde layer.
//!
//! One request per line, one response per line — the framing is the
//! newline, the payload is plain JSON, so the service drops into any
//! byte transport (files, pipes, sockets). `experiments serve` is the
//! reference loop: it reads [`RequestEnvelope`] lines from a
//! file/stdin, routes them through one [`AuditService`], and emits one
//! [`ResponseEnvelope`] line per input line.
//!
//! * request line — `{"handle": H, "request": {…}}` where `H` is the
//!   numeric [`DatasetHandle`] (handles are assigned `0, 1, …` in
//!   registration order, so transcripts can hardcode them). The
//!   request's optional `"worldgen"` field (`"Scalar"`/`"Word"`)
//!   selects the world-generation version; v1 payloads without it mean
//!   `Scalar`, so existing transcripts keep decoding — and keep their
//!   exact v1 results, because the generator version is part of the
//!   world-class identity end to end. An optional `"geojson": true`
//!   flag asks for a GeoJSON rendering of the findings on the
//!   response;
//! * response line — `{"ticket": T|null, "status":
//!   "ready"|"queued"|"rejected", "report": {…}|null, "error":
//!   "…"|null}`, plus a trailing `"geojson": "…"` field only on
//!   responses whose request asked for one (so all other lines are
//!   byte-identical to the v1 wire).

use crate::service::{
    AuditResponse, AuditService, DatasetHandle, ServerStats, Status, SubmitError, Ticket,
};
use serde::{Deserialize, Serialize};
use sfscan::prepared::AuditRequest;
use sfscan::worldcache::CacheStats;
use sfscan::AuditReport;

/// Whether a JSONL request line is the metrics probe
/// `{"stats": true}` rather than an audit submission. The probe is
/// answered inline with a [`ResponseEnvelope::stats_snapshot`] line —
/// it never reaches a queue, so scraping metrics can never trip
/// backpressure or perturb a transcript's ticket numbering.
pub fn is_stats_request(line: &str) -> bool {
    match serde_json::from_str::<serde::Value>(line) {
        Ok(value) => matches!(value.get("stats"), Some(serde::Value::Bool(true))),
        Err(_) => false,
    }
}

/// One submitted request on the wire: which session it routes to and
/// the request itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEnvelope {
    /// Routing handle ([`AuditService::register`] assigns `0, 1, …`).
    pub handle: DatasetHandle,
    /// The audit request.
    pub request: AuditRequest,
    /// Ask for a GeoJSON rendering of the findings on the response
    /// envelope. A transport-level presentation knob, not an audit
    /// knob: it never reaches the scan layer and never changes a
    /// report. Serialised only when set, so v1 transcripts (no
    /// `"geojson"` key, meaning `false`) decode and replay
    /// byte-identically.
    pub geojson: bool,
}

impl RequestEnvelope {
    /// An envelope without the GeoJSON flag — the v1 wire shape.
    pub fn new(handle: DatasetHandle, request: AuditRequest) -> Self {
        RequestEnvelope {
            handle,
            request,
            geojson: false,
        }
    }

    /// Asks for GeoJSON findings on the response.
    pub fn with_geojson(mut self) -> Self {
        self.geojson = true;
        self
    }

    /// Serialises the envelope as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("envelope serialisation cannot fail")
    }

    /// Deserialises an envelope from a JSONL line.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

impl Serialize for RequestEnvelope {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (String::from("handle"), self.handle.to_value()),
            (String::from("request"), self.request.to_value()),
        ];
        if self.geojson {
            fields.push((String::from("geojson"), self.geojson.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RequestEnvelope {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(RequestEnvelope {
            handle: serde::get_field(value, "handle")?,
            request: serde::get_field(value, "request")?,
            geojson: match value.get("geojson") {
                Some(v) => bool::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `geojson`: {}", e.message)))?,
                // Absent on v1 payloads: no rendering requested.
                None => false,
            },
        })
    }
}

/// Wire rendering of a ticket's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Accepted, not yet executed.
    Queued,
    /// Executed; the envelope carries the report.
    Ready,
    /// Rejected at submission; the envelope carries the error.
    Rejected,
    /// Backpressure: the session queue was full ([`SubmitError::Busy`]).
    /// Nothing was queued — the client should retry after a drain.
    /// Distinct from `"rejected"` so retry loops never have to parse
    /// the error text.
    Busy,
    /// A metrics snapshot answering a `{"stats": true}` probe line;
    /// the envelope carries the `stats`/`cache` fields instead of a
    /// report.
    Stats,
}

impl WireStatus {
    /// The lowercase wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireStatus::Queued => "queued",
            WireStatus::Ready => "ready",
            WireStatus::Rejected => "rejected",
            WireStatus::Busy => "busy",
            WireStatus::Stats => "stats",
        }
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for WireStatus {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for WireStatus {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("queued") => Ok(WireStatus::Queued),
            Some("ready") => Ok(WireStatus::Ready),
            Some("rejected") => Ok(WireStatus::Rejected),
            Some("busy") => Ok(WireStatus::Busy),
            Some("stats") => Ok(WireStatus::Stats),
            _ => Err(serde::Error::msg(format!(
                "expected \"queued\"/\"ready\"/\"rejected\"/\"busy\"/\"stats\", got {}",
                value.kind()
            ))),
        }
    }
}

/// Machine-readable classification of a failed submission, so clients
/// branch on a stable token instead of parsing [`SubmitError`]'s
/// human-oriented `Display` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Session queue full — retry after a drain
    /// ([`SubmitError::Busy`]).
    Busy,
    /// No session registered under the handle
    /// ([`SubmitError::UnknownHandle`]).
    UnknownHandle,
    /// The request decoded but failed validation
    /// ([`SubmitError::Invalid`]).
    InvalidRequest,
    /// The line was not a decodable envelope
    /// ([`SubmitError::Malformed`]).
    Malformed,
    /// A polled ticket the service has never issued
    /// ([`Status::Unknown`]).
    UnknownTicket,
}

impl ErrorCode {
    /// The kebab-case wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::UnknownHandle => "unknown-handle",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownTicket => "unknown-ticket",
        }
    }

    /// The code classifying a [`SubmitError`].
    pub fn for_submit_error(error: &SubmitError) -> Self {
        match error {
            SubmitError::Busy { .. } => ErrorCode::Busy,
            SubmitError::UnknownHandle(_) => ErrorCode::UnknownHandle,
            SubmitError::InvalidRequest { .. } => ErrorCode::InvalidRequest,
            SubmitError::Malformed { .. } => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ErrorCode {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("busy") => Ok(ErrorCode::Busy),
            Some("unknown-handle") => Ok(ErrorCode::UnknownHandle),
            Some("invalid-request") => Ok(ErrorCode::InvalidRequest),
            Some("malformed") => Ok(ErrorCode::Malformed),
            Some("unknown-ticket") => Ok(ErrorCode::UnknownTicket),
            _ => Err(serde::Error::msg(format!(
                "expected an error-code token, got {}",
                value.kind()
            ))),
        }
    }
}

/// One response on the wire. The four core fields are always present
/// (absent values render as JSON `null`) so line consumers never
/// key-check; the optional `code` and `geojson` fields appear only on
/// error responses / responses whose request asked for a rendering,
/// keeping every other response line byte-identical to the v1 wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The ticket the submission was assigned (`null` when it was
    /// rejected before a ticket existed).
    pub ticket: Option<Ticket>,
    /// `"ready"`, `"queued"`, `"rejected"`, or `"busy"`.
    pub status: WireStatus,
    /// The audit report (`null` unless `status == "ready"`).
    pub report: Option<AuditReport>,
    /// The rejection reason (`null` unless `status` is an error).
    pub error: Option<String>,
    /// Typed classification of the error, present only on error
    /// envelopes (so v1 ready/queued lines keep their exact bytes).
    pub code: Option<ErrorCode>,
    /// GeoJSON `FeatureCollection` of the findings (see
    /// [`findings_feature_collection`](crate::findings_feature_collection)),
    /// present only when the request envelope set its `geojson` flag
    /// and the response is ready.
    pub geojson: Option<String>,
    /// Cumulative serving statistics, present only on `"stats"`
    /// envelopes (the answer to a `{"stats": true}` probe line).
    pub stats: Option<ServerStats>,
    /// World-cache statistics summed across every session, present
    /// only on `"stats"` envelopes.
    pub cache: Option<CacheStats>,
}

impl ResponseEnvelope {
    /// A served response.
    pub fn ready(response: AuditResponse) -> Self {
        ResponseEnvelope {
            ticket: Some(response.ticket),
            status: WireStatus::Ready,
            report: Some(response.report),
            error: None,
            code: None,
            geojson: None,
            stats: None,
            cache: None,
        }
    }

    /// An accepted-but-not-yet-executed response.
    pub fn queued(ticket: Ticket) -> Self {
        ResponseEnvelope {
            ticket: Some(ticket),
            status: WireStatus::Queued,
            report: None,
            error: None,
            code: None,
            geojson: None,
            stats: None,
            cache: None,
        }
    }

    /// A rejected submission, carrying the typed [`ErrorCode`].
    /// [`SubmitError::Busy`] renders with the dedicated `"busy"`
    /// status so overload is distinguishable from a bad request
    /// without inspecting the code.
    pub fn rejected(error: &SubmitError) -> Self {
        let code = ErrorCode::for_submit_error(error);
        ResponseEnvelope {
            ticket: None,
            status: if code == ErrorCode::Busy {
                WireStatus::Busy
            } else {
                WireStatus::Rejected
            },
            report: None,
            error: Some(error.to_string()),
            code: Some(code),
            geojson: None,
            stats: None,
            cache: None,
        }
    }

    /// A backpressure envelope for a full session queue.
    pub fn busy(pending: usize, capacity: usize) -> Self {
        ResponseEnvelope::rejected(&SubmitError::Busy { pending, capacity })
    }

    /// A metrics snapshot answering a `{"stats": true}` probe line:
    /// the cumulative [`ServerStats`] plus the [`CacheStats`] summed
    /// across every session's world cache.
    pub fn stats_snapshot(stats: ServerStats, cache: CacheStats) -> Self {
        ResponseEnvelope {
            ticket: None,
            status: WireStatus::Stats,
            report: None,
            error: None,
            code: None,
            geojson: None,
            stats: Some(stats),
            cache: Some(cache),
        }
    }

    /// The wire view of a polled ticket.
    pub fn from_status(ticket: Ticket, status: Status) -> Self {
        match status {
            Status::Ready(response) => ResponseEnvelope::ready(response),
            Status::Queued => ResponseEnvelope::queued(ticket),
            Status::Unknown => ResponseEnvelope {
                ticket: Some(ticket),
                status: WireStatus::Rejected,
                report: None,
                error: Some(format!("unknown {ticket}")),
                code: Some(ErrorCode::UnknownTicket),
                geojson: None,
                stats: None,
                cache: None,
            },
        }
    }

    /// Attaches the GeoJSON findings rendering when the report is
    /// present (no-op on queued/rejected envelopes).
    pub fn with_geojson_findings(mut self) -> Self {
        self.geojson = self.report.as_ref().map(crate::findings_feature_collection);
        self
    }

    /// Serialises the envelope as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("envelope serialisation cannot fail")
    }

    /// Deserialises an envelope from a JSONL line.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

impl Serialize for ResponseEnvelope {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (String::from("ticket"), self.ticket.to_value()),
            (String::from("status"), self.status.to_value()),
            (String::from("report"), self.report.to_value()),
            (String::from("error"), self.error.to_value()),
        ];
        if let Some(code) = &self.code {
            fields.push((String::from("code"), code.to_value()));
        }
        if let Some(geojson) = &self.geojson {
            fields.push((String::from("geojson"), geojson.to_value()));
        }
        if let Some(stats) = &self.stats {
            fields.push((String::from("stats"), stats.to_value()));
        }
        if let Some(cache) = &self.cache {
            fields.push((String::from("cache"), cache.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ResponseEnvelope {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ResponseEnvelope {
            ticket: serde::get_field(value, "ticket")?,
            status: serde::get_field(value, "status")?,
            report: serde::get_field(value, "report")?,
            error: serde::get_field(value, "error")?,
            code: match value.get("code") {
                Some(v) => Some(
                    ErrorCode::from_value(v)
                        .map_err(|e| serde::Error::msg(format!("field `code`: {}", e.message)))?,
                ),
                // Absent on v1 payloads and on success envelopes.
                None => None,
            },
            geojson: match value.get("geojson") {
                Some(v) => Option::<String>::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `geojson`: {}", e.message)))?,
                None => None,
            },
            stats: match value.get("stats") {
                Some(v) => Some(
                    ServerStats::from_value(v)
                        .map_err(|e| serde::Error::msg(format!("field `stats`: {}", e.message)))?,
                ),
                // Absent on every envelope but the metrics snapshot.
                None => None,
            },
            cache: match value.get("cache") {
                Some(v) => Some(
                    CacheStats::from_value(v)
                        .map_err(|e| serde::Error::msg(format!("field `cache`: {}", e.message)))?,
                ),
                None => None,
            },
        })
    }
}

impl AuditService {
    /// Decodes one [`RequestEnvelope`] JSONL line and submits it.
    ///
    /// When the envelope sets its `geojson` flag, the assigned ticket
    /// is remembered so the serving loop can attach the findings
    /// rendering to the eventual response
    /// ([`AuditService::geojson_requested`]).
    ///
    /// # Errors
    /// [`SubmitError::Malformed`] when the line does not decode;
    /// otherwise whatever [`AuditService::submit`] returns. The queue
    /// is untouched on any error — one bad wire payload can never take
    /// an already queued batch down with it.
    pub fn submit_json(&mut self, line: &str) -> Result<Ticket, SubmitError> {
        let envelope = RequestEnvelope::from_json(line).map_err(|e| SubmitError::Malformed {
            reason: e.to_string(),
        })?;
        let ticket = self.submit(envelope.handle, envelope.request)?;
        if envelope.geojson {
            self.mark_geojson(ticket);
        }
        Ok(ticket)
    }
}
