//! GeoJSON rendering of audit findings (RFC 7946).
//!
//! Maps and notebooks speak GeoJSON; audit reports speak
//! [`RegionFinding`](sfscan::RegionFinding). This module bridges the
//! two: [`findings_feature_collection`] renders a report's findings as
//! a `FeatureCollection` string — one `Feature` per finding, ordered
//! as the report ranks them, each carrying the finding's evidence as
//! properties (`index`, `center_id`, `n`, `p`, `rate`, `llr`) plus the
//! report-level `p_value` and `statistic` for self-contained plotting.
//!
//! Geometry is always a `Polygon` with one counterclockwise exterior
//! ring: rectangles emit their four corners, circles a deterministic
//! [`CIRCLE_SEGMENTS`]-gon approximation, and convex polygons their
//! vertices verbatim. The rendering is wire-level only — the service
//! computes it on demand for envelopes that asked for it (the
//! [`RequestEnvelope::geojson`](crate::RequestEnvelope::geojson) flag)
//! and never stores it.

use serde::{Serialize, Value};
use sfgeo::{Point, Region};
use sfscan::AuditReport;

/// Sides of the polygon approximating a circular region.
pub const CIRCLE_SEGMENTS: usize = 32;

/// Renders a report's findings as a GeoJSON `FeatureCollection`
/// string (compact, one line — it embeds directly in a JSONL response
/// envelope).
///
/// An audit with no findings (a fair verdict) renders as a collection
/// with an empty `features` array, so consumers can always parse the
/// same shape.
pub fn findings_feature_collection(report: &AuditReport) -> String {
    let features: Vec<Value> = report
        .findings
        .iter()
        .map(|f| {
            obj(vec![
                ("type", Value::Str("Feature".into())),
                ("geometry", polygon(&f.region)),
                (
                    "properties",
                    obj(vec![
                        ("index", (f.index as u64).to_value()),
                        ("center_id", f.center_id.map(|c| c as u64).to_value()),
                        ("n", f.n.to_value()),
                        ("p", f.p.to_value()),
                        ("rate", f.rate.to_value()),
                        ("llr", f.llr.to_value()),
                        ("p_value", report.p_value.to_value()),
                        (
                            "statistic",
                            Value::Str(report.config.statistic.name().into()),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    let collection = obj(vec![
        ("type", Value::Str("FeatureCollection".into())),
        ("features", Value::Array(features)),
    ]);
    serde_json::to_string(&collection).expect("GeoJSON serialisation cannot fail")
}

/// A GeoJSON `Polygon` geometry for a scan region: one closed
/// counterclockwise exterior ring.
fn polygon(region: &Region) -> Value {
    let mut ring: Vec<Point> = match region {
        Region::Rect(r) => vec![
            Point::new(r.min.x, r.min.y),
            Point::new(r.max.x, r.min.y),
            Point::new(r.max.x, r.max.y),
            Point::new(r.min.x, r.max.y),
        ],
        Region::Circle(c) => (0..CIRCLE_SEGMENTS)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / CIRCLE_SEGMENTS as f64;
                Point::new(
                    c.center.x + c.radius * theta.cos(),
                    c.center.y + c.radius * theta.sin(),
                )
            })
            .collect(),
        Region::Polygon(p) => p.vertices().to_vec(),
    };
    // RFC 7946: the ring is closed — first and last positions equal.
    if let Some(&first) = ring.first() {
        ring.push(first);
    }
    let positions: Vec<Value> = ring
        .iter()
        .map(|p| Value::Array(vec![p.x.to_value(), p.y.to_value()]))
        .collect();
    obj(vec![
        ("type", Value::Str("Polygon".into())),
        ("coordinates", Value::Array(vec![Value::Array(positions)])),
    ])
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (String::from(k), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgeo::{Circle, Rect};
    use sfscan::{AuditConfig, Auditor, RegionSet, SpatialOutcomes};

    fn report() -> AuditReport {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5))
            .collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 10 < 5).collect();
        let outcomes = SpatialOutcomes::new(points, labels).unwrap();
        let regions = RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1);
        let config = AuditConfig::new(0.05).with_worlds(99).with_seed(7);
        Auditor::new(config).audit(&outcomes, &regions).unwrap()
    }

    #[test]
    fn feature_collection_carries_every_finding() {
        let report = report();
        assert!(!report.findings.is_empty());
        let geojson = findings_feature_collection(&report);
        let value = serde_json::parse_value(&geojson).unwrap();
        assert_eq!(
            value.get("type").and_then(|v| v.as_str()),
            Some("FeatureCollection")
        );
        let Some(Value::Array(features)) = value.get("features") else {
            panic!("features must be an array");
        };
        assert_eq!(features.len(), report.findings.len());
        let first = &features[0];
        let geometry = first.get("geometry").unwrap();
        assert_eq!(
            geometry.get("type").and_then(|v| v.as_str()),
            Some("Polygon")
        );
        let Some(Value::Array(rings)) = geometry.get("coordinates") else {
            panic!("coordinates must be an array of rings");
        };
        let Value::Array(ring) = &rings[0] else {
            panic!("the exterior ring must be an array");
        };
        assert_eq!(ring.len(), 5, "a rectangle ring has 4 corners + closure");
        assert_eq!(ring.first(), ring.last(), "the ring is closed");
        let props = first.get("properties").unwrap();
        for key in ["index", "n", "p", "rate", "llr", "p_value", "statistic"] {
            assert!(props.get(key).is_some(), "missing property {key}");
        }
        assert_eq!(
            props.get("statistic").and_then(|v| v.as_str()),
            Some("bernoulli-llr")
        );
    }

    #[test]
    fn circles_render_as_closed_polygon_approximations() {
        let circle = Region::Circle(Circle::new(Point::new(1.0, 2.0), 3.0));
        let geometry = polygon(&circle);
        let Some(Value::Array(rings)) = geometry.get("coordinates") else {
            panic!("coordinates must be an array of rings");
        };
        let Value::Array(ring) = &rings[0] else {
            panic!("the exterior ring must be an array");
        };
        assert_eq!(ring.len(), CIRCLE_SEGMENTS + 1);
        assert_eq!(ring.first(), ring.last());
        // Every vertex sits on the circle.
        for position in ring {
            let Value::Array(xy) = position else {
                panic!("positions are [x, y]")
            };
            let (x, y) = (xy[0].as_f64().unwrap(), xy[1].as_f64().unwrap());
            let d = ((x - 1.0).powi(2) + (y - 2.0).powi(2)).sqrt();
            assert!((d - 3.0).abs() < 1e-9, "vertex off the circle: {d}");
        }
    }
}
