//! The v2 serving surface: a multi-dataset [`AuditService`] with
//! ticketed submission, drain policies, and cross-batch world caching.

use serde::{Deserialize, Serialize};
use sfscan::prepared::{AuditRequest, BatchStats, ExecutionPlan, PreparedAudit, WorldEvaluator};
use sfscan::worldcache::{CacheStats, WorldCache};
use sfscan::{AuditConfig, AuditReport, RegionSet, ScanError, SpatialOutcomes};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Opaque id of a registered dataset session, unique per service
/// instance and assigned in registration order starting at 0 (stable,
/// so wire transcripts can name handles deterministically). Handles
/// are never reused, even after [`AuditService::unregister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatasetHandle(pub u64);

// The vendored serde derive shim only handles braced structs; a bare
// numeric encoding is the right wire format for an id anyway.
impl Serialize for DatasetHandle {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for DatasetHandle {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(value).map(DatasetHandle)
    }
}

impl std::fmt::Display for DatasetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset-{}", self.0)
    }
}

/// Opaque id of a submitted request, unique per service instance and
/// assigned in submission order (across all handles). Poll it with
/// [`AuditService::poll`]; claim its response with
/// [`AuditService::take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

impl Serialize for Ticket {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for Ticket {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(value).map(Ticket)
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket-{}", self.0)
    }
}

/// One served audit: the ticket it was submitted under and its full
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditResponse {
    /// The ticket [`AuditService::submit`] returned.
    pub ticket: Ticket,
    /// The audit result — bit-identical to a standalone
    /// [`sfscan::Auditor`] run of the same request.
    pub report: AuditReport,
}

impl AuditResponse {
    /// Serialises the response as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("response serialisation cannot fail")
    }

    /// Deserialises a response from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

/// Where a ticket stands, as reported by [`AuditService::poll`].
///
/// `Ready` carries the full response by value on purpose: a `Status`
/// is a short-lived poll result consumed immediately at the call
/// site, never stored in bulk, so boxing the payload would add an
/// allocation per poll for no aggregate memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// Submitted but not yet executed; a future drain (policy-driven
    /// or [`AuditService::flush`]) will serve it.
    Queued,
    /// Executed; the response is a clone — [`AuditService::take`]
    /// claims it and frees the slot.
    Ready(AuditResponse),
    /// The service has no record of the ticket: never issued, already
    /// taken, or dropped when its handle was unregistered.
    Unknown,
}

impl Status {
    /// `true` for [`Status::Ready`].
    pub fn is_ready(&self) -> bool {
        matches!(self, Status::Ready(_))
    }

    /// `true` for [`Status::Queued`].
    pub fn is_queued(&self) -> bool {
        matches!(self, Status::Queued)
    }
}

/// Typed rejection from [`AuditService::submit`] (and the handle-routed
/// service calls): the replacement for the v1 `AuditServer`'s
/// panic-on-invalid-request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No session is registered under the handle (never registered, or
    /// evicted by [`AuditService::unregister`]).
    UnknownHandle(DatasetHandle),
    /// The request carries invalid knobs (`alpha` outside `(0, 1)`,
    /// zero `worlds`, zero early-stop batch).
    InvalidRequest {
        /// What is wrong with the request.
        reason: String,
    },
    /// A wire payload did not decode into a request envelope.
    Malformed {
        /// The decoder's complaint.
        reason: String,
    },
    /// The session's bounded submission queue is full — the
    /// backpressure signal. The request was NOT queued; the client
    /// should retry after a drain. Produced only by services with a
    /// queue cap ([`AuditService::with_queue_capacity`]) and by the
    /// bounded per-session queues of the `sfnet` executor.
    Busy {
        /// Outstanding (queued or executing) requests at rejection.
        pending: usize,
        /// The configured per-session capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownHandle(handle) => {
                write!(f, "unknown dataset handle {handle}")
            }
            SubmitError::InvalidRequest { reason } => {
                write!(f, "invalid audit request: {reason}")
            }
            SubmitError::Malformed { reason } => {
                write!(f, "malformed request envelope: {reason}")
            }
            SubmitError::Busy { pending, capacity } => {
                write!(
                    f,
                    "busy: session queue full ({pending}/{capacity} outstanding)"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ScanError> for SubmitError {
    /// Maps the scan layer's request-validation error; any other
    /// `ScanError` is a programmer error at this boundary.
    fn from(e: ScanError) -> Self {
        SubmitError::InvalidRequest {
            reason: match e {
                ScanError::InvalidRequest { reason } => reason,
                other => other.to_string(),
            },
        }
    }
}

/// When queued requests are executed.
///
/// Policies are driven by the *service clock* — an explicit `u64`
/// tick counter advanced only by [`AuditService::tick`], never by
/// wall-clock reads — so batching behaviour is deterministic and
/// testable. [`AuditService::flush`] is always available as the
/// manual escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainPolicy {
    /// Nothing runs until [`AuditService::flush`] (or
    /// [`AuditService::flush_handle`]) is called.
    #[default]
    Manual,
    /// A handle's queue executes as soon as it holds this many
    /// requests (checked at submission; `MaxPending(1)` serves every
    /// request immediately).
    MaxPending(usize),
    /// A handle's queue executes on the first [`AuditService::tick`]
    /// at least this many ticks after its oldest pending submission.
    Deadline(u64),
}

/// Cumulative serving statistics across every executed batch, every
/// handle. Counters are `u64` end-to-end — absorbed from
/// [`BatchStats`] without a single cast — and the [`Display`] form is
/// the one-line summary `experiments serve` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests served over the service's lifetime.
    pub requests_served: u64,
    /// Batches executed.
    pub batches: u64,
    /// Worlds generated and counted.
    pub unique_worlds: u64,
    /// Worlds answered from a prior batch's world cache.
    pub worlds_replayed: u64,
    /// Group executions that replayed at least one cached world.
    pub cache_hits: u64,
    /// Worlds sequential single audits would have generated
    /// (`Σ worlds_evaluated`).
    pub lane_worlds: u64,
    /// Worlds the per-request budgets allowed in total.
    pub budget_total: u64,
    /// Queued-but-unexecuted requests at the last submit/drain event —
    /// a gauge, not a counter (the backpressure signal the load
    /// generator scrapes).
    pub queue_depth: u64,
    /// Median submission→drain latency across served requests. Units
    /// are whatever clock drives the service: deterministic
    /// [`AuditService::tick`] ticks in-process, microseconds under the
    /// `sfnet` executor's wall clock.
    pub drain_p50: u64,
    /// 99th-percentile submission→drain latency (same units as
    /// [`ServerStats::drain_p50`]).
    pub drain_p99: u64,
    /// Latency samples behind the percentiles (== requests served
    /// through the latency-tracked path).
    pub drain_samples: u64,
}

impl ServerStats {
    /// Lane-worlds answered from a same-batch shared stream instead of
    /// being regenerated (cross-batch replays are counted separately
    /// in [`ServerStats::worlds_replayed`]).
    pub fn worlds_shared(&self) -> u64 {
        self.lane_worlds
            .saturating_sub(self.unique_worlds + self.worlds_replayed)
    }

    /// Worlds early stopping saved across all batches.
    pub fn worlds_saved(&self) -> u64 {
        self.budget_total.saturating_sub(self.lane_worlds)
    }

    /// Folds one executed batch's accounting into the cumulative
    /// counters. Public so the `sfnet` executor shares the exact
    /// mapping (and therefore the exact summary line) with the
    /// in-process service.
    pub fn absorb(&mut self, batch: &BatchStats) {
        self.requests_served += batch.requests;
        self.batches += 1;
        self.unique_worlds += batch.unique_worlds;
        self.worlds_replayed += batch.worlds_replayed;
        self.cache_hits += batch.cache_hits;
        self.lane_worlds += batch.lane_worlds;
        self.budget_total += batch.budget_total;
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} batches={} worlds: unique={} shared={} saved={} \
             replayed={} cache_hits={} | queue_depth={} \
             drain_latency: p50={} p99={} (n={})",
            self.requests_served,
            self.batches,
            self.unique_worlds,
            self.worlds_shared(),
            self.worlds_saved(),
            self.worlds_replayed,
            self.cache_hits,
            self.queue_depth,
            self.drain_p50,
            self.drain_p99,
            self.drain_samples
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set (`q` in
/// `[0, 1]`); 0 on an empty set. Shared by the in-process service
/// (tick units) and the `sfnet` executor (microseconds).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One registered dataset: its prepared engine, its pending queue, and
/// its cross-batch world cache.
#[derive(Debug)]
struct Session {
    handle: DatasetHandle,
    prepared: PreparedAudit,
    cache: WorldCache,
    /// Pending requests with the clock value each was submitted at
    /// (the drain-latency sample recorded when the batch executes).
    queue: Vec<(Ticket, AuditRequest, u64)>,
    /// Clock time of the oldest pending submission (None when empty);
    /// drives [`DrainPolicy::Deadline`].
    queued_since: Option<u64>,
}

/// The audit serving surface: many registered datasets behind one
/// service, ticketed submission, policy-driven batching, and a
/// per-dataset cross-batch world cache.
///
/// * **Sessions** — [`AuditService::register`] prepares a dataset's
///   engine once and returns a [`DatasetHandle`]; requests route by
///   handle; [`AuditService::unregister`] evicts the session (engine,
///   queue, and cache).
/// * **Tickets** — [`AuditService::submit`] validates, queues, and
///   returns a [`Ticket`] immediately; [`AuditService::poll`] /
///   [`AuditService::take`] decouple submission from execution.
/// * **Drain policies** — [`DrainPolicy`] decides when queues execute,
///   driven by the explicit [`AuditService::tick`] clock;
///   [`AuditService::flush`] is the manual escape hatch.
/// * **World cache** — each session's executed batches feed a
///   [`WorldCache`]; repeat or extended requests replay cached
///   τ-streams and simulate only the un-cached suffix,
///   **bit-identical** to a cold run by construction.
#[derive(Debug, Default)]
pub struct AuditService {
    sessions: Vec<Session>,
    /// Executed responses awaiting [`AuditService::take`], keyed by
    /// ticket id (BTreeMap so iteration is submission order).
    completed: BTreeMap<u64, AuditResponse>,
    next_handle: u64,
    next_ticket: u64,
    clock: u64,
    policy: DrainPolicy,
    /// Per-session world-cache byte cap applied at registration
    /// (`None` = unbounded caches).
    cache_capacity_bytes: Option<usize>,
    /// Per-session pending-queue cap (`None` = unbounded; submissions
    /// beyond it are rejected with [`SubmitError::Busy`]).
    queue_capacity: Option<usize>,
    /// Submission→drain latency samples in service-clock ticks,
    /// ascending-sorted lazily when the percentiles are recomputed.
    drain_latencies: Vec<u64>,
    /// Tickets whose wire request asked for GeoJSON findings on the
    /// response ([`RequestEnvelope::geojson`](crate::RequestEnvelope)).
    /// Presentation state only — execution and reports are unaffected.
    geojson_tickets: BTreeSet<u64>,
    stats: ServerStats,
    /// Optional world-evaluation backend (e.g. a distributed shard
    /// coordinator) threaded into every drain; `None` simulates
    /// in-process. The [`WorldEvaluator`] contract makes either path
    /// bit-identical.
    evaluator: Option<Arc<dyn WorldEvaluator>>,
}

impl AuditService {
    /// An empty service with [`DrainPolicy::Manual`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the drain policy at construction.
    pub fn with_policy(mut self, policy: DrainPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps every *subsequently registered* session's world cache at
    /// `bytes` resident τ-buffer bytes ([`WorldCache::with_capacity_bytes`]):
    /// long-lived deployments trade repeat-batch replays for bounded
    /// memory, with least-recently-used world classes evicted first.
    /// Existing sessions keep the cache they were registered with.
    pub fn with_cache_capacity_bytes(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = Some(bytes);
        self
    }

    /// The per-session world-cache byte cap (`None` = unbounded).
    pub fn cache_capacity_bytes(&self) -> Option<usize> {
        self.cache_capacity_bytes
    }

    /// Bounds every session's pending queue at `requests`: a submission
    /// that would exceed it is rejected with [`SubmitError::Busy`]
    /// instead of queueing without limit — the in-process version of
    /// the `sfnet` executor's backpressure. Floored at 1.
    pub fn with_queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = Some(requests.max(1));
        self
    }

    /// The per-session pending-queue cap (`None` = unbounded).
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Installs a world-evaluation backend (builder form). See
    /// [`AuditService::set_evaluator`].
    pub fn with_evaluator(mut self, evaluator: Arc<dyn WorldEvaluator>) -> Self {
        self.evaluator = Some(evaluator);
        self
    }

    /// Installs (or, with `None`, removes) a world-evaluation backend.
    /// Every subsequent drain routes world simulation through it —
    /// e.g. a distributed shard coordinator — instead of the
    /// in-process engine. The [`WorldEvaluator`] contract guarantees
    /// responses stay bit-identical either way.
    pub fn set_evaluator(&mut self, evaluator: Option<Arc<dyn WorldEvaluator>>) {
        self.evaluator = evaluator;
    }

    /// The installed world-evaluation backend, if any.
    pub fn evaluator(&self) -> Option<&Arc<dyn WorldEvaluator>> {
        self.evaluator.as_ref()
    }

    /// The active drain policy.
    pub fn policy(&self) -> DrainPolicy {
        self.policy
    }

    /// Replaces the drain policy. Takes effect from the next
    /// submission/tick; already-queued requests are not retroactively
    /// executed until an event (submit, tick, flush) triggers them.
    pub fn set_policy(&mut self, policy: DrainPolicy) {
        self.policy = policy;
    }

    /// The service clock (last value passed to [`AuditService::tick`]).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Registers a dataset session: prepares the serving engine from
    /// the dataset, candidate regions, and base config (whose
    /// backend/strategy are the expensive knobs; the rest become
    /// per-request defaults) and returns its routing handle.
    ///
    /// # Errors
    /// Propagates [`PreparedAudit::prepare`]'s validation errors
    /// ([`ScanError::EmptyRegionSet`],
    /// [`ScanError::DegenerateOutcomes`]).
    pub fn register(
        &mut self,
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        config: AuditConfig,
    ) -> Result<DatasetHandle, ScanError> {
        Ok(self.register_prepared(PreparedAudit::prepare(outcomes, regions, config)?))
    }

    /// Registers an already-prepared engine as a session.
    pub fn register_prepared(&mut self, prepared: PreparedAudit) -> DatasetHandle {
        let handle = DatasetHandle(self.next_handle);
        self.next_handle += 1;
        self.sessions.push(Session {
            handle,
            prepared,
            cache: match self.cache_capacity_bytes {
                Some(bytes) => WorldCache::with_capacity_bytes(bytes),
                None => WorldCache::new(),
            },
            queue: Vec::new(),
            queued_since: None,
        });
        handle
    }

    /// Evicts a session: its engine, pending queue, and world cache
    /// are dropped (pending tickets become [`Status::Unknown`];
    /// already-executed responses stay claimable). Returns the
    /// session's final cache accounting.
    ///
    /// # Errors
    /// [`SubmitError::UnknownHandle`] if nothing is registered under
    /// the handle.
    pub fn unregister(&mut self, handle: DatasetHandle) -> Result<CacheStats, SubmitError> {
        let idx = self.session_index(handle)?;
        let session = self.sessions.remove(idx);
        Ok(*session.cache.stats())
    }

    /// Handles of the registered sessions, in registration order.
    pub fn handles(&self) -> Vec<DatasetHandle> {
        self.sessions.iter().map(|s| s.handle).collect()
    }

    /// The prepared engine behind a handle.
    pub fn prepared(&self, handle: DatasetHandle) -> Option<&PreparedAudit> {
        self.session(handle).map(|s| &s.prepared)
    }

    /// A request with a handle's per-request defaults.
    pub fn default_request(&self, handle: DatasetHandle) -> Option<AuditRequest> {
        self.session(handle)
            .map(|s| AuditRequest::from_config(s.prepared.base_config()))
    }

    /// A handle's cumulative world-cache accounting.
    pub fn cache_stats(&self, handle: DatasetHandle) -> Option<CacheStats> {
        self.session(handle).map(|s| *s.cache.stats())
    }

    /// World-cache accounting summed across every registered session —
    /// the `cache` half of the wire's `{"stats": true}` snapshot.
    pub fn cache_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for session in &self.sessions {
            total.absorb(session.cache.stats());
        }
        total
    }

    /// Worlds currently cached for a handle (across its world classes).
    pub fn cached_worlds(&self, handle: DatasetHandle) -> Option<usize> {
        self.session(handle).map(|s| s.cache.cached_worlds())
    }

    /// Validates and queues a request against a session; returns its
    /// ticket immediately. Nothing expensive happens here unless the
    /// drain policy fires ([`DrainPolicy::MaxPending`] executes the
    /// handle's batch as soon as the queue is long enough).
    ///
    /// # Errors
    /// * [`SubmitError::UnknownHandle`] — no such session.
    /// * [`SubmitError::InvalidRequest`] — invalid knobs, rejected
    ///   *before* queueing so a bad request can never take an already
    ///   queued batch down with it.
    /// * [`SubmitError::Busy`] — the session queue is at its
    ///   [`AuditService::with_queue_capacity`] cap; nothing was queued
    ///   and no ticket was consumed.
    pub fn submit(
        &mut self,
        handle: DatasetHandle,
        request: AuditRequest,
    ) -> Result<Ticket, SubmitError> {
        request.validate()?;
        let idx = self.session_index(handle)?;
        if let Some(capacity) = self.queue_capacity {
            let pending = self.sessions[idx].queue.len();
            if pending >= capacity {
                return Err(SubmitError::Busy { pending, capacity });
            }
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let clock = self.clock;
        let session = &mut self.sessions[idx];
        session.queue.push((ticket, request, clock));
        session.queued_since.get_or_insert(clock);
        self.stats.queue_depth = self.pending_total() as u64;
        if let DrainPolicy::MaxPending(limit) = self.policy {
            if self.sessions[idx].queue.len() >= limit.max(1) {
                self.run_session_batch(idx);
            }
        }
        Ok(ticket)
    }

    /// Where a ticket stands. The `Ready` response is a clone; claim
    /// it with [`AuditService::take`].
    pub fn poll(&self, ticket: Ticket) -> Status {
        if let Some(response) = self.completed.get(&ticket.0) {
            return Status::Ready(response.clone());
        }
        let queued = self
            .sessions
            .iter()
            .any(|s| s.queue.iter().any(|(t, _, _)| *t == ticket));
        if queued {
            Status::Queued
        } else {
            Status::Unknown
        }
    }

    /// Claims a ready response, freeing its slot. `None` if the ticket
    /// is not ready (still queued, never issued, or already taken).
    pub fn take(&mut self, ticket: Ticket) -> Option<AuditResponse> {
        self.completed.remove(&ticket.0)
    }

    /// Remembers that `ticket`'s response should carry GeoJSON
    /// findings. [`AuditService::submit_json`] calls this for
    /// envelopes with the `geojson` flag; direct [`AuditService::submit`]
    /// callers can opt in explicitly.
    pub fn mark_geojson(&mut self, ticket: Ticket) {
        self.geojson_tickets.insert(ticket.0);
    }

    /// Whether `ticket`'s request asked for GeoJSON findings. Clears
    /// the mark — the serving loop asks exactly once, when it renders
    /// the response line.
    pub fn geojson_requested(&mut self, ticket: Ticket) -> bool {
        self.geojson_tickets.remove(&ticket.0)
    }

    /// Claims every ready response, in ticket (= submission) order.
    pub fn take_ready(&mut self) -> Vec<AuditResponse> {
        let completed = std::mem::take(&mut self.completed);
        completed.into_values().collect()
    }

    /// Number of queued, not-yet-executed requests under a handle.
    pub fn pending(&self, handle: DatasetHandle) -> Option<usize> {
        self.session(handle).map(|s| s.queue.len())
    }

    /// Queued requests across every session.
    pub fn pending_total(&self) -> usize {
        self.sessions.iter().map(|s| s.queue.len()).sum()
    }

    /// Executed responses awaiting [`AuditService::take`].
    pub fn ready_total(&self) -> usize {
        self.completed.len()
    }

    /// The execution plan a handle's current queue would run as — for
    /// introspection; the queue is untouched.
    pub fn plan(&self, handle: DatasetHandle) -> Option<ExecutionPlan> {
        self.session(handle)
            .map(|s| ExecutionPlan::new(s.queue.iter().map(|(_, r, _)| *r).collect()))
    }

    /// Advances the service clock to `now` (monotonic: a smaller value
    /// than the current clock is ignored) and executes every queue
    /// whose [`DrainPolicy::Deadline`] has expired. Returns the number
    /// of requests executed.
    pub fn tick(&mut self, now: u64) -> usize {
        self.clock = self.clock.max(now);
        let DrainPolicy::Deadline(ticks) = self.policy else {
            return 0;
        };
        let clock = self.clock;
        let expired: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.queued_since
                    .is_some_and(|since| clock.saturating_sub(since) >= ticks)
            })
            .map(|(i, _)| i)
            .collect();
        expired
            .into_iter()
            .map(|idx| self.run_session_batch(idx))
            .sum()
    }

    /// Executes every pending queue right now, regardless of policy —
    /// the manual escape hatch. Returns the number of requests
    /// executed.
    pub fn flush(&mut self) -> usize {
        (0..self.sessions.len())
            .map(|idx| self.run_session_batch(idx))
            .sum()
    }

    /// Executes one handle's pending queue right now. Returns the
    /// number of requests executed.
    ///
    /// # Errors
    /// [`SubmitError::UnknownHandle`] if nothing is registered under
    /// the handle.
    pub fn flush_handle(&mut self, handle: DatasetHandle) -> Result<usize, SubmitError> {
        let idx = self.session_index(handle)?;
        Ok(self.run_session_batch(idx))
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn session(&self, handle: DatasetHandle) -> Option<&Session> {
        self.sessions.iter().find(|s| s.handle == handle)
    }

    fn session_index(&self, handle: DatasetHandle) -> Result<usize, SubmitError> {
        self.sessions
            .iter()
            .position(|s| s.handle == handle)
            .ok_or(SubmitError::UnknownHandle(handle))
    }

    /// Plans and executes one session's queue as a single batch,
    /// resuming from (and extending) the session's world cache;
    /// responses land in the completed map.
    fn run_session_batch(&mut self, idx: usize) -> usize {
        let session = &mut self.sessions[idx];
        if session.queue.is_empty() {
            return 0;
        }
        let queued = std::mem::take(&mut session.queue);
        session.queued_since = None;
        let requests: Vec<AuditRequest> = queued.iter().map(|(_, r, _)| *r).collect();
        let evaluator = self.evaluator.clone();
        let (reports, batch) = session.prepared.run_batch_cached_with(
            &requests,
            &mut session.cache,
            evaluator.as_deref(),
        );
        self.stats.absorb(&batch);
        let clock = self.clock;
        self.drain_latencies
            .extend(queued.iter().map(|(_, _, at)| clock.saturating_sub(*at)));
        self.drain_latencies.sort_unstable();
        self.stats.drain_p50 = percentile(&self.drain_latencies, 0.50);
        self.stats.drain_p99 = percentile(&self.drain_latencies, 0.99);
        self.stats.drain_samples = self.drain_latencies.len() as u64;
        let served = queued.len();
        for ((ticket, _, _), report) in queued.into_iter().zip(reports) {
            self.completed
                .insert(ticket.0, AuditResponse { ticket, report });
        }
        self.stats.queue_depth = self.pending_total() as u64;
        served
    }
}
