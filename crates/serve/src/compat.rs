//! The deprecated v1 serving surface, re-exported over
//! [`AuditService`] for one release.
//!
//! `AuditServer` was single-dataset and synchronous: submit into one
//! implicit queue, block on `drain()`. The v2 [`AuditService`] replaces
//! it (sessions → tickets → drain policies → world cache); this shim
//! keeps v1 call sites compiling — with a deprecation warning, not a
//! break — by wrapping a one-session service. Behaviour differences
//! from true v1 are limited to what v2 adds underneath: drained
//! batches warm the session's world cache, so repeated requests stop
//! re-simulating worlds (results are bit-identical either way).
//!
//! One rename does surface: responses now carry `ticket` instead of
//! `id` (the old `RequestId` is an alias of [`Ticket`]).

#![allow(deprecated)]

use crate::service::{AuditResponse, AuditService, DatasetHandle, ServerStats, Ticket};
use sfscan::prepared::{AuditRequest, ExecutionPlan, PreparedAudit};
use sfscan::{AuditConfig, RegionSet, ScanError, SpatialOutcomes};

/// The v1 name for a submission id.
#[deprecated(note = "requests are identified by `Ticket` in the AuditService API")]
pub type RequestId = Ticket;

/// A single-dataset queue-then-drain front-end — the v1 API, now a
/// thin wrapper over one [`AuditService`] session.
#[deprecated(
    note = "use AuditService: register datasets for handles, submit for tickets, \
            poll/take for responses, tick/flush for batching"
)]
#[derive(Debug)]
pub struct AuditServer {
    service: AuditService,
    handle: DatasetHandle,
    /// Submitted, not-yet-drained tickets in submission order.
    order: Vec<Ticket>,
}

impl AuditServer {
    /// Prepares the serving engine once (see
    /// [`AuditService::register`]).
    ///
    /// # Errors
    /// Propagates [`PreparedAudit::prepare`]'s validation errors.
    pub fn new(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        config: AuditConfig,
    ) -> Result<Self, ScanError> {
        Ok(Self::from_prepared(PreparedAudit::prepare(
            outcomes, regions, config,
        )?))
    }

    /// Wraps an already-prepared engine.
    pub fn from_prepared(prepared: PreparedAudit) -> Self {
        let mut service = AuditService::new();
        let handle = service.register_prepared(prepared);
        AuditServer {
            service,
            handle,
            order: Vec::new(),
        }
    }

    /// The prepared engine serving this queue.
    pub fn prepared(&self) -> &PreparedAudit {
        self.service
            .prepared(self.handle)
            .expect("the shim's one session is never evicted")
    }

    /// The base config requests are completed against.
    pub fn base_config(&self) -> &AuditConfig {
        self.prepared().base_config()
    }

    /// A request with this server's per-request defaults.
    pub fn default_request(&self) -> AuditRequest {
        AuditRequest::from_config(self.base_config())
    }

    /// Enqueues a request; returns the id its response will carry.
    ///
    /// # Panics
    /// Panics on invalid knobs — the v1 contract. New code should call
    /// [`AuditService::submit`], which returns the typed
    /// [`SubmitError`](crate::SubmitError) instead.
    pub fn submit(&mut self, request: AuditRequest) -> RequestId {
        match self.service.submit(self.handle, request) {
            Ok(ticket) => {
                self.order.push(ticket);
                ticket
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Enqueues a JSON-encoded [`AuditRequest`].
    ///
    /// # Errors
    /// Returns an error — without touching the queue — when the
    /// payload does not decode or decodes to a request with invalid
    /// knobs.
    pub fn submit_json(&mut self, json: &str) -> Result<RequestId, serde::Error> {
        let request: AuditRequest = serde_json::from_str(json)?;
        match self.service.submit(self.handle, request) {
            Ok(ticket) => {
                self.order.push(ticket);
                Ok(ticket)
            }
            Err(e) => Err(serde::Error::msg(e.to_string())),
        }
    }

    /// Number of queued, not-yet-served requests.
    pub fn pending(&self) -> usize {
        self.service
            .pending(self.handle)
            .expect("the shim's one session is never evicted")
    }

    /// The execution plan the current queue would run as.
    pub fn plan(&self) -> ExecutionPlan {
        self.service
            .plan(self.handle)
            .expect("the shim's one session is never evicted")
    }

    /// Serves every queued request as one batch, returning the
    /// responses in submission order. The queue is left empty.
    pub fn drain(&mut self) -> Vec<AuditResponse> {
        self.service
            .flush_handle(self.handle)
            .expect("the shim's one session is never evicted");
        let order = std::mem::take(&mut self.order);
        order
            .into_iter()
            .map(|ticket| {
                self.service
                    .take(ticket)
                    .expect("flushed tickets are ready")
            })
            .collect()
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &ServerStats {
        self.service.stats()
    }

    /// The v2 service underneath, for incremental migration.
    pub fn service(&mut self) -> &mut AuditService {
        &mut self.service
    }
}
