//! End-to-end tests over real sockets: byte-identity with the
//! in-process JSONL path, backpressure under overload, deadline drains
//! under the real timer thread, and no-lost-ticket graceful shutdown.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sfgeo::{Point, Rect};
use sfnet::{
    AuditTcpServer, Clock, ExecutorConfig, ManualClock, NetExecutor, SystemClock, MAX_LINE_BYTES,
};
use sfscan::{AuditConfig, AuditRequest, Direction, RegionSet, SpatialOutcomes, WorldGen};
use sfserve::{
    AuditService, DatasetHandle, DrainPolicy, ErrorCode, RequestEnvelope, ResponseEnvelope,
    WireStatus,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..10.0);
        let y: f64 = rng.gen_range(0.0..10.0);
        points.push(Point::new(x, y));
        labels.push(rng.gen_bool(if x < 5.0 { 0.8 } else { 0.3 }));
    }
    SpatialOutcomes::new(points, labels).unwrap()
}

fn grid() -> RegionSet {
    RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
}

fn base() -> AuditConfig {
    AuditConfig::new(0.05).with_worlds(99).with_seed(7)
}

fn request(seed: u64) -> AuditRequest {
    AuditRequest::new(0.05).with_worlds(99).with_seed(seed)
}

fn line_for(handle: u64, request: AuditRequest) -> String {
    RequestEnvelope::new(DatasetHandle(handle), request).to_json()
}

/// The mixed request stream every transcript test replays: cold audits
/// under both worldgens, a warm repeat, a direction variant, a GeoJSON
/// rendering, an unknown handle, an invalid request, a malformed line,
/// and a blank line (which produces no response at all).
fn mixed_stream() -> Vec<String> {
    let r = request(1);
    let mut invalid = RequestEnvelope::new(DatasetHandle(0), r);
    invalid.request.alpha = 5.0;
    vec![
        line_for(0, r),
        line_for(0, r.with_worldgen(WorldGen::Scalar)),
        String::new(),
        line_for(0, r), // warm repeat: cache replay, identical bytes
        line_for(0, r.with_direction(Direction::High)),
        RequestEnvelope::new(DatasetHandle(0), r.with_seed(2))
            .with_geojson()
            .to_json(),
        line_for(7, r), // unknown handle
        invalid.to_json(),
        String::from("not json"),
    ]
}

/// What `experiments serve` would print for this stream — the
/// in-process reference path, reimplemented exactly (submit each line,
/// flush at EOF, one envelope per non-blank line in input order).
fn inprocess_transcript(lines: &[String]) -> Vec<String> {
    let mut service = AuditService::new();
    let handle = service
        .register(&outcomes(500, 3), &grid(), base())
        .unwrap();
    assert_eq!(handle, DatasetHandle(0));
    let mut fates = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        fates.push(service.submit_json(line));
    }
    service.flush();
    fates
        .into_iter()
        .map(|fate| match fate {
            Ok(ticket) => {
                let wants_geojson = service.geojson_requested(ticket);
                let envelope = ResponseEnvelope::ready(service.take(ticket).unwrap());
                if wants_geojson {
                    envelope.with_geojson_findings()
                } else {
                    envelope
                }
                .to_json()
            }
            Err(error) => ResponseEnvelope::rejected(&error).to_json(),
        })
        .collect()
}

fn live_server(config: ExecutorConfig) -> AuditTcpServer {
    let executor = Arc::new(NetExecutor::new(config, Arc::new(SystemClock::new())));
    executor
        .register(&outcomes(500, 3), &grid(), base())
        .unwrap();
    AuditTcpServer::bind("127.0.0.1:0", executor, Duration::from_millis(5)).unwrap()
}

/// Sends `lines`, half-closes the write side, reads every response.
fn roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    for line in lines {
        writeln!(stream, "{line}").unwrap();
    }
    stream.shutdown(Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

#[test]
fn socket_responses_are_byte_identical_to_the_inprocess_path() {
    let stream = mixed_stream();
    let expected = inprocess_transcript(&stream);
    assert_eq!(expected.len(), 8, "one line per non-blank input");

    let server = live_server(ExecutorConfig {
        workers: 2,
        queue_capacity: None,
        policy: DrainPolicy::Manual,
    });
    let addr = server.local_addr();

    // Three concurrent clients replay the same stream; every one of
    // them must read the same bytes the stdin path would print —
    // concurrency, shared caching, and batching are invisible.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let stream = stream.clone();
            std::thread::spawn(move || roundtrip(addr, &stream))
        })
        .collect();
    for client in clients {
        let transcript = client.join().unwrap();
        assert_eq!(transcript, expected);
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests_served, 15, "5 accepted lines x 3 clients");
    // The three clients' identical world classes were deduplicated —
    // within a batch (shared) or across batches (replayed from the
    // session cache), depending on how the flushes interleaved.
    assert!(stats.worlds_shared() + stats.worlds_replayed > 0);
}

#[test]
fn overload_is_rejected_with_busy_envelopes_not_unbounded_queuing() {
    // Capacity 1 with manual drain: the first line occupies the only
    // slot until EOF, so every further line bounces with "busy".
    let server = live_server(ExecutorConfig {
        workers: 1,
        queue_capacity: Some(1),
        policy: DrainPolicy::Manual,
    });
    let lines = vec![
        line_for(0, request(1)),
        line_for(0, request(2)),
        line_for(0, request(3)),
    ];
    let transcript = roundtrip(server.local_addr(), &lines);
    assert_eq!(transcript.len(), 3);

    let first = ResponseEnvelope::from_json(&transcript[0]).unwrap();
    assert_eq!(first.status, WireStatus::Ready);
    for line in &transcript[1..] {
        let envelope = ResponseEnvelope::from_json(line).unwrap();
        assert_eq!(envelope.status, WireStatus::Busy, "{line}");
        assert_eq!(envelope.code, Some(ErrorCode::Busy));
        assert_eq!(envelope.ticket, None, "busy burns no ticket");
        assert!(line.contains("\"status\":\"busy\""), "{line}");
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests_served, 1);
}

#[test]
fn deadline_fires_under_the_timer_thread_without_test_sleeps() {
    // The server's timer thread polls tick_now() every 5ms, but the
    // executor reads a ManualClock — so the deadline expires exactly
    // when the test says so, never by wall time.
    let clock = Arc::new(ManualClock::new());
    let executor = Arc::new(NetExecutor::new(
        ExecutorConfig {
            workers: 2,
            queue_capacity: None,
            policy: DrainPolicy::Deadline(1_000),
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    executor
        .register(&outcomes(500, 3), &grid(), base())
        .unwrap();
    let server = AuditTcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&executor),
        Duration::from_millis(5),
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    writeln!(stream, "{}", line_for(0, request(1))).unwrap();
    stream.flush().unwrap();

    // Give the reader ample real time to enqueue, and the timer many
    // tick cycles at clock 0: the job must still be pending, because
    // the *manual* clock has not reached the deadline.
    let waited = std::time::Instant::now();
    while executor.pending_total() == 0 && waited.elapsed() < Duration::from_secs(5) {
        std::thread::yield_now();
    }
    assert_eq!(executor.pending_total(), 1, "accepted and queued");
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        executor.pending_total(),
        1,
        "many timer ticks at clock 0 drain nothing"
    );

    // Advance the injected clock past the deadline; the next timer
    // tick promotes and a worker serves. The blocking read is the
    // synchronisation — no sleep-and-hope on the serving side.
    clock.set(1_000);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let envelope = ResponseEnvelope::from_json(line.trim()).unwrap();
    assert_eq!(envelope.status, WireStatus::Ready);

    // The drain latency was measured on the manual clock: submitted
    // at 0, drained at 1000.
    let stats = executor.stats();
    assert_eq!(stats.drain_samples, 1);
    assert_eq!(stats.drain_p50, 1_000);

    stream.shutdown(Shutdown::Both).unwrap();
    server.shutdown();
}

#[test]
fn oversized_line_is_rejected_with_a_typed_envelope_and_the_connection_closes() {
    // A client streams one line past the reader's byte cap. The server
    // must answer with a single typed `malformed` rejection naming the
    // cap and then close the connection — never buffer the line
    // without bound, never resynchronise mid-line.
    let server = live_server(ExecutorConfig {
        workers: 1,
        queue_capacity: None,
        policy: DrainPolicy::Manual,
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // One unterminated line just past the cap. The server may reject
    // and close while we are still writing, so tolerate a broken pipe
    // on the tail — the read side of our socket stays valid.
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= MAX_LINE_BYTES {
        if stream.write_all(&chunk).is_err() {
            break;
        }
        sent += chunk.len();
    }
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();

    let transcript: Vec<String> = BufReader::new(stream)
        .lines()
        .map_while(|l| l.ok())
        .collect();
    assert_eq!(transcript.len(), 1, "exactly one rejection, then EOF");
    let envelope = ResponseEnvelope::from_json(&transcript[0]).unwrap();
    assert_eq!(envelope.status, WireStatus::Rejected);
    assert_eq!(envelope.code, Some(ErrorCode::Malformed));
    assert_eq!(envelope.ticket, None);
    assert!(
        transcript[0].contains(&MAX_LINE_BYTES.to_string()),
        "the rejection names the byte cap: {}",
        transcript[0]
    );

    let stats = server.shutdown();
    assert_eq!(stats.requests_served, 0, "nothing was accepted");
}

#[test]
fn stats_probe_lines_are_answered_inline_without_burning_tickets() {
    // `{"stats":true}` probes interleave with a real request; each
    // probe is answered in input order with a snapshot envelope, and
    // the real request's ticket numbering is unperturbed.
    let server = live_server(ExecutorConfig {
        workers: 1,
        queue_capacity: None,
        policy: DrainPolicy::Manual,
    });
    let lines = vec![
        String::from(r#"{"stats":true}"#),
        line_for(0, request(1)),
        String::from(r#"{"stats":true}"#),
    ];
    let transcript = roundtrip(server.local_addr(), &lines);
    assert_eq!(transcript.len(), 3, "one response per line, in order");

    let cold = ResponseEnvelope::from_json(&transcript[0]).unwrap();
    assert_eq!(cold.status, WireStatus::Stats);
    assert_eq!(cold.ticket, None, "a probe burns no ticket");
    assert_eq!(
        cold.stats.unwrap().requests_served,
        0,
        "probed before any audit ran"
    );
    assert!(cold.cache.is_some());

    let audit = ResponseEnvelope::from_json(&transcript[1]).unwrap();
    assert_eq!(audit.status, WireStatus::Ready);
    assert_eq!(
        audit.ticket,
        Some(sfserve::Ticket(0)),
        "first real ticket is still 0"
    );

    // The trailing probe was answered inline at receipt — before the
    // EOF drain ran the audit — so it still reads zero served. Its
    // placement in the transcript (after the audit's response) is
    // sink ordering, not execution ordering.
    let warm = ResponseEnvelope::from_json(&transcript[2]).unwrap();
    assert_eq!(warm.status, WireStatus::Stats);
    assert!(warm.stats.is_some() && warm.cache.is_some());

    let stats = server.shutdown();
    assert_eq!(stats.requests_served, 1, "only the audit line was served");
}

#[test]
fn graceful_shutdown_answers_every_accepted_ticket() {
    // Manual drain and no client EOF: five accepted submissions sit
    // queued until the server itself shuts down. Graceful shutdown
    // must drain and deliver all five before closing — no lost
    // tickets.
    let server = live_server(ExecutorConfig {
        workers: 2,
        queue_capacity: None,
        policy: DrainPolicy::Manual,
    });
    let addr = server.local_addr();
    let executor = Arc::clone(server.executor());

    let stream = TcpStream::connect(addr).unwrap();
    {
        let mut w = stream.try_clone().unwrap();
        for seed in 0..5 {
            writeln!(w, "{}", line_for(0, request(seed))).unwrap();
        }
        w.flush().unwrap();
        // No write-side shutdown: the connection stays open, nothing
        // drains on its own.
    }
    let reader = std::thread::spawn(move || {
        BufReader::new(stream)
            .lines()
            .map_while(|l| l.ok())
            .collect::<Vec<String>>()
    });

    // Wait until all five are queued server-side, then pull the plug.
    let waited = std::time::Instant::now();
    while executor.pending_total() < 5 && waited.elapsed() < Duration::from_secs(5) {
        std::thread::yield_now();
    }
    assert_eq!(executor.pending_total(), 5);
    let stats = server.shutdown();

    let transcript = reader.join().unwrap();
    assert_eq!(transcript.len(), 5, "every accepted ticket answered");
    for (i, line) in transcript.iter().enumerate() {
        let envelope = ResponseEnvelope::from_json(line).unwrap();
        assert_eq!(envelope.status, WireStatus::Ready, "{line}");
        assert_eq!(envelope.ticket, Some(sfserve::Ticket(i as u64)));
    }
    assert_eq!(stats.requests_served, 5);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.drain_samples, 5);
}
