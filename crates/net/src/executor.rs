//! The concurrent executor: bounded per-session queues feeding a
//! worker pool over `Arc<PreparedAudit>`.
//!
//! This is [`sfserve::AuditService`]'s serving model re-hosted for
//! real concurrency. Sessions keep the same shape — one prepared
//! engine plus one cross-batch [`WorldCache`] each, handles assigned
//! `0, 1, …` in registration order — but submissions arrive from many
//! connection threads, batches execute on a pool of workers, and the
//! [`DrainPolicy`] clock is driven by a timer thread reading an
//! injected [`Clock`](crate::Clock) instead of explicit test ticks.
//!
//! Three properties carry over unchanged, and the integration tests
//! assert all of them:
//!
//! * **bit-identity** — a batch runs through
//!   [`PreparedAudit::run_batch_cached`], whose reports are
//!   bit-identical regardless of batch composition or cache state, so
//!   *how* the executor groups concurrent traffic can never change a
//!   single response byte;
//! * **backpressure** — each session's outstanding (queued or
//!   executing) requests are capped; a submission over the cap is
//!   rejected with [`SubmitError::Busy`] and nothing is queued,
//!   instead of the queue growing without bound;
//! * **fairness** — workers claim sessions round-robin, so one hot
//!   session streams through the pool interleaved with everyone else
//!   rather than starving them.

use crate::clock::Clock;
use sfscan::prepared::{AuditRequest, PreparedAudit};
use sfscan::worldcache::{CacheStats, WorldCache};
use sfscan::{AuditConfig, RegionSet, ScanError, SpatialOutcomes};
use sfserve::{
    percentile, AuditResponse, DatasetHandle, DrainPolicy, RequestEnvelope, ResponseEnvelope,
    ServerStats, SubmitError, Ticket,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Executor knobs. `Default` is a manual-drain executor with two
/// workers and no queue bound — the permissive configuration the unit
/// tests start from; the server always sets every field explicitly.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker threads executing batches. `0` means no threads are
    /// spawned and the caller drives execution with
    /// [`NetExecutor::run_pending_batch`] — the deterministic mode the
    /// fairness and policy tests use.
    pub workers: usize,
    /// Per-session bound on outstanding (queued or executing)
    /// requests; beyond it submissions fail with
    /// [`SubmitError::Busy`]. `None` disables backpressure.
    pub queue_capacity: Option<usize>,
    /// When queued requests become runnable. [`DrainPolicy::Deadline`]
    /// is measured in [`Clock`] units (microseconds under the server's
    /// [`SystemClock`](crate::SystemClock)).
    pub policy: DrainPolicy,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 2,
            queue_capacity: None,
            policy: DrainPolicy::Manual,
        }
    }
}

/// One accepted submission travelling through the executor.
struct Job {
    /// Connection-local ticket for the response line.
    wire_ticket: Ticket,
    request: AuditRequest,
    geojson: bool,
    /// Clock reading at acceptance — the latency sample's start.
    submitted_at: u64,
    /// Where the response line goes.
    sink: Arc<ResponseSink>,
    /// The line's position in its connection's output order.
    seq: u64,
}

/// One registered dataset inside the executor.
struct SessionSlot {
    /// Shared with every worker that claims this session's batches.
    prepared: Arc<PreparedAudit>,
    /// The session's cross-batch world cache; a worker holds the lock
    /// for the duration of one batch.
    cache: Arc<Mutex<WorldCache>>,
    /// Accepted, not yet runnable under the drain policy.
    pending: VecDeque<Job>,
    /// Clock reading of the oldest pending submission (deadline base).
    pending_since: Option<u64>,
    /// Runnable, waiting for a worker.
    ready: VecDeque<Job>,
    /// Jobs currently executing on workers.
    executing: usize,
}

impl SessionSlot {
    fn outstanding(&self) -> usize {
        self.pending.len() + self.ready.len() + self.executing
    }
}

/// Mutable executor state behind the one lock.
struct State {
    sessions: Vec<SessionSlot>,
    /// Next session index a worker's claim scan starts from.
    rr_cursor: usize,
    stats: ServerStats,
    /// Ascending-sorted submission→drain latency samples.
    latencies: Vec<u64>,
    /// Monotonic clock high-water mark (deadlines compare against it).
    clock_now: u64,
    shutdown: bool,
}

impl State {
    fn queue_depth(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| (s.pending.len() + s.ready.len()) as u64)
            .sum()
    }

    fn jobs_outstanding(&self) -> usize {
        self.sessions.iter().map(SessionSlot::outstanding).sum()
    }

    fn has_ready(&self) -> bool {
        self.sessions.iter().any(|s| !s.ready.is_empty())
    }

    /// Moves a session's pending queue to its ready queue.
    fn promote(&mut self, idx: usize) {
        let slot = &mut self.sessions[idx];
        slot.pending_since = None;
        while let Some(job) = slot.pending.pop_front() {
            slot.ready.push_back(job);
        }
    }

    /// Promotes every session whose deadline has expired at `now`.
    fn promote_expired(&mut self, ticks: u64) {
        let now = self.clock_now;
        for idx in 0..self.sessions.len() {
            if self.sessions[idx]
                .pending_since
                .is_some_and(|since| now.saturating_sub(since) >= ticks)
            {
                self.promote(idx);
            }
        }
    }

    /// Claims the next ready batch round-robin: the scan starts at
    /// `rr_cursor`, takes the first session with ready work
    /// (the *whole* ready queue, as one batch), and leaves the cursor
    /// just past it so the next claim looks at the following session
    /// first.
    fn claim(&mut self) -> Option<(usize, Vec<Job>)> {
        let n = self.sessions.len();
        for probe in 0..n {
            let idx = (self.rr_cursor + probe) % n;
            if !self.sessions[idx].ready.is_empty() {
                self.rr_cursor = (idx + 1) % n;
                let slot = &mut self.sessions[idx];
                let batch: Vec<Job> = slot.ready.drain(..).collect();
                slot.executing += batch.len();
                return Some((idx, batch));
            }
        }
        None
    }
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when ready work appears (or shutdown starts).
    work_cv: Condvar,
    /// Wakes flush/shutdown waiters when jobs complete.
    idle_cv: Condvar,
    clock: Arc<dyn Clock>,
    config: ExecutorConfig,
}

/// The concurrent serving executor. Cheap to share (`Arc` inside);
/// every method takes `&self`.
pub struct NetExecutor {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl NetExecutor {
    /// Builds the executor and spawns `config.workers` worker threads
    /// (none when `workers == 0`; the caller then drives execution via
    /// [`NetExecutor::run_pending_batch`]).
    pub fn new(config: ExecutorConfig, clock: Arc<dyn Clock>) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                sessions: Vec::new(),
                rr_cursor: 0,
                stats: ServerStats::default(),
                latencies: Vec::new(),
                clock_now: clock.now(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            clock,
            config,
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        NetExecutor {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Prepares and registers a dataset; handles are `0, 1, …` in
    /// registration order, exactly like [`sfserve::AuditService`].
    pub fn register(
        &self,
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        config: AuditConfig,
    ) -> Result<DatasetHandle, ScanError> {
        Ok(self.register_prepared(Arc::new(PreparedAudit::prepare(outcomes, regions, config)?)))
    }

    /// Registers an already-prepared engine.
    pub fn register_prepared(&self, prepared: Arc<PreparedAudit>) -> DatasetHandle {
        let mut state = self.inner.state.lock().unwrap();
        let handle = DatasetHandle(state.sessions.len() as u64);
        state.sessions.push(SessionSlot {
            prepared,
            cache: Arc::new(Mutex::new(WorldCache::new())),
            pending: VecDeque::new(),
            pending_since: None,
            ready: VecDeque::new(),
            executing: 0,
        });
        handle
    }

    /// Submits one request. On acceptance the eventual response line
    /// is delivered to `sink` at position `seq`, carrying
    /// `wire_ticket` — connection-local numbering, so a connection's
    /// transcript matches the in-process JSONL path byte for byte.
    ///
    /// # Errors
    /// [`SubmitError::UnknownHandle`], [`SubmitError::InvalidRequest`],
    /// or — when the session is at its outstanding cap —
    /// [`SubmitError::Busy`]. Nothing is queued on any error.
    pub fn submit(
        &self,
        handle: DatasetHandle,
        request: AuditRequest,
        geojson: bool,
        sink: &Arc<ResponseSink>,
        seq: u64,
        wire_ticket: Ticket,
    ) -> Result<(), SubmitError> {
        request.validate()?;
        let now = self.inner.clock.now();
        let mut state = self.inner.state.lock().unwrap();
        state.clock_now = state.clock_now.max(now);
        let idx = handle.0 as usize;
        if idx >= state.sessions.len() {
            return Err(SubmitError::UnknownHandle(handle));
        }
        if let Some(capacity) = self.inner.config.queue_capacity {
            let pending = state.sessions[idx].outstanding();
            if pending >= capacity {
                return Err(SubmitError::Busy { pending, capacity });
            }
        }
        let submitted_at = state.clock_now;
        let slot = &mut state.sessions[idx];
        slot.pending.push_back(Job {
            wire_ticket,
            request,
            geojson,
            submitted_at,
            sink: Arc::clone(sink),
            seq,
        });
        slot.pending_since.get_or_insert(submitted_at);
        match self.inner.config.policy {
            DrainPolicy::MaxPending(limit) => {
                if state.sessions[idx].pending.len() >= limit.max(1) {
                    state.promote(idx);
                    self.inner.work_cv.notify_all();
                }
            }
            DrainPolicy::Deadline(ticks) => {
                // A submission also advances the clock; an already
                // expired session runs without waiting for the timer.
                state.promote_expired(ticks);
                if state.has_ready() {
                    self.inner.work_cv.notify_all();
                }
            }
            DrainPolicy::Manual => {}
        }
        state.stats.queue_depth = state.queue_depth();
        Ok(())
    }

    /// Decodes one JSONL request line and submits it, mirroring
    /// [`sfserve::AuditService::submit_json`]'s malformed-line
    /// handling (same error text, for byte-identical rejection
    /// envelopes).
    pub fn submit_json(
        &self,
        line: &str,
        sink: &Arc<ResponseSink>,
        seq: u64,
        wire_ticket: Ticket,
    ) -> Result<(), SubmitError> {
        let envelope = RequestEnvelope::from_json(line).map_err(|e| SubmitError::Malformed {
            reason: e.to_string(),
        })?;
        self.submit(
            envelope.handle,
            envelope.request,
            envelope.geojson,
            sink,
            seq,
            wire_ticket,
        )
    }

    /// Advances the executor clock to `now` (monotonic) and promotes
    /// every session whose [`DrainPolicy::Deadline`] has expired. The
    /// server's timer thread calls this; tests call it directly with a
    /// [`ManualClock`](crate::ManualClock) reading.
    pub fn tick(&self, now: u64) {
        let mut state = self.inner.state.lock().unwrap();
        state.clock_now = state.clock_now.max(now);
        if let DrainPolicy::Deadline(ticks) = self.inner.config.policy {
            state.promote_expired(ticks);
            if state.has_ready() {
                self.inner.work_cv.notify_all();
            }
        }
        state.stats.queue_depth = state.queue_depth();
    }

    /// [`NetExecutor::tick`] at the injected clock's current reading.
    pub fn tick_now(&self) {
        self.tick(self.inner.clock.now());
    }

    /// Promotes everything and blocks until the executor is idle (no
    /// pending, ready, or executing jobs) — the EOF drain. With
    /// `workers == 0` the calling thread executes the batches itself.
    pub fn flush(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            for idx in 0..state.sessions.len() {
                state.promote(idx);
            }
            state.stats.queue_depth = state.queue_depth();
            self.inner.work_cv.notify_all();
        }
        if self.inner.config.workers == 0 {
            while self.run_pending_batch() {}
        }
        self.wait_idle();
    }

    /// Blocks until no job is pending, ready, or executing.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while state.jobs_outstanding() > 0 {
            state = self.inner.idle_cv.wait(state).unwrap();
        }
    }

    /// Claims and executes one ready batch on the calling thread.
    /// Returns `false` when nothing was ready. This is the worker
    /// loop's body made public, so `workers == 0` tests step the
    /// executor deterministically and observe the round-robin order.
    pub fn run_pending_batch(&self) -> bool {
        let claimed = {
            let mut state = self.inner.state.lock().unwrap();
            let claimed = state.claim();
            if claimed.is_some() {
                state.stats.queue_depth = state.queue_depth();
            }
            claimed
        };
        match claimed {
            Some((idx, batch)) => {
                execute_batch(&self.inner, idx, batch);
                true
            }
            None => false,
        }
    }

    /// A snapshot of the cumulative serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.inner.state.lock().unwrap().stats
    }

    /// World-cache accounting summed across every session — the
    /// `cache` half of the wire's `{"stats": true}` snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        let caches: Vec<Arc<Mutex<WorldCache>>> = {
            let state = self.inner.state.lock().unwrap();
            state
                .sessions
                .iter()
                .map(|s| Arc::clone(&s.cache))
                .collect()
        };
        let mut total = CacheStats::default();
        // Cache locks are taken outside the state lock (workers hold a
        // cache lock for a whole batch; holding both would stall every
        // submission behind the slowest batch).
        for cache in caches {
            total.absorb(cache.lock().unwrap().stats());
        }
        total
    }

    /// Queued-but-unexecuted requests across all sessions.
    pub fn pending_total(&self) -> usize {
        let state = self.inner.state.lock().unwrap();
        state
            .sessions
            .iter()
            .map(|s| s.pending.len() + s.ready.len())
            .sum()
    }

    /// Graceful stop: drains every queued job (so no accepted ticket
    /// is ever lost), joins the workers, and returns the final stats.
    /// Subsequent submissions still succeed but only a new
    /// [`NetExecutor::flush`]/[`NetExecutor::run_pending_batch`] would
    /// execute them — the server never submits after shutdown.
    pub fn shutdown(&self) -> ServerStats {
        {
            let mut state = self.inner.state.lock().unwrap();
            for idx in 0..state.sessions.len() {
                state.promote(idx);
            }
            state.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        if self.inner.config.workers == 0 {
            while self.run_pending_batch() {}
        }
        self.wait_idle();
        let workers: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for NetExecutor {
    fn drop(&mut self) {
        // Idempotent: a second shutdown sees no jobs and no workers.
        self.shutdown();
    }
}

/// A worker: wait for ready work, claim one session's batch
/// round-robin, execute, repeat. Exits when shutdown is flagged and no
/// ready work remains (pending jobs were promoted by shutdown itself).
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let claimed = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(claimed) = state.claim() {
                    state.stats.queue_depth = state.queue_depth();
                    break Some(claimed);
                }
                if state.shutdown {
                    break None;
                }
                state = inner.work_cv.wait(state).unwrap();
            }
        };
        match claimed {
            Some((idx, batch)) => execute_batch(inner, idx, batch),
            None => return,
        }
    }
}

/// Runs one claimed batch: engine + cache from the session slot,
/// responses delivered to each job's sink, accounting folded into the
/// shared stats.
fn execute_batch(inner: &Arc<Inner>, idx: usize, batch: Vec<Job>) {
    let (prepared, cache) = {
        let state = inner.state.lock().unwrap();
        let slot = &state.sessions[idx];
        (Arc::clone(&slot.prepared), Arc::clone(&slot.cache))
    };
    let requests: Vec<AuditRequest> = batch.iter().map(|j| j.request).collect();
    let (reports, batch_stats) = {
        let mut cache = cache.lock().unwrap();
        prepared.run_batch_cached(&requests, &mut cache)
    };
    let drained_at = inner.clock.now();

    // Render and deliver outside the state lock — serialisation is the
    // expensive part of small responses.
    for (job, report) in batch.iter().zip(reports) {
        let mut envelope = ResponseEnvelope::ready(AuditResponse {
            ticket: job.wire_ticket,
            report,
        });
        if job.geojson {
            envelope = envelope.with_geojson_findings();
        }
        job.sink.push(job.seq, envelope.to_json());
    }

    let mut state = inner.state.lock().unwrap();
    state.clock_now = state.clock_now.max(drained_at);
    let now = state.clock_now;
    state.stats.absorb(&batch_stats);
    state
        .latencies
        .extend(batch.iter().map(|j| now.saturating_sub(j.submitted_at)));
    state.latencies.sort_unstable();
    state.stats.drain_p50 = percentile(&state.latencies, 0.50);
    state.stats.drain_p99 = percentile(&state.latencies, 0.99);
    state.stats.drain_samples = state.latencies.len() as u64;
    state.sessions[idx].executing -= batch.len();
    state.stats.queue_depth = state.queue_depth();
    inner.idle_cv.notify_all();
}

/// Ordered response-line delivery for one connection.
///
/// Workers complete jobs in whatever order batches finish; the
/// connection's writer must emit exactly one line per input line, in
/// input order — the invariant that makes a socket transcript
/// byte-identical to the in-process JSONL path. The sink buffers
/// out-of-order completions in a map keyed by line sequence; the
/// writer blocks on [`ResponseSink::pop_next`] for the next sequence
/// it owes the peer. [`ResponseSink::seal`] (called at reader EOF,
/// when the total line count is known) lets the writer terminate once
/// it has written everything.
#[derive(Default)]
pub struct ResponseSink {
    state: Mutex<SinkState>,
    cv: Condvar,
}

#[derive(Default)]
struct SinkState {
    lines: BTreeMap<u64, String>,
    sealed: Option<u64>,
}

impl ResponseSink {
    /// An empty, unsealed sink.
    pub fn new() -> Arc<Self> {
        Arc::new(ResponseSink::default())
    }

    /// Delivers the response line for input position `seq`.
    pub fn push(&self, seq: u64, line: String) {
        let mut state = self.state.lock().unwrap();
        state.lines.insert(seq, line);
        self.cv.notify_all();
    }

    /// Declares the total number of response lines this sink will ever
    /// carry (the reader's input line count, known at EOF).
    pub fn seal(&self, total: u64) {
        let mut state = self.state.lock().unwrap();
        state.sealed = Some(total);
        self.cv.notify_all();
    }

    /// Blocks until line `seq` is available and removes it. Returns
    /// `None` once the sink is sealed at a total at or below `seq` —
    /// the writer's termination signal.
    pub fn pop_next(&self, seq: u64) -> Option<String> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(line) = state.lines.remove(&seq) {
                return Some(line);
            }
            if state.sealed.is_some_and(|total| seq >= total) {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }
}

/// Per-connection protocol state: line sequencing, connection-local
/// ticket numbering, and the sink responses are delivered to. Shared
/// by the TCP reader thread and the in-process tests, so both speak
/// exactly the same protocol.
pub struct ConnDriver {
    sink: Arc<ResponseSink>,
    /// Output position of the next processed line.
    seq: u64,
    /// Connection-local ticket counter: incremented only on accepted
    /// submissions, exactly like the in-process service's global
    /// counter over a single stream.
    accepted: u64,
}

impl Default for ConnDriver {
    fn default() -> Self {
        ConnDriver::new()
    }
}

impl ConnDriver {
    /// A fresh connection: next line is output position 0, next
    /// accepted submission is ticket 0.
    pub fn new() -> Self {
        ConnDriver {
            sink: ResponseSink::new(),
            seq: 0,
            accepted: 0,
        }
    }

    /// The sink this connection's responses are delivered to.
    pub fn sink(&self) -> Arc<ResponseSink> {
        Arc::clone(&self.sink)
    }

    /// Handles one input line: blank lines are skipped silently (no
    /// output line, mirroring the stdin path); anything else produces
    /// exactly one response line — immediately for rejections, via the
    /// executor for accepted submissions. Returns whether the line
    /// counted.
    pub fn handle_line(&mut self, executor: &NetExecutor, line: &str) -> bool {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        if sfserve::is_stats_request(trimmed) {
            // The metrics probe is answered inline — no queue, no
            // ticket, so it can never trip backpressure or shift the
            // connection's ticket numbering.
            let envelope =
                ResponseEnvelope::stats_snapshot(executor.stats(), executor.cache_stats());
            self.sink.push(seq, envelope.to_json());
            return true;
        }
        match executor.submit_json(trimmed, &self.sink, seq, Ticket(self.accepted)) {
            Ok(()) => self.accepted += 1,
            Err(error) => {
                self.sink
                    .push(seq, ResponseEnvelope::rejected(&error).to_json());
            }
        }
        true
    }

    /// Rejects an oversized input line with a typed
    /// [`SubmitError::Malformed`] envelope. The line still occupies
    /// exactly one output position — one response per line holds even
    /// for input the reader refused to buffer in full. The TCP reader
    /// calls this when its line-length cap trips, then closes the
    /// connection.
    pub fn reject_oversized(&mut self, limit: usize) {
        let seq = self.seq;
        self.seq += 1;
        let error = SubmitError::Malformed {
            reason: format!("request line exceeds {limit} bytes"),
        };
        self.sink
            .push(seq, ResponseEnvelope::rejected(&error).to_json());
    }

    /// Reader EOF: seals the sink at the processed line count so the
    /// writer can terminate after delivering everything owed. Returns
    /// that total.
    pub fn finish(&self) -> u64 {
        self.sink.seal(self.seq);
        self.seq
    }

    /// Lines processed so far.
    pub fn lines(&self) -> u64 {
        self.seq
    }
}
