//! Injected time for the executor.
//!
//! The in-process [`sfserve::AuditService`] is driven by an explicit
//! `tick(now)` counter precisely so batching is deterministic; the
//! network executor keeps that property by reading time through a
//! [`Clock`] trait instead of calling `Instant::now()` inline. The
//! server wires in [`SystemClock`] (microseconds of wall time); tests
//! wire in [`ManualClock`] and advance it by hand, so
//! [`DrainPolicy::Deadline`](sfserve::DrainPolicy::Deadline) coverage
//! never sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic `u64` time source. The unit is whatever the
/// implementation says it is — the executor only ever compares and
/// subtracts `now()` values, for
/// [`DrainPolicy::Deadline`](sfserve::DrainPolicy::Deadline) expiry
/// and for the submission→drain latency samples behind
/// [`ServerStats`](sfserve::ServerStats)'s `drain_p50`/`drain_p99`.
pub trait Clock: Send + Sync + 'static {
    /// The current time, in this clock's units, monotonically
    /// non-decreasing.
    fn now(&self) -> u64;
}

/// Wall time in **microseconds** since the clock was created. One
/// deadline tick therefore equals 1 µs under this clock; the server
/// CLI exposes milliseconds and multiplies.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose zero is now.
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-advanced clock for deterministic tests: `now()` returns
/// whatever was last [`set`](ManualClock::set) (initially 0), so a
/// test controls exactly when a deadline expires.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock to `now`. Monotonicity is the caller's
    /// contract, as with any clock a test controls.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::SeqCst);
    }

    /// Advances the clock by `delta` and returns the new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.now.fetch_add(delta, Ordering::SeqCst) + delta
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable_and_advanceable() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), 0);
        clock.set(10);
        assert_eq!(clock.now(), 10);
        assert_eq!(clock.advance(5), 15);
        assert_eq!(clock.now(), 15);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
