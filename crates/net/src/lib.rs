//! `sfnet`: the audit service as an actual network server.
//!
//! Serving v3. [`sfserve::AuditService`] gave the audit a
//! transport-shaped API — sessions, tickets, drain policies over an
//! explicit tick clock — but nothing listened on a socket and nothing
//! ran concurrently. This crate adds both, from the standard library
//! alone (std::net + threads; no async runtime, no new dependencies):
//!
//! * [`NetExecutor`] — the concurrent executor: per-session bounded
//!   queues in front of a worker pool sharing each session's
//!   `Arc<PreparedAudit>`, round-robin session claiming for fairness,
//!   [`SubmitError::Busy`](sfserve::SubmitError::Busy) backpressure
//!   when a queue is full, and
//!   [`DrainPolicy`](sfserve::DrainPolicy) semantics driven by an
//!   injected [`Clock`];
//! * [`AuditTcpServer`] — the TCP front end: an accept loop spawning a
//!   reader/writer thread pair per connection, newline-delimited
//!   [`RequestEnvelope`](sfserve::RequestEnvelope) /
//!   [`ResponseEnvelope`](sfserve::ResponseEnvelope) framing over the
//!   existing `sfserve` wire module, and a timer thread so
//!   [`DrainPolicy::Deadline`](sfserve::DrainPolicy::Deadline) fires
//!   on wall time;
//! * [`ConnDriver`] / [`ResponseSink`] — the per-connection protocol:
//!   one response line per request line, in request order,
//!   connection-local ticket numbering starting at 0.
//!
//! The load-bearing invariant, asserted by the integration tests and
//! the serve-bench load generator: **a connection's response
//! transcript is byte-identical to the in-process
//! `experiments serve` stdin path for the same request stream.**
//! Reports are bit-identical regardless of batch composition or cache
//! state (the PR 2/4 engine invariants), rejections reuse the exact
//! in-process error text, and ticket numbering is connection-local —
//! so concurrency, batching, and caching are invisible in the bytes.
//!
//! ```no_run
//! use sfnet::{AuditTcpServer, ExecutorConfig, NetExecutor, SystemClock};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! # fn demo(outcomes: &sfscan::SpatialOutcomes, regions: &sfscan::RegionSet,
//! #         config: sfscan::AuditConfig) -> std::io::Result<()> {
//! let executor = Arc::new(NetExecutor::new(
//!     ExecutorConfig::default(),
//!     Arc::new(SystemClock::new()),
//! ));
//! executor.register(outcomes, regions, config).expect("auditable");
//! let server = AuditTcpServer::bind("127.0.0.1:0", executor, Duration::from_millis(10))?;
//! println!("listening on {}", server.local_addr());
//! // … later: graceful stop, every accepted ticket answered.
//! let final_stats = server.shutdown();
//! println!("{final_stats}");
//! # Ok(())
//! # }
//! ```

mod clock;
mod executor;
mod server;

pub use clock::{Clock, ManualClock, SystemClock};
pub use executor::{ConnDriver, ExecutorConfig, NetExecutor, ResponseSink};
pub use server::{AuditTcpServer, MAX_LINE_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};
    use sfscan::{AuditConfig, AuditRequest, RegionSet, SpatialOutcomes};
    use sfserve::{
        DrainPolicy, ErrorCode, RequestEnvelope, ResponseEnvelope, SubmitError, Ticket, WireStatus,
    };
    use std::sync::Arc;

    fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(if x < 5.0 { 0.8 } else { 0.3 }));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn grid() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    fn base() -> AuditConfig {
        AuditConfig::new(0.05).with_worlds(99).with_seed(7)
    }

    /// A caller-driven executor (no worker threads) over one session.
    fn stepped(policy: DrainPolicy, capacity: Option<usize>) -> (NetExecutor, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let executor = NetExecutor::new(
            ExecutorConfig {
                workers: 0,
                queue_capacity: capacity,
                policy,
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let o = outcomes(400, 3);
        executor.register(&o, &grid(), base()).unwrap();
        (executor, clock)
    }

    fn request(seed: u64) -> AuditRequest {
        AuditRequest::new(0.05).with_worlds(99).with_seed(seed)
    }

    fn request_line(handle: u64) -> String {
        line_for(handle, request(7))
    }

    fn line_for(handle: u64, request: AuditRequest) -> String {
        RequestEnvelope::new(sfserve::DatasetHandle(handle), request).to_json()
    }

    #[test]
    fn accepted_lines_are_answered_in_order_with_local_tickets() {
        let (executor, _) = stepped(DrainPolicy::Manual, None);
        let mut conn = ConnDriver::new();
        assert!(conn.handle_line(&executor, &request_line(0)));
        // Drain now so the repeat below lands in a *later* batch and
        // exercises the cross-batch world cache.
        executor.flush();
        assert!(!conn.handle_line(&executor, "   "), "blank lines skip");
        assert!(conn.handle_line(&executor, "not json"));
        assert!(conn.handle_line(&executor, &request_line(0)));
        assert_eq!(conn.finish(), 3);
        executor.flush();

        let sink = conn.sink();
        let lines: Vec<String> = (0..3).map(|seq| sink.pop_next(seq).unwrap()).collect();
        assert_eq!(sink.pop_next(3), None, "sealed at 3");

        let first = ResponseEnvelope::from_json(&lines[0]).unwrap();
        assert_eq!(first.status, WireStatus::Ready);
        assert_eq!(first.ticket, Some(Ticket(0)));
        let bad = ResponseEnvelope::from_json(&lines[1]).unwrap();
        assert_eq!(bad.status, WireStatus::Rejected);
        assert_eq!(bad.code, Some(ErrorCode::Malformed));
        assert_eq!(bad.ticket, None, "rejections burn no ticket");
        let second = ResponseEnvelope::from_json(&lines[2]).unwrap();
        assert_eq!(second.ticket, Some(Ticket(1)), "local numbering resumes");
        // Identical request, identical report — the repeat was served
        // from the session's world cache, invisibly.
        assert_eq!(first.report, second.report);
        assert_eq!(executor.stats().cache_hits, 1);
    }

    #[test]
    fn bounded_queue_rejects_busy_and_recovers() {
        let (executor, _) = stepped(DrainPolicy::Manual, Some(2));
        let mut conn = ConnDriver::new();
        conn.handle_line(&executor, &request_line(0));
        conn.handle_line(&executor, &request_line(0));
        conn.handle_line(&executor, &request_line(0)); // over the cap
        conn.finish();
        executor.flush();

        let sink = conn.sink();
        let lines: Vec<String> = (0..3).map(|s| sink.pop_next(s).unwrap()).collect();
        let busy = ResponseEnvelope::from_json(&lines[2]).unwrap();
        assert_eq!(busy.status, WireStatus::Busy);
        assert_eq!(busy.code, Some(ErrorCode::Busy));
        assert_eq!(busy.ticket, None);
        assert!(lines[2].contains("\"status\":\"busy\""), "{}", lines[2]);

        // After the drain the session is empty again; a retry lands.
        let mut retry = ConnDriver::new();
        retry.handle_line(&executor, &request_line(0));
        retry.finish();
        executor.flush();
        let line = retry.sink().pop_next(0).unwrap();
        let env = ResponseEnvelope::from_json(&line).unwrap();
        assert_eq!(env.status, WireStatus::Ready);
        assert_eq!(env.ticket, Some(Ticket(0)), "per-connection numbering");
    }

    #[test]
    fn unknown_handle_is_a_typed_rejection() {
        let (executor, _) = stepped(DrainPolicy::Manual, None);
        let sink = ResponseSink::new();
        let err = executor
            .submit_json(&request_line(7), &sink, 0, Ticket(0))
            .unwrap_err();
        assert_eq!(err, SubmitError::UnknownHandle(sfserve::DatasetHandle(7)));
        let env = ResponseEnvelope::rejected(&err);
        assert_eq!(env.code, Some(ErrorCode::UnknownHandle));
    }

    #[test]
    fn deadline_policy_fires_on_tick_not_before() {
        let (executor, clock) = stepped(DrainPolicy::Deadline(100), None);
        let mut conn = ConnDriver::new();
        clock.set(10);
        conn.handle_line(&executor, &request_line(0));
        assert_eq!(executor.pending_total(), 1);

        // 99 units later: not yet expired — tick promotes nothing.
        clock.set(109);
        executor.tick_now();
        assert!(!executor.run_pending_batch(), "one before the deadline");
        assert_eq!(executor.pending_total(), 1);

        // Exactly at the boundary (oldest + deadline): it runs.
        clock.set(110);
        executor.tick_now();
        assert!(executor.run_pending_batch(), "at the deadline");
        assert_eq!(executor.pending_total(), 0);
        conn.finish();
        let line = conn.sink().pop_next(0).unwrap();
        assert!(line.contains("\"status\":\"ready\""), "{line}");

        // The latency sample is measured on the injected clock:
        // submitted at 10, drained at 110.
        let stats = executor.stats();
        assert_eq!(stats.drain_samples, 1);
        assert_eq!(stats.drain_p50, 100);
        assert_eq!(stats.drain_p99, 100);
    }

    #[test]
    fn workers_claim_sessions_round_robin() {
        // MaxPending(1) promotes every submission to ready immediately;
        // with workers=0 nothing runs until we step, so the ready
        // queues accumulate and each step exposes the claim order.
        let executor = NetExecutor::new(
            ExecutorConfig {
                workers: 0,
                queue_capacity: None,
                policy: DrainPolicy::MaxPending(1),
            },
            Arc::new(ManualClock::new()) as Arc<dyn Clock>,
        );
        let o = outcomes(400, 3);
        for _ in 0..3 {
            executor.register(&o, &grid(), base()).unwrap();
        }
        let mut conn = ConnDriver::new();
        // Hot session 0 queues three requests; sessions 1 and 2 one
        // each. Distinct seeds keep every request distinct.
        conn.handle_line(&executor, &line_for(0, request(1)));
        conn.handle_line(&executor, &line_for(0, request(2)));
        conn.handle_line(&executor, &line_for(0, request(3)));
        conn.handle_line(&executor, &line_for(1, request(4)));
        conn.handle_line(&executor, &line_for(2, request(5)));
        conn.finish();

        // Each step claims ONE session's whole ready queue, and the
        // cursor moves past it — so the hot session's three jobs go
        // out as one batch, then sessions 1 and 2 each get a turn
        // before anyone revisits session 0.
        assert!(executor.run_pending_batch()); // session 0 (3 jobs)
        assert_eq!(executor.stats().requests_served, 3);
        assert!(executor.run_pending_batch()); // session 1
        assert_eq!(executor.stats().requests_served, 4);
        assert!(executor.run_pending_batch()); // session 2
        assert_eq!(executor.stats().requests_served, 5);
        assert!(!executor.run_pending_batch());

        // New work on 2 and 0 together: the cursor sits past session
        // 2, so session 0 is claimed first, then 2 — two batches.
        conn.handle_line(&executor, &line_for(2, request(6)));
        conn.handle_line(&executor, &line_for(0, request(7)));
        let before = executor.stats().batches;
        assert!(executor.run_pending_batch());
        assert!(executor.run_pending_batch());
        assert_eq!(executor.stats().batches, before + 2);
        assert!(!executor.run_pending_batch());
        executor.flush();
    }

    #[test]
    fn flush_with_live_workers_waits_for_idle() {
        let clock = Arc::new(SystemClock::new());
        let executor = NetExecutor::new(
            ExecutorConfig {
                workers: 2,
                queue_capacity: None,
                policy: DrainPolicy::Manual,
            },
            clock as Arc<dyn Clock>,
        );
        let o = outcomes(400, 3);
        executor.register(&o, &grid(), base()).unwrap();
        let mut conn = ConnDriver::new();
        for _ in 0..4 {
            conn.handle_line(&executor, &request_line(0));
        }
        conn.finish();
        executor.flush();
        assert_eq!(executor.pending_total(), 0);
        assert_eq!(executor.stats().requests_served, 4);
        let sink = conn.sink();
        for seq in 0..4 {
            let env = ResponseEnvelope::from_json(&sink.pop_next(seq).unwrap()).unwrap();
            assert_eq!(env.status, WireStatus::Ready);
            assert_eq!(env.ticket, Some(Ticket(seq)));
        }
        let stats = executor.shutdown();
        assert_eq!(stats.requests_served, 4);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.drain_samples, 4);
    }

    #[test]
    fn request_envelope_wire_shape_matches_inprocess_service() {
        // The executor and the in-process service parse the same line
        // the same way — anchor the fixture shape used everywhere.
        let line = request_line(0);
        let env = RequestEnvelope::from_json(&line).unwrap();
        assert_eq!(env.handle, sfserve::DatasetHandle(0));
        assert!(!env.geojson);
    }
}
