//! The TCP front end: accept loop, per-connection reader/writer
//! threads, and the timer thread that drives deadline drains.
//!
//! Framing is the existing JSONL wire — newline-delimited
//! [`RequestEnvelope`](sfserve::RequestEnvelope) lines in,
//! [`ResponseEnvelope`](sfserve::ResponseEnvelope) lines out, one
//! response per non-blank request line, in request order. A client
//! that half-closes its write side (`nc -N`, or
//! `experiments serve --connect` at stdin EOF) triggers the same
//! global drain the stdin path runs at EOF, then receives every
//! response it is owed before the server closes the connection.
//!
//! Threading model (std::net only — no async runtime, no new deps):
//!
//! ```text
//! accept thread ──► per-connection reader ──► NetExecutor queues
//!                   per-connection writer ◄── worker pool (sinks)
//! timer thread  ──► executor.tick_now() every tick_interval
//! ```
//!
//! Shutdown ([`AuditTcpServer::shutdown`]) is graceful by
//! construction: stop accepting (the flag plus a self-connect to wake
//! the blocking `accept`), let every reader reach EOF or notice the
//! flag, drain all accepted jobs via the executor's own shutdown
//! (which promotes and executes everything), join the connection
//! threads — every writer has by then delivered every owed line — and
//! return the final [`ServerStats`].

use crate::executor::{ConnDriver, NetExecutor};
use sfserve::ServerStats;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the reader polls the shutdown flag while its socket is
/// idle. Purely a responsiveness knob: a partial line survives the
/// timeout untouched, so slow writers are never corrupted.
const READ_POLL: Duration = Duration::from_millis(50);

/// Longest request line a connection may send (including the
/// newline). A line that grows past this — terminated or not — is
/// answered with a typed `Malformed` rejection envelope and the
/// connection is closed, instead of the reader's buffer growing
/// without bound. Matches the shard workers' bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A live TCP audit server.
pub struct AuditTcpServer {
    executor: Arc<NetExecutor>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    timer_handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl AuditTcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving the executor's registered sessions. The timer
    /// thread calls [`NetExecutor::tick_now`] every `tick_interval` —
    /// reading the executor's injected [`Clock`](crate::Clock) — which
    /// is what makes
    /// [`DrainPolicy::Deadline`](sfserve::DrainPolicy::Deadline) fire
    /// on wall time.
    pub fn bind(
        addr: &str,
        executor: Arc<NetExecutor>,
        tick_interval: Duration,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let executor = Arc::clone(&executor);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let executor = Arc::clone(&executor);
                    let shutdown = Arc::clone(&shutdown);
                    let handle =
                        std::thread::spawn(move || serve_connection(stream, &executor, &shutdown));
                    conns.lock().unwrap().push(handle);
                }
            })
        };

        let timer_handle = {
            let executor = Arc::clone(&executor);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_interval);
                    executor.tick_now();
                }
            })
        };

        Ok(AuditTcpServer {
            executor,
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            timer_handle: Some(timer_handle),
            conns,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The executor behind the listener.
    pub fn executor(&self) -> &Arc<NetExecutor> {
        &self.executor
    }

    /// Graceful stop: no new connections, every accepted submission
    /// drained and answered, all threads joined. Returns the final
    /// cumulative stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.executor.stats()
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection; the
        // loop re-checks the flag before handling it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.timer_handle.take() {
            let _ = handle.join();
        }
        // Readers notice the flag within READ_POLL, seal their sinks,
        // and trigger the drain; joining the connection threads means
        // every owed response line has been written.
        let conns: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for handle in conns {
            let _ = handle.join();
        }
        // Belt and braces: nothing above can have left a job queued,
        // but the executor's own shutdown re-drains and joins workers.
        self.executor.shutdown();
    }
}

impl Drop for AuditTcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection, two threads: this (reader) thread feeds request
/// lines to the executor; the spawned writer thread emits response
/// lines in input order as they complete.
fn serve_connection(stream: TcpStream, executor: &Arc<NetExecutor>, shutdown: &Arc<AtomicBool>) {
    let mut driver = ConnDriver::new();
    let sink = driver.sink();

    let writer_handle = {
        let stream = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        };
        std::thread::spawn(move || {
            let mut out = std::io::BufWriter::new(stream);
            let mut seq = 0u64;
            while let Some(line) = sink.pop_next(seq) {
                seq += 1;
                if writeln!(out, "{line}").and_then(|_| out.flush()).is_err() {
                    // Peer gone: keep draining the sink so completed
                    // jobs never block on a dead connection.
                    continue;
                }
            }
        })
    };

    // Poll reads so a server shutdown is noticed on an idle socket.
    // Crucially, a timeout does NOT clear `line`: the bounded reader
    // appends whatever bytes arrived before the timeout, and the next
    // iteration keeps accumulating until the newline lands — or the
    // [`MAX_LINE_BYTES`] cap trips and the connection is rejected.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => break, // EOF: client half-closed its write side.
            Ok(_) => {
                if line.ends_with('\n') {
                    driver.handle_line(executor, &line);
                    line.clear();
                }
                // No newline yet: a partial final line; keep reading.
                // A true EOF next iteration returns Ok(0) and the
                // partial line is handled below.
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Oversized line: one typed rejection envelope, then
                // hang up — resynchronising mid-line would silently
                // split one request into two.
                driver.reject_oversized(MAX_LINE_BYTES);
                line.clear();
                break;
            }
            Err(_) => break,
        }
    }
    if !line.is_empty() {
        // Final line without a trailing newline still gets an answer.
        driver.handle_line(executor, &line);
    }

    // EOF drain, exactly like the stdin path: everything queued runs,
    // then the writer finishes delivering and the connection closes.
    driver.finish();
    executor.flush();
    let _ = writer_handle.join();
}

/// Appends to `line` until a newline, EOF, poll timeout, or the
/// [`MAX_LINE_BYTES`] cap. Mirrors `BufRead::read_line`'s contract
/// (returns bytes appended this call, `0` at EOF, partial data
/// survives a timeout) but checks the cap per buffer fill, so a
/// client streaming one endless line errors with `InvalidData` the
/// moment the cap is crossed instead of growing the buffer without
/// bound inside a single `read_line` call.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    let mut appended = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            // Mid-line timeout: report what arrived; the caller keeps
            // `line` and the next call continues accumulating.
            Err(e) if appended > 0 => {
                let timed_out =
                    e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut;
                return if timed_out { Ok(appended) } else { Err(e) };
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(appended); // EOF (possibly mid-line).
        }
        let (used, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        if line.len() + used > MAX_LINE_BYTES {
            reader.consume(used);
            return Err(std::io::Error::new(ErrorKind::InvalidData, "line too long"));
        }
        line.push_str(&String::from_utf8_lossy(&available[..used]));
        reader.consume(used);
        appended += used;
        if done {
            return Ok(appended);
        }
    }
}
