//! Blocked-bitset world counting: popcnt over the membership CSR.
//!
//! The Monte Carlo hot loop recounts `p(R) = Σ labels[id]` per region
//! per world. [`Membership`] replays each region's sorted id list with
//! one bitset read per id; this module compiles those lists into
//! word-aligned masks over the [`BitLabels`] block array so a world
//! recount becomes a branch-free sweep of
//! `(labels_block & mask).count_ones()` — up to 64 ids per popcnt
//! instruction instead of one id per gather.
//!
//! # Representation
//!
//! Per region, the sorted member positions are grouped by 64-bit block
//! and split into two run kinds:
//!
//! * **full ranges** `(start_block, len)` — maximal runs of blocks the
//!   region covers entirely; counted as plain popcounts, no mask load.
//! * **partial runs** `(block_index, mask)` — blocks the region covers
//!   partially; counted as `(block & mask).count_ones()`.
//!
//! # Id layout
//!
//! Mask density — member ids per touched word — decides whether the
//! popcnt sweep beats the scalar gather. Dataset-order ids scatter a
//! compact region's members across the whole bitset; sorting ids by
//! Morton (Z-order) code of their location ([`morton_layout`]) makes
//! spatially compact regions own dense runs of bit positions instead.
//! A layout-compiled `BlockedMembership` therefore counts against
//! labels stored in *layout space*: bit `to_pos[id]` holds original
//! id's label. Counts are layout-invariant (a permutation reorders the
//! summands of `p(R)`), which is what keeps blocked counting
//! bit-identical to the scalar paths.
//!
//! # Validation
//!
//! [`Membership::members`] is documented sorted/unique, but compilation
//! does not trust its input silently: unsorted, duplicate, or
//! out-of-range ids are rejected with a [`BlockedBuildError`] instead
//! of silently producing wrong masks.

use crate::{kernel::CountingKernel, labels::BitLabels, membership::Membership};
use sfgeo::{BoundingBox, Point};

/// Worlds per fused counting sweep: the widest batch
/// [`BlockedMembership::count_many_into`] processes against one CSR
/// pass. Eight keeps the per-world accumulators in registers and the
/// batch's label arrays resident in L1 while still amortizing every
/// run/mask load 8×; wider batches go through multiple sweeps.
pub const MAX_FUSED_WORLDS: usize = 8;

/// Error from compiling member-id lists into blocked masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedBuildError {
    /// A region's id list is not in strictly increasing order.
    UnsortedIds {
        /// Region whose list is out of order.
        region: usize,
        /// Index within the list where order breaks.
        position: usize,
    },
    /// A region's id list contains the same id twice.
    DuplicateId {
        /// Region whose list repeats an id.
        region: usize,
        /// The repeated id.
        id: u32,
    },
    /// A member id is `>= num_points`.
    IdOutOfRange {
        /// Region holding the offending id.
        region: usize,
        /// The out-of-range id.
        id: u32,
        /// Number of points the lists may refer to.
        num_points: usize,
    },
    /// The id layout is not a permutation of `0..num_points`.
    InvalidLayout {
        /// What is wrong with the layout.
        reason: String,
    },
}

impl std::fmt::Display for BlockedBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockedBuildError::UnsortedIds { region, position } => write!(
                f,
                "region {region}: member ids not strictly increasing at position {position}"
            ),
            BlockedBuildError::DuplicateId { region, id } => {
                write!(f, "region {region}: duplicate member id {id}")
            }
            BlockedBuildError::IdOutOfRange {
                region,
                id,
                num_points,
            } => write!(
                f,
                "region {region}: member id {id} out of range for {num_points} points"
            ),
            BlockedBuildError::InvalidLayout { reason } => {
                write!(f, "invalid id layout: {reason}")
            }
        }
    }
}

impl std::error::Error for BlockedBuildError {}

/// Region membership compiled to word-aligned popcnt runs over the
/// [`BitLabels`] block array (see the module docs).
#[derive(Debug, Clone)]
pub struct BlockedMembership {
    /// CSR into `full_starts`/`full_lens`: region `r`'s full-word
    /// ranges are `full_offsets[r]..full_offsets[r+1]`.
    full_offsets: Vec<u32>,
    full_starts: Vec<u32>,
    full_lens: Vec<u32>,
    /// CSR into `run_blocks`/`run_masks`: region `r`'s partial runs
    /// are `run_offsets[r]..run_offsets[r+1]`.
    run_offsets: Vec<u32>,
    run_blocks: Vec<u32>,
    run_masks: Vec<u64>,
    /// World-invariant `n(R)` (total mask popcount per region).
    region_n: Vec<u64>,
    num_points: usize,
    /// Original id → bit position in layout space (`None` = identity).
    to_pos: Option<Vec<u32>>,
}

impl BlockedMembership {
    /// Compiles a [`Membership`] in identity layout: bit positions are
    /// the original ids, so the masks count the same label bitsets the
    /// scalar path reads.
    ///
    /// # Errors
    /// [`BlockedBuildError`] if any member list is unsorted, contains
    /// duplicates, or references an id `>= num_points` — wrong masks
    /// are never produced silently.
    pub fn compile(membership: &Membership) -> Result<Self, BlockedBuildError> {
        Self::from_lists(
            (0..membership.num_regions()).map(|r| membership.members(r)),
            membership.num_points(),
        )
    }

    /// Compiles a [`Membership`] in a permuted id layout: member id
    /// `id` occupies bit `to_pos[id]`, so spatially coherent layouts
    /// (e.g. [`morton_layout`]) produce dense masks. Label bitsets
    /// counted against this compilation must be built in the same
    /// layout (see [`BlockedMembership::position_of`]).
    ///
    /// # Errors
    /// [`BlockedBuildError`] for invalid member lists (as in
    /// [`BlockedMembership::compile`]) or a `to_pos` that is not a
    /// permutation of `0..num_points`.
    pub fn compile_with_layout(
        membership: &Membership,
        to_pos: Vec<u32>,
    ) -> Result<Self, BlockedBuildError> {
        validate_layout(&to_pos, membership.num_points())?;
        let mut compiled = Self::compile_core(
            (0..membership.num_regions()).map(|r| membership.members(r)),
            membership.num_points(),
            Some(&to_pos),
        )?;
        compiled.to_pos = Some(to_pos);
        Ok(compiled)
    }

    /// Compiles raw per-region id lists in identity layout (the
    /// low-level entry `compile` wraps; exposed for direct/blocked
    /// equivalence tests and custom pipelines).
    ///
    /// # Errors
    /// See [`BlockedMembership::compile`].
    pub fn from_lists<'a, I>(lists: I, num_points: usize) -> Result<Self, BlockedBuildError>
    where
        I: Iterator<Item = &'a [u32]>,
    {
        Self::compile_core(lists, num_points, None)
    }

    /// Shared compilation core: validates each list, maps it through
    /// the layout (when given) into sorted bit positions, then folds
    /// the positions into full ranges and partial runs.
    fn compile_core<'a, I>(
        lists: I,
        num_points: usize,
        to_pos: Option<&[u32]>,
    ) -> Result<Self, BlockedBuildError>
    where
        I: Iterator<Item = &'a [u32]>,
    {
        let mut b = BlockedMembership {
            full_offsets: vec![0],
            full_starts: Vec::new(),
            full_lens: Vec::new(),
            run_offsets: vec![0],
            run_blocks: Vec::new(),
            run_masks: Vec::new(),
            region_n: Vec::new(),
            num_points,
            to_pos: None,
        };
        let mut mapped: Vec<u32> = Vec::new();
        for (region, list) in lists.enumerate() {
            validate_list(region, list, num_points)?;
            match to_pos {
                Some(to_pos) => {
                    mapped.clear();
                    mapped.extend(list.iter().map(|&id| to_pos[id as usize]));
                    // A permutation keeps the list duplicate-free; only
                    // the order needs re-establishing.
                    mapped.sort_unstable();
                    b.push_region(&mapped);
                }
                None => b.push_region(list),
            }
        }
        Ok(b)
    }

    /// Appends one region's sorted, validated bit positions as runs.
    fn push_region(&mut self, positions: &[u32]) {
        // Full ranges may merge only within this region's own runs.
        let full_floor = self.full_starts.len();
        let mut cur_block: Option<u32> = None;
        let mut cur_mask = 0u64;
        for &pos in positions {
            let block = pos >> 6;
            if cur_block != Some(block) {
                if let Some(b) = cur_block {
                    self.flush_run(full_floor, b, cur_mask);
                }
                cur_block = Some(block);
                cur_mask = 0;
            }
            cur_mask |= 1u64 << (pos & 63);
        }
        if let Some(b) = cur_block {
            self.flush_run(full_floor, b, cur_mask);
        }
        self.full_offsets.push(self.full_starts.len() as u32);
        self.run_offsets.push(self.run_blocks.len() as u32);
        self.region_n.push(positions.len() as u64);
    }

    /// Files one completed `(block, mask)` run: full words extend or
    /// open a dense `(start, len)` range (the per-block fast path —
    /// counted with no mask load); partial words become masked runs.
    fn flush_run(&mut self, full_floor: usize, block: u32, mask: u64) {
        if mask == u64::MAX {
            if self.full_starts.len() > full_floor {
                let last = self.full_starts.len() - 1;
                if self.full_starts[last] + self.full_lens[last] == block {
                    self.full_lens[last] += 1;
                    return;
                }
            }
            self.full_starts.push(block);
            self.full_lens.push(1);
        } else {
            self.run_blocks.push(block);
            self.run_masks.push(mask);
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.region_n.len()
    }

    /// Number of points the masks refer to.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// World-invariant observation count `n(R)` of region `r`.
    pub fn n_of(&self, r: usize) -> u64 {
        self.region_n[r]
    }

    /// The bit position of original id `id` in this compilation's
    /// layout. Label bitsets passed to [`BlockedMembership::count`]
    /// must place id's label at this position.
    #[inline]
    pub fn position_of(&self, id: u32) -> u32 {
        match &self.to_pos {
            Some(to_pos) => to_pos[id as usize],
            None => id,
        }
    }

    /// Returns `true` when this compilation permutes ids (labels must
    /// be generated in layout space).
    pub fn is_permuted(&self) -> bool {
        self.to_pos.is_some()
    }

    /// Builds a layout-space label bitset from original-id labels
    /// (`labels[id]` lands at bit [`BlockedMembership::position_of`]
    /// `(id)`).
    pub fn layout_labels(&self, labels: &[bool]) -> BitLabels {
        assert_eq!(
            labels.len(),
            self.num_points,
            "label count must match the compiled point count"
        );
        let mut bits = BitLabels::zeros(self.num_points);
        for (id, &l) in labels.iter().enumerate() {
            if l {
                bits.set(self.position_of(id as u32) as usize, true);
            }
        }
        bits
    }

    /// Counts `p(R)` of region `r` against a layout-space label
    /// bitset: popcnt over full ranges, masked popcnt over partial
    /// runs. Branch-free over the runs — this is the per-world hot
    /// loop replacing the scalar id gather.
    #[inline]
    pub fn count(&self, r: usize, labels: &BitLabels) -> u64 {
        debug_assert_eq!(
            labels.len(),
            self.num_points,
            "label set length must match the compiled point count"
        );
        let blocks = labels.blocks();
        let mut acc = 0u64;
        let (fs, fe) = (
            self.full_offsets[r] as usize,
            self.full_offsets[r + 1] as usize,
        );
        for i in fs..fe {
            let start = self.full_starts[i] as usize;
            let len = self.full_lens[i] as usize;
            for block in &blocks[start..start + len] {
                acc += block.count_ones() as u64;
            }
        }
        let (s, e) = (
            self.run_offsets[r] as usize,
            self.run_offsets[r + 1] as usize,
        );
        for i in s..e {
            acc += (blocks[self.run_blocks[i] as usize] & self.run_masks[i]).count_ones() as u64;
        }
        acc
    }

    /// [`BlockedMembership::count`] with the dense full ranges counted
    /// through an explicit [`CountingKernel`]. With
    /// [`CountingKernel::Scalar`] this *is* the pinned reference loop;
    /// every other kernel returns the same exact integer (kernel
    /// equivalence is equality — pinned by the kernel proptests).
    /// Partial runs are a one-word gather and stay scalar under every
    /// kernel.
    #[inline]
    pub fn count_with(&self, r: usize, labels: &BitLabels, kernel: CountingKernel) -> u64 {
        if kernel == CountingKernel::Scalar {
            return self.count(r, labels);
        }
        debug_assert_eq!(
            labels.len(),
            self.num_points,
            "label set length must match the compiled point count"
        );
        let blocks = labels.blocks();
        let mut acc = 0u64;
        let (fs, fe) = (
            self.full_offsets[r] as usize,
            self.full_offsets[r + 1] as usize,
        );
        for i in fs..fe {
            let start = self.full_starts[i] as usize;
            let len = self.full_lens[i] as usize;
            acc += kernel.popcount(&blocks[start..start + len]);
        }
        let (s, e) = (
            self.run_offsets[r] as usize,
            self.run_offsets[r + 1] as usize,
        );
        for i in s..e {
            acc += (blocks[self.run_blocks[i] as usize] & self.run_masks[i]).count_ones() as u64;
        }
        acc
    }

    /// Counts `p(R)` for *all* regions against a layout-space label
    /// set, reusing the output buffer.
    pub fn count_all_into(&self, labels: &BitLabels, out: &mut Vec<u64>) {
        self.count_all_into_with(labels, CountingKernel::Scalar, out);
    }

    /// [`BlockedMembership::count_all_into`] through an explicit
    /// [`CountingKernel`].
    pub fn count_all_into_with(
        &self,
        labels: &BitLabels,
        kernel: CountingKernel,
        out: &mut Vec<u64>,
    ) {
        assert_eq!(
            labels.len(),
            self.num_points,
            "label set length must match the compiled point count"
        );
        out.clear();
        out.reserve(self.num_regions());
        for r in 0..self.num_regions() {
            out.push(self.count_with(r, labels, kernel));
        }
    }

    /// Fused multi-world count of region `r`: `out[w] = p(R)` under
    /// `worlds[w]`. One pass over the region's CSR serves every world —
    /// each full range is kernel-popcounted per world while its bounds
    /// are hot, and each partial run's `(block, mask)` pair is loaded
    /// **once** and ANDed against every world's block — so the CSR
    /// stream (the dominant memory traffic of a recount) is amortized
    /// across the batch instead of re-read per world. Batches wider
    /// than [`MAX_FUSED_WORLDS`] run as multiple sweeps.
    ///
    /// Exactly equal to `worlds.map(|l| count(r, l))` — per-world sums
    /// are independent integer folds, so fusion cannot change them.
    ///
    /// # Panics
    /// Panics if `out.len() != worlds.len()` or any world's length
    /// disagrees with the compiled point count.
    pub fn count_many_into(
        &self,
        r: usize,
        worlds: &[&BitLabels],
        kernel: CountingKernel,
        out: &mut [u64],
    ) {
        assert_eq!(out.len(), worlds.len(), "one output slot per fused world");
        for world in worlds {
            assert_eq!(
                world.len(),
                self.num_points,
                "label set length must match the compiled point count"
            );
        }
        for (worlds, out) in worlds
            .chunks(MAX_FUSED_WORLDS)
            .zip(out.chunks_mut(MAX_FUSED_WORLDS))
        {
            let mut acc = [0u64; MAX_FUSED_WORLDS];
            self.count_many_core(r, worlds, kernel, &mut acc[..worlds.len()]);
            out.copy_from_slice(&acc[..worlds.len()]);
        }
    }

    /// Fused multi-world count of **all** regions:
    /// `out[r * worlds.len() + w] = p(R_r)` under `worlds[w]` (row per
    /// region, column per world). Each sweep of up to
    /// [`MAX_FUSED_WORLDS`] worlds walks the whole CSR once — this is
    /// the batched executor's inner loop, replacing `worlds.len()`
    /// separate [`BlockedMembership::count_all_into`] passes.
    pub fn count_all_many_into(
        &self,
        worlds: &[&BitLabels],
        kernel: CountingKernel,
        out: &mut Vec<u64>,
    ) {
        for world in worlds {
            assert_eq!(
                world.len(),
                self.num_points,
                "label set length must match the compiled point count"
            );
        }
        let width = worlds.len();
        out.clear();
        out.resize(self.num_regions() * width, 0);
        let mut offset = 0;
        for worlds in worlds.chunks(MAX_FUSED_WORLDS) {
            let mut acc = [0u64; MAX_FUSED_WORLDS];
            for r in 0..self.num_regions() {
                let acc = &mut acc[..worlds.len()];
                acc.fill(0);
                self.count_many_core(r, worlds, kernel, acc);
                out[r * width + offset..r * width + offset + worlds.len()].copy_from_slice(acc);
            }
            offset += worlds.len();
        }
    }

    /// One fused sweep of region `r` over at most [`MAX_FUSED_WORLDS`]
    /// pre-validated worlds, accumulating into `acc` (not cleared —
    /// callers zero it).
    #[inline]
    fn count_many_core(
        &self,
        r: usize,
        worlds: &[&BitLabels],
        kernel: CountingKernel,
        acc: &mut [u64],
    ) {
        debug_assert!(worlds.len() <= MAX_FUSED_WORLDS);
        debug_assert_eq!(worlds.len(), acc.len());
        let (fs, fe) = (
            self.full_offsets[r] as usize,
            self.full_offsets[r + 1] as usize,
        );
        for i in fs..fe {
            let start = self.full_starts[i] as usize;
            let len = self.full_lens[i] as usize;
            for (a, world) in acc.iter_mut().zip(worlds) {
                *a += kernel.popcount(&world.blocks()[start..start + len]);
            }
        }
        let (s, e) = (
            self.run_offsets[r] as usize,
            self.run_offsets[r + 1] as usize,
        );
        for i in s..e {
            let block = self.run_blocks[i] as usize;
            let mask = self.run_masks[i];
            for (a, world) in acc.iter_mut().zip(worlds) {
                *a += (world.blocks()[block] & mask).count_ones() as u64;
            }
        }
    }

    /// Number of 64-bit label words the compiled positions span
    /// (`⌈num_points/64⌉`) — the axis [`BlockedMembership::clip_to_words`]
    /// shards partition.
    pub fn num_label_words(&self) -> usize {
        self.num_points.div_ceil(64)
    }

    /// A counting view of this compilation restricted to label words
    /// `word_lo..word_hi`: full ranges are clipped at the boundaries
    /// and partial runs outside the window are dropped. Block indices
    /// stay **absolute**, so the view counts against the *full*
    /// layout-space label array — and because every word belongs to
    /// exactly one window of a partition, summing the views' counts
    /// over a partition of `0..num_label_words()` reproduces the
    /// unsharded count exactly (integer addition, no rounding).
    ///
    /// The view's `n_of`/`total_ids` are window-local (they sum to the
    /// parent's across a partition). The view never carries a layout
    /// (`is_permuted()` is `false`): it is a counting structure, not a
    /// label-placement oracle — positions were already mapped by the
    /// parent compilation.
    ///
    /// # Panics
    /// Panics on an inverted window (`word_lo > word_hi`) or one
    /// reaching past [`BlockedMembership::num_label_words`] — an
    /// oversized window would silently produce a valid-looking view
    /// whose extra words can never hold members, masking a sharding
    /// arithmetic bug at the call site.
    pub fn clip_to_words(&self, word_lo: usize, word_hi: usize) -> BlockedMembership {
        assert!(word_lo <= word_hi, "inverted word window");
        assert!(
            word_hi <= self.num_label_words(),
            "word window {word_lo}..{word_hi} exceeds the {} label words",
            self.num_label_words()
        );
        let (lo, hi) = (word_lo as u64, word_hi as u64);
        let mut clipped = BlockedMembership {
            full_offsets: vec![0],
            full_starts: Vec::new(),
            full_lens: Vec::new(),
            run_offsets: vec![0],
            run_blocks: Vec::new(),
            run_masks: Vec::new(),
            region_n: Vec::new(),
            num_points: self.num_points,
            to_pos: None,
        };
        for r in 0..self.num_regions() {
            let mut n = 0u64;
            let (fs, fe) = (
                self.full_offsets[r] as usize,
                self.full_offsets[r + 1] as usize,
            );
            for i in fs..fe {
                let start = (self.full_starts[i] as u64).max(lo);
                let end = (self.full_starts[i] as u64 + self.full_lens[i] as u64).min(hi);
                if start < end {
                    clipped.full_starts.push(start as u32);
                    clipped.full_lens.push((end - start) as u32);
                    n += (end - start) * 64;
                }
            }
            let (s, e) = (
                self.run_offsets[r] as usize,
                self.run_offsets[r + 1] as usize,
            );
            for i in s..e {
                let block = self.run_blocks[i] as u64;
                if (lo..hi).contains(&block) {
                    clipped.run_blocks.push(self.run_blocks[i]);
                    clipped.run_masks.push(self.run_masks[i]);
                    n += self.run_masks[i].count_ones() as u64;
                }
            }
            clipped.full_offsets.push(clipped.full_starts.len() as u32);
            clipped.run_offsets.push(clipped.run_blocks.len() as u32);
            clipped.region_n.push(n);
        }
        clipped
    }

    /// Total member ids across all regions (`Σ n(R)`).
    pub fn total_ids(&self) -> u64 {
        self.region_n.iter().sum()
    }

    /// Words the counting sweep touches per world: full blocks plus
    /// partial runs.
    pub fn touched_words(&self) -> u64 {
        self.full_lens.iter().map(|&l| l as u64).sum::<u64>() + self.run_masks.len() as u64
    }

    /// Measured mask density: member ids per touched word, in
    /// `[1, 64]` (0 for empty memberships). The scalar gather costs
    /// one read per id; the blocked sweep one AND+popcnt per word — so
    /// this ratio is the expected speedup of blocked over scalar
    /// counting, and what the scan layer's `CountingStrategy::Auto`
    /// upgrade rule decides on.
    pub fn ids_per_word(&self) -> f64 {
        let words = self.touched_words();
        if words == 0 {
            0.0
        } else {
            self.total_ids() as f64 / words as f64
        }
    }
}

/// Validates one region's raw id list: strictly increasing (sorted,
/// duplicate-free) and in range.
fn validate_list(region: usize, list: &[u32], num_points: usize) -> Result<(), BlockedBuildError> {
    for (position, pair) in list.windows(2).enumerate() {
        if pair[0] == pair[1] {
            return Err(BlockedBuildError::DuplicateId {
                region,
                id: pair[0],
            });
        }
        if pair[0] > pair[1] {
            return Err(BlockedBuildError::UnsortedIds {
                region,
                position: position + 1,
            });
        }
    }
    if let Some(&last) = list.last() {
        if last as usize >= num_points {
            return Err(BlockedBuildError::IdOutOfRange {
                region,
                id: last,
                num_points,
            });
        }
    }
    Ok(())
}

/// Validates that `to_pos` is a permutation of `0..num_points`.
fn validate_layout(to_pos: &[u32], num_points: usize) -> Result<(), BlockedBuildError> {
    if to_pos.len() != num_points {
        return Err(BlockedBuildError::InvalidLayout {
            reason: format!(
                "layout has {} entries for {num_points} points",
                to_pos.len()
            ),
        });
    }
    let mut seen = vec![false; num_points];
    for (id, &pos) in to_pos.iter().enumerate() {
        let Some(slot) = seen.get_mut(pos as usize) else {
            return Err(BlockedBuildError::InvalidLayout {
                reason: format!("id {id} maps to position {pos} >= {num_points}"),
            });
        };
        if *slot {
            return Err(BlockedBuildError::InvalidLayout {
                reason: format!("position {pos} assigned twice"),
            });
        }
        *slot = true;
    }
    Ok(())
}

/// A spatially coherent id layout: ranks points by Morton (Z-order)
/// code so neighbours in space become neighbours in bit-position
/// space, giving compact regions dense blocked masks. Returns
/// `to_pos[id] = rank` (ties broken by id, so the layout is
/// deterministic).
pub fn morton_layout(points: &[Point]) -> Vec<u32> {
    let Some(bounds) = BoundingBox::of_points(points) else {
        return Vec::new();
    };
    let width = bounds.width().max(f64::MIN_POSITIVE);
    let height = bounds.height().max(f64::MIN_POSITIVE);
    let quantize = |v: f64| -> u32 { ((v.clamp(0.0, 1.0)) * 65535.0) as u32 };
    let code = |p: &Point| -> u32 {
        let qx = quantize((p.x - bounds.min.x) / width);
        let qy = quantize((p.y - bounds.min.y) / height);
        interleave_u16(qx) | (interleave_u16(qy) << 1)
    };
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_unstable_by_key(|&id| (code(&points[id as usize]), id));
    let mut to_pos = vec![0u32; points.len()];
    for (rank, &id) in order.iter().enumerate() {
        to_pos[id as usize] = rank as u32;
    }
    to_pos
}

/// Partitions the word axis `0..num_words` into `shards` contiguous
/// windows, as even as possible: the first `num_words % shards`
/// windows get one extra word. Windows may be empty when
/// `shards > num_words`; the windows always tile the axis exactly, so
/// [`BlockedMembership::clip_to_words`] views over them sum to the
/// unsharded counts.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn shard_word_bounds(num_words: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "need at least one shard");
    let base = num_words / shards;
    let extra = num_words % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// Spreads the low 16 bits of `v` into the even bit positions.
fn interleave_u16(v: u32) -> u32 {
    let mut v = v & 0xFFFF;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    (v | (v << 1)) & 0x5555_5555
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceIndex, PointVisit};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Circle, Rect, Region};

    fn scalar_count(labels: &BitLabels, ids: &[u32]) -> u64 {
        ids.iter().map(|&id| labels.get(id as usize) as u64).sum()
    }

    #[test]
    fn identity_compilation_matches_scalar_counts() {
        let lists: Vec<Vec<u32>> = vec![
            vec![],                         // empty region
            vec![7],                        // single id
            (0..=299).collect(),            // full span: dense fast path
            vec![60, 61, 62, 63, 64, 65],   // word-boundary straddle
            (64..128).collect(),            // exactly one full word
            vec![0, 63, 64, 127, 128, 255], // sparse across words
            (0..300).filter(|i| i % 3 == 0).collect(),
        ];
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let b = BlockedMembership::from_lists(refs.iter().copied(), 300).unwrap();
        assert_eq!(b.num_regions(), lists.len());
        let labels = BitLabels::from_fn(300, |i| i % 7 == 0 || i > 250);
        for (r, ids) in lists.iter().enumerate() {
            assert_eq!(b.n_of(r), ids.len() as u64, "region {r}");
            assert_eq!(
                b.count(r, &labels),
                scalar_count(&labels, ids),
                "region {r}"
            );
        }
        let mut out = Vec::new();
        b.count_all_into(&labels, &mut out);
        let expected: Vec<u64> = lists.iter().map(|ids| scalar_count(&labels, ids)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn full_ranges_are_merged() {
        let full: Vec<u32> = (0..256).collect(); // 4 full words
        let b = BlockedMembership::from_lists([full.as_slice()].into_iter(), 256).unwrap();
        assert_eq!(b.full_starts, vec![0]);
        assert_eq!(b.full_lens, vec![4]);
        assert!(b.run_masks.is_empty());
        assert_eq!(b.touched_words(), 4);
        assert_eq!(b.ids_per_word(), 64.0);
    }

    #[test]
    fn full_ranges_do_not_merge_across_regions() {
        let a: Vec<u32> = (0..64).collect();
        let c: Vec<u32> = (64..128).collect();
        let b =
            BlockedMembership::from_lists([a.as_slice(), c.as_slice()].into_iter(), 128).unwrap();
        assert_eq!(b.full_starts, vec![0, 1]);
        assert_eq!(b.full_lens, vec![1, 1]);
        let labels = BitLabels::from_fn(128, |i| i < 100);
        assert_eq!(b.count(0, &labels), 64);
        assert_eq!(b.count(1, &labels), 36);
    }

    #[test]
    fn unsorted_ids_rejected() {
        let err =
            BlockedMembership::from_lists([[5u32, 3, 8].as_slice()].into_iter(), 10).unwrap_err();
        assert_eq!(
            err,
            BlockedBuildError::UnsortedIds {
                region: 0,
                position: 1
            }
        );
        assert!(err.to_string().contains("not strictly increasing"));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err =
            BlockedMembership::from_lists([[].as_slice(), [3u32, 3].as_slice()].into_iter(), 10)
                .unwrap_err();
        assert_eq!(err, BlockedBuildError::DuplicateId { region: 1, id: 3 });
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let err =
            BlockedMembership::from_lists([[2u32, 10].as_slice()].into_iter(), 10).unwrap_err();
        assert_eq!(
            err,
            BlockedBuildError::IdOutOfRange {
                region: 0,
                id: 10,
                num_points: 10
            }
        );
    }

    #[test]
    fn bad_layouts_rejected() {
        let m = membership_fixture();
        let n = m.num_points();
        // Wrong length.
        let err = BlockedMembership::compile_with_layout(&m, vec![0; n + 1]).unwrap_err();
        assert!(matches!(err, BlockedBuildError::InvalidLayout { .. }));
        // Repeated position.
        let err = BlockedMembership::compile_with_layout(&m, vec![0; n]).unwrap_err();
        assert!(matches!(err, BlockedBuildError::InvalidLayout { .. }));
        // Out-of-range position.
        let mut layout: Vec<u32> = (0..n as u32).collect();
        layout[0] = n as u32;
        let err = BlockedMembership::compile_with_layout(&m, layout).unwrap_err();
        assert!(matches!(err, BlockedBuildError::InvalidLayout { .. }));
    }

    fn membership_fixture() -> Membership {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 700;
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.5));
        let idx = BruteForceIndex::build(points, labels);
        let regions: Vec<Region> = vec![
            Rect::from_coords(0.0, 0.0, 5.0, 10.0).into(),
            Rect::from_coords(2.0, 2.0, 3.0, 3.0).into(),
            Circle::new(Point::new(5.0, 5.0), 2.5).into(),
            Rect::from_coords(40.0, 40.0, 50.0, 50.0).into(), // empty
        ];
        Membership::build(&idx, n, &regions)
    }

    #[test]
    fn compile_matches_membership_counts_across_worlds() {
        let m = membership_fixture();
        let b = BlockedMembership::compile(&m).unwrap();
        assert!(!b.is_permuted());
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let mut world = BitLabels::zeros(m.num_points());
        for _ in 0..5 {
            let rho = rng.gen_range(0.05..0.95);
            world.refill(|_| rng.gen_bool(rho));
            for r in 0..m.num_regions() {
                assert_eq!(b.count(r, &world), m.count(r, &world).p);
                assert_eq!(b.n_of(r), m.n_of(r));
            }
        }
    }

    #[test]
    fn layout_compilation_matches_scalar_counts() {
        let m = membership_fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        // An arbitrary permutation — correctness must not depend on the
        // layout being spatially meaningful.
        let n = m.num_points();
        let mut layout: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            layout.swap(i, j);
        }
        let b = BlockedMembership::compile_with_layout(&m, layout).unwrap();
        assert!(b.is_permuted());
        let bools: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
        let world = BitLabels::from_bools(&bools);
        let layout_world = b.layout_labels(&bools);
        assert_eq!(world.count_ones(), layout_world.count_ones());
        for r in 0..m.num_regions() {
            assert_eq!(
                b.count(r, &layout_world),
                m.count(r, &world).p,
                "region {r}"
            );
        }
    }

    #[test]
    fn morton_layout_is_a_dense_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        let points: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
            .collect();
        let layout = morton_layout(&points);
        validate_layout(&layout, points.len()).unwrap();
        assert!(morton_layout(&[]).is_empty());
    }

    #[test]
    fn morton_layout_improves_mask_density() {
        // Uniform points, partition-grid regions: dataset-order ids
        // scatter each cell's members (~1 id/word); Morton order packs
        // them into contiguous position runs.
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let n = 20_000;
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.5));
        let idx = BruteForceIndex::build(points.clone(), labels);
        let mut regions: Vec<Region> = Vec::new();
        for gx in 0..16 {
            for gy in 0..16 {
                regions.push(
                    Rect::from_coords(gx as f64, gy as f64, (gx + 1) as f64, (gy + 1) as f64)
                        .into(),
                );
            }
        }
        let m = Membership::build(&idx, n, &regions);
        let flat = BlockedMembership::compile(&m).unwrap();
        let morton = BlockedMembership::compile_with_layout(&m, morton_layout(&points)).unwrap();
        assert_eq!(flat.total_ids(), morton.total_ids());
        assert!(
            morton.ids_per_word() > 8.0 * flat.ids_per_word(),
            "morton {} vs flat {}",
            morton.ids_per_word(),
            flat.ids_per_word()
        );
        // Counts stay identical between the two layouts.
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let bools: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let flat_world = BitLabels::from_bools(&bools);
        let morton_world = morton.layout_labels(&bools);
        for r in 0..m.num_regions() {
            assert_eq!(flat.count(r, &flat_world), morton.count(r, &morton_world));
        }
    }

    #[test]
    fn shard_word_bounds_tile_the_axis() {
        for (words, shards) in [
            (0usize, 1usize),
            (1, 1),
            (5, 2),
            (64, 3),
            (7, 9),
            (100, 100),
        ] {
            let bounds = shard_word_bounds(words, shards);
            assert_eq!(bounds.len(), shards);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds[shards - 1].1, words);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "windows must abut");
            }
            // Even split: window lengths differ by at most one.
            let lens: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "{lens:?}");
        }
    }

    #[test]
    fn clipped_views_sum_to_the_unsharded_counts() {
        let m = membership_fixture();
        let b = BlockedMembership::compile_with_layout(&m, {
            let mut rng = ChaCha8Rng::seed_from_u64(83);
            let n = m.num_points();
            let mut layout: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                layout.swap(i, j);
            }
            layout
        })
        .unwrap();
        let words = b.num_label_words();
        let mut rng = ChaCha8Rng::seed_from_u64(84);
        let world = BitLabels::from_fn(b.num_points(), |_| rng.gen_bool(0.4));
        // Shard counts beyond the word count produce empty windows.
        for shards in [1usize, 2, 3, 5, words, words + 4] {
            let views: Vec<BlockedMembership> = shard_word_bounds(words, shards)
                .into_iter()
                .map(|(lo, hi)| b.clip_to_words(lo, hi))
                .collect();
            for r in 0..b.num_regions() {
                let n_sum: u64 = views.iter().map(|v| v.n_of(r)).sum();
                assert_eq!(n_sum, b.n_of(r), "n(R) must partition, region {r}");
                let p_sum: u64 = views.iter().map(|v| v.count(r, &world)).sum();
                assert_eq!(p_sum, b.count(r, &world), "p(R) must partition, region {r}");
            }
            let ids_sum: u64 = views.iter().map(|v| v.total_ids()).sum();
            assert_eq!(ids_sum, b.total_ids());
        }
        // A full-axis view counts exactly like the parent.
        let full = b.clip_to_words(0, words);
        for r in 0..b.num_regions() {
            assert_eq!(full.count(r, &world), b.count(r, &world));
        }
        // An empty view counts zero everywhere.
        let empty = b.clip_to_words(3, 3);
        for r in 0..b.num_regions() {
            assert_eq!(empty.count(r, &world), 0);
            assert_eq!(empty.n_of(r), 0);
        }
    }

    #[test]
    fn clipping_splits_full_ranges_at_word_boundaries() {
        // One region covering 4 full words; clip mid-range.
        let full: Vec<u32> = (0..256).collect();
        let b = BlockedMembership::from_lists([full.as_slice()].into_iter(), 256).unwrap();
        let left = b.clip_to_words(0, 2);
        let right = b.clip_to_words(2, 4);
        assert_eq!(left.n_of(0), 128);
        assert_eq!(right.n_of(0), 128);
        let labels = BitLabels::from_fn(256, |i| i % 2 == 0);
        assert_eq!(left.count(0, &labels) + right.count(0, &labels), 128);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn clip_to_words_rejects_oversized_windows() {
        // Regression: an oversized window used to silently yield a
        // valid-looking view whose tail words can never hold members.
        let m = membership_fixture();
        let b = BlockedMembership::compile(&m).unwrap();
        let words = b.num_label_words();
        let _ = b.clip_to_words(0, words + 1);
    }

    #[test]
    fn kernel_counts_match_the_pinned_scalar_loop() {
        use crate::kernel::CountingKernel;
        let m = membership_fixture();
        let b = BlockedMembership::compile(&m).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let world = BitLabels::from_fn(b.num_points(), |_| rng.gen_bool(0.37));
        for kernel in CountingKernel::ALL {
            if !kernel.is_supported() {
                continue;
            }
            let mut out = Vec::new();
            b.count_all_into_with(&world, kernel, &mut out);
            for (r, &counted) in out.iter().enumerate() {
                assert_eq!(b.count_with(r, &world, kernel), b.count(r, &world));
                assert_eq!(counted, b.count(r, &world), "kernel {kernel} region {r}");
            }
        }
    }

    #[test]
    fn fused_counting_equals_per_world_counting() {
        use crate::kernel::CountingKernel;
        let m = membership_fixture();
        let b = BlockedMembership::compile(&m).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        // 1..=MAX_FUSED_WORLDS+2 exercises partial, exact, and
        // multi-sweep batches.
        for batch in 1..=MAX_FUSED_WORLDS + 2 {
            let worlds: Vec<BitLabels> = (0..batch)
                .map(|_| {
                    let rho = rng.gen_range(0.05..0.95);
                    BitLabels::from_fn(b.num_points(), |_| rng.gen_bool(rho))
                })
                .collect();
            let views: Vec<&BitLabels> = worlds.iter().collect();
            for kernel in CountingKernel::ALL {
                if !kernel.is_supported() {
                    continue;
                }
                let mut fused = Vec::new();
                b.count_all_many_into(&views, kernel, &mut fused);
                assert_eq!(fused.len(), b.num_regions() * batch);
                let mut region_out = vec![0u64; batch];
                for r in 0..b.num_regions() {
                    b.count_many_into(r, &views, kernel, &mut region_out);
                    for (w, world) in worlds.iter().enumerate() {
                        let expected = b.count(r, world);
                        assert_eq!(
                            fused[r * batch + w],
                            expected,
                            "kernel {kernel} batch {batch} region {r} world {w}"
                        );
                        assert_eq!(region_out[w], expected);
                    }
                }
            }
        }
    }

    #[test]
    fn fused_counting_works_on_clipped_views() {
        use crate::kernel::CountingKernel;
        let m = membership_fixture();
        let b = BlockedMembership::compile(&m).unwrap();
        let words = b.num_label_words();
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let worlds: Vec<BitLabels> = (0..3)
            .map(|_| BitLabels::from_fn(b.num_points(), |_| rng.gen_bool(0.5)))
            .collect();
        let views: Vec<&BitLabels> = worlds.iter().collect();
        for shards in [1usize, 2, 5] {
            let mut summed = vec![0u64; b.num_regions() * worlds.len()];
            for (lo, hi) in shard_word_bounds(words, shards) {
                let clipped = b.clip_to_words(lo, hi);
                let mut partial = Vec::new();
                clipped.count_all_many_into(&views, CountingKernel::Portable, &mut partial);
                for (acc, p) in summed.iter_mut().zip(&partial) {
                    *acc += p;
                }
            }
            for r in 0..b.num_regions() {
                for (w, world) in worlds.iter().enumerate() {
                    assert_eq!(summed[r * worlds.len() + w], b.count(r, world));
                }
            }
        }
    }

    #[test]
    fn membership_output_always_compiles() {
        // The production path: Membership::build output satisfies the
        // sorted/unique/in-range contract by construction.
        let m = membership_fixture();
        assert!(BlockedMembership::compile(&m).is_ok());
    }

    /// An index that lies about enumeration order — the kind of input
    /// compile must reject rather than mask incorrectly.
    struct UnsortedIndex;
    impl PointVisit for UnsortedIndex {
        fn for_each_in(&self, _region: &Region, visit: &mut dyn FnMut(u32)) {
            visit(5);
            visit(2);
        }
    }

    #[test]
    fn raw_lists_from_misbehaving_enumeration_rejected() {
        let ids = UnsortedIndex.ids_in(&Rect::from_coords(0.0, 0.0, 1.0, 1.0).into());
        // ids_in sorts, so simulate the unsorted raw stream directly.
        let mut raw = Vec::new();
        UnsortedIndex.for_each_in(&Rect::from_coords(0.0, 0.0, 1.0, 1.0).into(), &mut |id| {
            raw.push(id)
        });
        assert_ne!(raw, ids);
        let err = BlockedMembership::from_lists([raw.as_slice()].into_iter(), 10).unwrap_err();
        assert!(matches!(err, BlockedBuildError::UnsortedIds { .. }));
    }
}
