//! Compact bitset of binary outcome labels.
//!
//! Labels are stored out-of-band from the spatial structures so the
//! Monte Carlo simulation can redraw them without touching geometry.
//! For LAR-scale data (206k observations) the whole bitset is ~26 KB —
//! it fits in L1/L2 cache, which is what makes membership-list
//! recounting fast.

/// A fixed-length bitset of outcome labels (`true` = positive class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitLabels {
    blocks: Vec<u64>,
    len: usize,
}

impl BitLabels {
    /// Creates an all-negative label set of the given length.
    pub fn zeros(len: usize) -> Self {
        BitLabels {
            blocks: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from a bool slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut l = BitLabels::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                l.set(i, true);
            }
        }
        l
    }

    /// Builds by evaluating `f(i)` for every index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut l = BitLabels::zeros(len);
        for i in 0..len {
            if f(i) {
                l.set(i, true);
            }
        }
        l
    }

    /// Number of labels.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if there are no labels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads label `i`.
    ///
    /// # Panics
    /// Panics (in debug builds via the indexing, in release via the
    /// explicit assert) if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "label index {i} out of bounds (len {})",
            self.len
        );
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes label `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "label index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Total number of positive labels (`P`).
    pub fn count_ones(&self) -> u64 {
        self.blocks.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// Positive labels whose bit falls in blocks `word_lo..word_hi` —
    /// one shard's contribution to `P`. Because every block belongs to
    /// exactly one window of a partition of `0..num_blocks()`, summing
    /// the windows' counts reproduces [`BitLabels::count_ones`] exactly
    /// (integer addition; the zero-tail invariant means the final
    /// block never over-counts).
    ///
    /// # Panics
    /// Panics on an inverted or out-of-range window, mirroring
    /// `BlockedMembership::clip_to_words` so the two shard axes cannot
    /// silently disagree.
    pub fn count_ones_in_words(&self, word_lo: usize, word_hi: usize) -> u64 {
        assert!(word_lo <= word_hi, "inverted word window");
        assert!(
            word_hi <= self.blocks.len(),
            "word window {word_lo}..{word_hi} exceeds the {} label blocks",
            self.blocks.len()
        );
        self.blocks[word_lo..word_hi]
            .iter()
            .map(|b| b.count_ones() as u64)
            .sum()
    }

    /// The raw 64-bit blocks backing the bitset, little-endian within
    /// each block (bit `i % 64` of block `i / 64` is label `i`).
    ///
    /// Invariant: bits at positions `>= len` are always zero — every
    /// mutation path ([`BitLabels::set`], [`BitLabels::refill`],
    /// [`BitLabels::clear`]) preserves this, so popcount-style
    /// consumers ([`crate::BlockedMembership`]) can AND whole blocks
    /// without masking off the tail.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Number of 64-bit blocks backing the bitset (`⌈len/64⌉`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Mutable access to the raw blocks, for bulk parallel fills
    /// (chunked world generation writes disjoint block ranges from
    /// multiple workers).
    ///
    /// The caller takes over the zero-tail invariant of
    /// [`BitLabels::blocks`]: any lane at position `>= len` written
    /// through this slice must be left zero. Bulk fillers get this for
    /// free by masking their final word with the valid-lane tail mask
    /// (as `BulkBernoulli::fill_words` does).
    #[inline]
    pub fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// Writes 64 labels at once: lane `i` of `bits` becomes label
    /// `64·w + i`. Lanes at positions `>= len` are masked off, so the
    /// zero-tail invariant of [`BitLabels::blocks`] holds no matter
    /// what the caller puts in the tail lanes — this is the
    /// word-parallel write path of bulk world generation
    /// (`WorldGen::Word` fills a whole layout-space world with one
    /// store per 64 labels instead of one [`BitLabels::set`] per bit).
    ///
    /// # Panics
    /// Panics if `w` is not a valid block index.
    #[inline]
    pub fn set_word(&mut self, w: usize, bits: u64) {
        assert!(
            w < self.blocks.len(),
            "block index {w} out of bounds ({} blocks)",
            self.blocks.len()
        );
        let remaining = self.len - w * 64;
        let mask = if remaining >= 64 {
            !0
        } else {
            (1u64 << remaining) - 1
        };
        self.blocks[w] = bits & mask;
    }

    /// Resets every label to negative, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Refills by evaluating `f(i)` for every index (allocation reuse
    /// for per-world label generation).
    pub fn refill(&mut self, mut f: impl FnMut(usize) -> bool) {
        self.clear();
        for i in 0..self.len {
            if f(i) {
                self.set(i, true);
            }
        }
    }

    /// Sums the labels at the given (unique) indices — the per-region
    /// positive count `p(R)` for a membership list.
    ///
    /// This is the per-world hot loop of membership counting, so ids
    /// are read by direct block indexing with no per-id bounds assert:
    /// callers must guarantee `id < len` for every id. [`Membership`]
    /// (the only production caller) validates that once at
    /// construction, which is where genuinely out-of-range input still
    /// panics. Debug builds keep the per-id check.
    ///
    /// [`Membership`]: crate::Membership
    #[inline]
    pub fn count_at(&self, ids: &[u32]) -> u64 {
        let mut acc = 0u64;
        for &id in ids {
            debug_assert!(
                (id as usize) < self.len,
                "label index {id} out of bounds (len {})",
                self.len
            );
            acc += (self.blocks[(id >> 6) as usize] >> (id & 63)) & 1;
        }
        acc
    }

    /// Iterates over the indices of positive labels.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(move |(bi, &block)| {
                let mut b = block;
                std::iter::from_fn(move || {
                    if b == 0 {
                        None
                    } else {
                        let tz = b.trailing_zeros() as usize;
                        b &= b - 1;
                        Some(bi * 64 + tz)
                    }
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut l = BitLabels::zeros(130);
        assert_eq!(l.len(), 130);
        assert_eq!(l.count_ones(), 0);
        l.set(0, true);
        l.set(64, true);
        l.set(129, true);
        assert!(l.get(0) && l.get(64) && l.get(129));
        assert!(!l.get(1) && !l.get(63) && !l.get(128));
        assert_eq!(l.count_ones(), 3);
        l.set(64, false);
        assert!(!l.get(64));
        assert_eq!(l.count_ones(), 2);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let l = BitLabels::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(l.get(i), b, "mismatch at {i}");
        }
        assert_eq!(l.count_ones(), bools.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn from_fn_matches_from_bools() {
        let a = BitLabels::from_fn(100, |i| i % 7 == 0);
        let bools: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        assert_eq!(a, BitLabels::from_bools(&bools));
    }

    #[test]
    fn count_at_sums_selected() {
        let l = BitLabels::from_fn(50, |i| i < 10);
        assert_eq!(l.count_at(&[0, 5, 9]), 3);
        assert_eq!(l.count_at(&[10, 20, 30]), 0);
        assert_eq!(l.count_at(&[9, 10]), 1);
        assert_eq!(l.count_at(&[]), 0);
    }

    #[test]
    fn refill_reuses_allocation() {
        let mut l = BitLabels::from_fn(100, |_| true);
        assert_eq!(l.count_ones(), 100);
        l.refill(|i| i == 42);
        assert_eq!(l.count_ones(), 1);
        assert!(l.get(42));
    }

    #[test]
    fn iter_ones_yields_sorted_positions() {
        let l = BitLabels::from_fn(300, |i| i % 67 == 1);
        let ones: Vec<usize> = l.iter_ones().collect();
        assert_eq!(ones, vec![1, 68, 135, 202, 269]);
    }

    #[test]
    fn empty_bitset() {
        let l = BitLabels::zeros(0);
        assert!(l.is_empty());
        assert_eq!(l.count_ones(), 0);
        assert_eq!(l.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let l = BitLabels::zeros(10);
        let _ = l.get(10);
    }

    #[test]
    fn blocks_expose_exact_bits_with_zero_tail() {
        let mut l = BitLabels::from_fn(70, |i| i % 2 == 0);
        assert_eq!(l.blocks().len(), 2);
        // Tail bits (70..128) stay zero through every mutation path.
        l.set(69, true);
        l.set(69, false);
        l.refill(|i| i >= 64);
        assert_eq!(l.blocks()[0], 0);
        assert_eq!(l.blocks()[1], 0b11_1111);
        let total: u64 = l.blocks().iter().map(|b| b.count_ones() as u64).sum();
        assert_eq!(total, l.count_ones());
    }

    #[test]
    fn set_word_writes_whole_blocks_and_masks_the_tail() {
        let mut l = BitLabels::zeros(70);
        assert_eq!(l.num_blocks(), 2);
        l.set_word(0, 0xDEAD_BEEF_0123_4567);
        assert_eq!(l.blocks()[0], 0xDEAD_BEEF_0123_4567);
        // Tail word: only the low 6 lanes are real labels.
        l.set_word(1, !0);
        assert_eq!(l.blocks()[1], 0b11_1111, "tail lanes must be masked");
        assert_eq!(
            l.count_ones(),
            0xDEAD_BEEF_0123_4567u64.count_ones() as u64 + 6
        );
        // Word writes and bit writes see the same storage.
        let mut bitwise = BitLabels::zeros(70);
        for i in 0..70 {
            bitwise.set(i, l.get(i));
        }
        assert_eq!(bitwise, l);
        // Overwrite clears previous content.
        l.set_word(0, 0);
        assert_eq!(l.blocks()[0], 0);
    }

    #[test]
    #[should_panic(expected = "block index")]
    fn set_word_out_of_bounds_panics() {
        let mut l = BitLabels::zeros(64);
        l.set_word(1, 0);
    }

    #[test]
    fn count_at_matches_get_on_valid_ids() {
        let l = BitLabels::from_fn(200, |i| i % 5 == 0 || i % 7 == 0);
        let ids: Vec<u32> = (0..200).step_by(3).map(|i| i as u32).collect();
        let expected: u64 = ids.iter().map(|&i| l.get(i as usize) as u64).sum();
        assert_eq!(l.count_at(&ids), expected);
    }
}
