//! Spatial range-count indexes for spatial-fairness auditing.
//!
//! The paper's complexity analysis (§3) is `O(M · N · Q)` where `Q` is
//! "the average cost of a spatial range-count query". This crate
//! provides that `Q`: several interchangeable index structures that
//! answer *"how many observations — and how many positives — fall in
//! region `R`?"*:
//!
//! * [`BruteForceIndex`] — the oracle every other backend is tested
//!   against; `O(N)` per query.
//! * [`KdTree`] — median-split kd-tree with per-node `(n, p)`
//!   aggregates; prunes whole subtrees when a node's box is fully
//!   inside/outside the query region.
//! * [`QuadTree`] — region quadtree with the same aggregate pruning.
//! * [`RTree`] — STR bulk-loaded R-tree (the canonical database
//!   spatial index), also with aggregate pruning.
//! * [`GridIndex`] — uniform-grid bucketing (CSR layout) with per-cell
//!   aggregates; interior cells are answered from aggregates, boundary
//!   cells by scanning.
//! * [`SummedAreaTable`] — `O(1)` *exact* counts for grid-aligned cell
//!   ranges (the paper's §4.2 grid partitionings).
//! * [`Membership`] — precomputed region→member-id lists that make the
//!   Monte Carlo loop cheap: `n(R)` never changes across worlds, so
//!   each world only recounts `p(R)` against a fresh label bitset.
//! * [`BlockedMembership`] — the membership lists compiled into
//!   word-aligned `(block, mask)` popcnt runs over the [`BitLabels`]
//!   block array (with a Morton-order id layout, [`morton_layout`],
//!   that packs compact regions into dense masks), turning the
//!   per-world recount into ~64-ids-per-instruction popcounts.
//!
//! Labels are stored out-of-band in a [`BitLabels`] bitset so the same
//! spatial structure serves both the real world and the simulated ones.
//!
//! # Example
//!
//! ```rust
//! use sfgeo::{Point, Rect, Region};
//! use sfindex::{BitLabels, KdTree, RangeCount};
//!
//! let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
//! let labels = BitLabels::from_bools(&[true, false, true]);
//! let index = KdTree::build(points, labels);
//!
//! let region: Region = Rect::from_coords(-1.0, -1.0, 2.0, 2.0).into();
//! let counts = index.count(&region);
//! assert_eq!((counts.n, counts.p), (2, 1)); // two points inside, one positive
//! ```

pub mod blocked;
pub mod brute;
pub mod gridindex;
pub mod kdtree;
pub mod kernel;
pub mod labels;
pub mod membership;
pub mod quadtree;
pub mod rtree;
pub mod sat;
pub mod substrate;

pub use blocked::{
    morton_layout, shard_word_bounds, BlockedBuildError, BlockedMembership, MAX_FUSED_WORLDS,
};
pub use brute::BruteForceIndex;
pub use gridindex::GridIndex;
pub use kdtree::KdTree;
pub use kernel::{CountingKernel, KernelSelect, ParseKernelError};
pub use labels::BitLabels;
pub use membership::Membership;
pub use quadtree::QuadTree;
pub use rtree::RTree;
pub use sat::SummedAreaTable;
pub use substrate::{CountingSubstrate, IndexBackend, ParseBackendError, Substrate};

use sfgeo::Region;

/// A pair of counts for a region: observations and positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CountPair {
    /// Number of observations (`n(R)` in the paper).
    pub n: u64,
    /// Number of positive observations (`p(R)` in the paper).
    pub p: u64,
}

impl CountPair {
    /// Creates a count pair.
    ///
    /// # Panics
    /// Panics if `p > n`.
    #[inline]
    pub fn new(n: u64, p: u64) -> Self {
        assert!(p <= n, "positives ({p}) cannot exceed observations ({n})");
        CountPair { n, p }
    }

    /// Component-wise addition.
    #[inline]
    pub fn add(&mut self, other: CountPair) {
        self.n += other.n;
        self.p += other.p;
    }
}

impl std::ops::Add for CountPair {
    type Output = CountPair;
    fn add(self, rhs: CountPair) -> CountPair {
        CountPair {
            n: self.n + rhs.n,
            p: self.p + rhs.p,
        }
    }
}

/// A spatial structure that can count observations and positives in a
/// region, with labels fixed at build time.
pub trait RangeCount {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Returns `true` if no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Totals over the whole dataset (`N`, `P`).
    fn total(&self) -> CountPair;

    /// Counts observations and positives in `region` (`n(R)`, `p(R)`).
    fn count(&self, region: &Region) -> CountPair;
}

/// A spatial structure that can enumerate the point ids in a region.
///
/// Used to materialise [`Membership`] lists for the Monte Carlo loop
/// and to recount positives against alternate-world labels.
pub trait PointVisit {
    /// Invokes `visit` with the id of every point whose location lies
    /// inside `region`. Order is unspecified.
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32));

    /// Collects (sorted) ids of the points inside `region`.
    fn ids_in(&self, region: &Region) -> Vec<u32> {
        let mut ids = Vec::new();
        self.for_each_in(region, &mut |id| ids.push(id));
        ids.sort_unstable();
        ids
    }

    /// Counts observations and positives in `region` against an
    /// *external* label set (as used in simulated worlds).
    fn count_with(&self, region: &Region, labels: &BitLabels) -> CountPair {
        let mut n = 0u64;
        let mut p = 0u64;
        self.for_each_in(region, &mut |id| {
            n += 1;
            p += labels.get(id as usize) as u64;
        });
        CountPair { n, p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_pair_add() {
        let mut a = CountPair::new(10, 4);
        a.add(CountPair::new(5, 5));
        assert_eq!(a, CountPair::new(15, 9));
        let b = CountPair::new(1, 0) + CountPair::new(2, 2);
        assert_eq!(b, CountPair::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn count_pair_validates() {
        let _ = CountPair::new(3, 4);
    }
}
