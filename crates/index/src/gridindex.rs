//! Uniform-grid bucketing index (CSR layout).
//!
//! Points are binned into the cells of a [`sfgeo::UniformGrid`]; each
//! cell stores its `(n, p)` aggregate and a contiguous id range in a
//! CSR-style array. A query decomposes the candidate cell range into
//! *interior* cells (fully inside the region — answered from
//! aggregates) and *boundary* cells (scanned point-by-point).

use crate::{labels::BitLabels, CountPair, PointVisit, RangeCount};
use sfgeo::{BoundingBox, Point, Region, UniformGrid};

/// Grid-bucketed range-count index.
#[derive(Debug, Clone)]
pub struct GridIndex {
    grid: UniformGrid,
    points: Vec<Point>,
    labels: BitLabels,
    /// CSR: `cell_start[c]..cell_start[c+1]` indexes into `cell_ids`.
    cell_start: Vec<u32>,
    cell_ids: Vec<u32>,
    /// Per-cell aggregates.
    cell_agg: Vec<CountPair>,
    total: CountPair,
}

impl GridIndex {
    /// Builds the index with a grid resolution chosen so the average
    /// cell holds roughly `target_per_cell` points.
    pub fn build_auto(points: Vec<Point>, labels: BitLabels, target_per_cell: usize) -> Self {
        assert!(target_per_cell > 0, "target_per_cell must be positive");
        let n = points.len().max(1);
        let cells = (n / target_per_cell).max(1);
        // Near-square cells over the data's aspect ratio.
        let bbox = BoundingBox::of_points_expanded(&points, 1e-9)
            .unwrap_or(sfgeo::Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        let aspect = (bbox.width() / bbox.height()).max(1e-9);
        let ny = ((cells as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = cells.div_ceil(ny).max(1);
        let grid = UniformGrid::new(bbox, nx, ny);
        Self::build(points, labels, grid)
    }

    /// Builds the index over an explicit grid.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()`.
    pub fn build(points: Vec<Point>, labels: BitLabels, grid: UniformGrid) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        let ncells = grid.num_cells();
        // Counting sort into cells.
        let mut counts = vec![0u32; ncells + 1];
        let cell_of: Vec<u32> = points
            .iter()
            .map(|p| grid.cell_index_of(p) as u32)
            .collect();
        for &c in &cell_of {
            counts[c as usize + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let cell_start = counts.clone();
        let mut fill = counts;
        let mut cell_ids = vec![0u32; points.len()];
        for (id, &c) in cell_of.iter().enumerate() {
            cell_ids[fill[c as usize] as usize] = id as u32;
            fill[c as usize] += 1;
        }
        let mut cell_agg = vec![CountPair::default(); ncells];
        for c in 0..ncells {
            let (s, e) = (cell_start[c] as usize, cell_start[c + 1] as usize);
            let mut agg = CountPair {
                n: (e - s) as u64,
                p: 0,
            };
            for &id in &cell_ids[s..e] {
                agg.p += labels.get(id as usize) as u64;
            }
            cell_agg[c] = agg;
        }
        let total = CountPair {
            n: points.len() as u64,
            p: labels.count_ones(),
        };
        GridIndex {
            grid,
            points,
            labels,
            cell_start,
            cell_ids,
            cell_agg,
            total,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    fn cell_id_range(&self, cell: usize) -> &[u32] {
        let (s, e) = (
            self.cell_start[cell] as usize,
            self.cell_start[cell + 1] as usize,
        );
        &self.cell_ids[s..e]
    }
}

impl RangeCount for GridIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn total(&self) -> CountPair {
        self.total
    }

    fn count(&self, region: &Region) -> CountPair {
        let bbox = region.bounding_rect();
        let Some((ix0, iy0, ix1, iy1)) = self.grid.cell_range(&bbox) else {
            return CountPair::default();
        };
        let mut acc = CountPair::default();
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cell = self.grid.flat_index(ix, iy);
                let cell_rect = self.grid.cell_rect(ix, iy);
                if !region.intersects_rect(&cell_rect) {
                    continue;
                }
                if region.contains_rect(&cell_rect) {
                    acc.add(self.cell_agg[cell]);
                } else {
                    for &id in self.cell_id_range(cell) {
                        if region.contains(&self.points[id as usize]) {
                            acc.n += 1;
                            acc.p += self.labels.get(id as usize) as u64;
                        }
                    }
                }
            }
        }
        acc
    }
}

impl PointVisit for GridIndex {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        let bbox = region.bounding_rect();
        let Some((ix0, iy0, ix1, iy1)) = self.grid.cell_range(&bbox) else {
            return;
        };
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cell = self.grid.flat_index(ix, iy);
                let cell_rect = self.grid.cell_rect(ix, iy);
                if !region.intersects_rect(&cell_rect) {
                    continue;
                }
                let full = region.contains_rect(&cell_rect);
                for &id in self.cell_id_range(cell) {
                    if full || region.contains(&self.points[id as usize]) {
                        visit(id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Circle, Rect};

    fn random_dataset(n: usize, seed: u64) -> (Vec<Point>, BitLabels) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.5));
        (points, labels)
    }

    #[test]
    fn empty_index() {
        let g = GridIndex::build_auto(vec![], BitLabels::zeros(0), 16);
        assert_eq!(g.total(), CountPair::default());
        let r: Region = Rect::from_coords(0.0, 0.0, 1.0, 1.0).into();
        assert_eq!(g.count(&r), CountPair::default());
    }

    #[test]
    fn matches_brute_force_on_rects() {
        let (points, labels) = random_dataset(3000, 21);
        let gi = GridIndex::build_auto(points.clone(), labels.clone(), 16);
        let brute = BruteForceIndex::build(points, labels);
        assert_eq!(gi.total(), brute.total());
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for _ in 0..200 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let w = rng.gen_range(0.0..8.0);
            let h = rng.gen_range(0.0..4.0);
            let r: Region = Rect::from_coords(cx, cy, cx + w, cy + h).into();
            assert_eq!(gi.count(&r), brute.count(&r), "mismatch for {r}");
        }
    }

    #[test]
    fn matches_brute_force_on_circles() {
        let (points, labels) = random_dataset(2000, 23);
        let gi = GridIndex::build_auto(points.clone(), labels.clone(), 8);
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        for _ in 0..150 {
            let c: Region = Circle::new(
                Point::new(rng.gen_range(-11.0..11.0), rng.gen_range(-6.0..6.0)),
                rng.gen_range(0.0..6.0),
            )
            .into();
            assert_eq!(gi.count(&c), brute.count(&c), "mismatch for {c}");
        }
    }

    #[test]
    fn ids_match_brute_force() {
        let (points, labels) = random_dataset(1000, 25);
        let gi = GridIndex::build_auto(points.clone(), labels.clone(), 32);
        let brute = BruteForceIndex::build(points, labels);
        let r: Region = Rect::from_coords(-4.0, -2.0, 4.0, 2.0).into();
        assert_eq!(gi.ids_in(&r), brute.ids_in(&r));
    }

    #[test]
    fn explicit_grid_resolution() {
        let (points, labels) = random_dataset(500, 26);
        let bbox = BoundingBox::of_points_expanded(&points, 1e-9).unwrap();
        let grid = UniformGrid::new(bbox, 7, 3);
        let gi = GridIndex::build(points.clone(), labels.clone(), grid);
        let brute = BruteForceIndex::build(points, labels);
        let r: Region = Rect::from_coords(-2.0, -1.0, 2.0, 1.0).into();
        assert_eq!(gi.count(&r), brute.count(&r));
        assert_eq!(gi.grid().nx(), 7);
    }

    #[test]
    fn query_outside_grid_bounds() {
        let (points, labels) = random_dataset(100, 27);
        let gi = GridIndex::build_auto(points.clone(), labels.clone(), 16);
        let r: Region = Rect::from_coords(100.0, 100.0, 101.0, 101.0).into();
        assert_eq!(gi.count(&r), CountPair::default());
        // Huge region covering everything.
        let all: Region = Rect::from_coords(-1e6, -1e6, 1e6, 1e6).into();
        assert_eq!(gi.count(&all), gi.total());
    }
}
