//! An STR-packed R-tree with per-node count aggregates.
//!
//! The Sort-Tile-Recursive bulk-loading R-tree is the canonical
//! database spatial index for static data. It joins the backend
//! ablation for the paper's `Q` factor: unlike the kd-tree it stores
//! *minimum bounding rectangles* per node, which can overlap, but its
//! packing gives excellent locality for clustered data.

use crate::{labels::BitLabels, CountPair, PointVisit, RangeCount};
use sfgeo::{BoundingBox, Point, Rect, Region};

const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    mbr: Rect,
    agg: CountPair,
    /// Leaf: range into the sorted point-id array. Internal: range into
    /// the child-node array.
    start: u32,
    end: u32,
    is_leaf: bool,
}

/// STR bulk-loaded R-tree over immutable points with build-time labels.
#[derive(Debug, Clone)]
pub struct RTree {
    points: Vec<Point>,
    labels: BitLabels,
    ids: Vec<u32>,
    /// Nodes stored level by level; the last node is the root.
    nodes: Vec<Node>,
    root: u32,
}

impl RTree {
    /// Builds the tree with Sort-Tile-Recursive packing.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()` or any coordinate is
    /// non-finite.
    pub fn build(points: Vec<Point>, labels: BitLabels) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        assert!(
            points.iter().all(Point::is_finite),
            "r-tree points must have finite coordinates"
        );
        if points.is_empty() {
            return RTree {
                points,
                labels,
                ids: vec![],
                nodes: vec![],
                root: u32::MAX,
            };
        }
        // STR: sort by x, slice into vertical strips of ~sqrt(n/cap)
        // tiles, sort each strip by y, pack runs of NODE_CAPACITY.
        let n = points.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let num_leaves = n.div_ceil(NODE_CAPACITY);
        let strips = (num_leaves as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strips);
        ids.sort_unstable_by(|&a, &b| {
            points[a as usize]
                .x
                .partial_cmp(&points[b as usize].x)
                .expect("finite coordinates")
        });
        for strip in ids.chunks_mut(per_strip) {
            strip.sort_unstable_by(|&a, &b| {
                points[a as usize]
                    .y
                    .partial_cmp(&points[b as usize].y)
                    .expect("finite coordinates")
            });
        }
        // Build leaves.
        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<u32> = Vec::new();
        let mut offset = 0usize;
        while offset < n {
            let end = (offset + NODE_CAPACITY).min(n);
            let mut bbox = BoundingBox::new();
            let mut pos = 0u64;
            for &id in &ids[offset..end] {
                bbox.add_point(&points[id as usize]);
                pos += labels.get(id as usize) as u64;
            }
            level.push(nodes.len() as u32);
            nodes.push(Node {
                mbr: bbox.build().expect("non-empty leaf"),
                agg: CountPair {
                    n: (end - offset) as u64,
                    p: pos,
                },
                start: offset as u32,
                end: end as u32,
                is_leaf: true,
            });
            offset = end;
        }
        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::new();
            for group in level.chunks(NODE_CAPACITY) {
                let mut bbox = BoundingBox::new();
                let mut agg = CountPair::default();
                for &child in group {
                    bbox.add_rect(&nodes[child as usize].mbr);
                    agg.add(nodes[child as usize].agg);
                }
                // Children of packed groups are contiguous in `nodes`
                // because each level is appended in order.
                next.push(nodes.len() as u32);
                nodes.push(Node {
                    mbr: bbox.build().expect("non-empty internal node"),
                    agg,
                    start: group[0],
                    end: group[0] + group.len() as u32,
                    is_leaf: false,
                });
            }
            level = next;
        }
        let root = level[0];
        RTree {
            points,
            labels,
            ids,
            nodes,
            root,
        }
    }

    /// Number of tree nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn count_rec(&self, node_idx: u32, region: &Region, acc: &mut CountPair) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.mbr) {
            return;
        }
        if region.contains_rect(&node.mbr) {
            acc.add(node.agg);
            return;
        }
        if node.is_leaf {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if region.contains(&self.points[id as usize]) {
                    acc.n += 1;
                    acc.p += self.labels.get(id as usize) as u64;
                }
            }
            return;
        }
        for child in node.start..node.end {
            self.count_rec(child, region, acc);
        }
    }

    fn visit_rec(&self, node_idx: u32, region: &Region, visit: &mut dyn FnMut(u32)) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.mbr) {
            return;
        }
        if node.is_leaf {
            let full = region.contains_rect(&node.mbr);
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if full || region.contains(&self.points[id as usize]) {
                    visit(id);
                }
            }
            return;
        }
        if region.contains_rect(&node.mbr) {
            // Fast path: every descendant leaf is fully covered.
            for child in node.start..node.end {
                self.visit_all(child, visit);
            }
            return;
        }
        for child in node.start..node.end {
            self.visit_rec(child, region, visit);
        }
    }

    fn visit_all(&self, node_idx: u32, visit: &mut dyn FnMut(u32)) {
        let node = &self.nodes[node_idx as usize];
        if node.is_leaf {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                visit(id);
            }
        } else {
            for child in node.start..node.end {
                self.visit_all(child, visit);
            }
        }
    }
}

impl RangeCount for RTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn total(&self) -> CountPair {
        if self.root == u32::MAX {
            CountPair::default()
        } else {
            self.nodes[self.root as usize].agg
        }
    }

    fn count(&self, region: &Region) -> CountPair {
        let mut acc = CountPair::default();
        if self.root != u32::MAX {
            self.count_rec(self.root, region, &mut acc);
        }
        acc
    }
}

impl PointVisit for RTree {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        if self.root != u32::MAX {
            self.visit_rec(self.root, region, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::Circle;

    fn random_dataset(n: usize, seed: u64) -> (Vec<Point>, BitLabels) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.62));
        (points, labels)
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(vec![], BitLabels::zeros(0));
        assert_eq!(t.total(), CountPair::default());
        let r: Region = Rect::from_coords(0.0, 0.0, 1.0, 1.0).into();
        assert_eq!(t.count(&r), CountPair::default());
    }

    #[test]
    fn single_point_and_small_trees() {
        for n in [1usize, 2, 15, 16, 17, 255, 256, 257] {
            let (points, labels) = random_dataset(n, n as u64);
            let rt = RTree::build(points.clone(), labels.clone());
            let brute = BruteForceIndex::build(points, labels);
            assert_eq!(rt.total(), brute.total(), "n={n}");
            let r: Region = Rect::from_coords(-5.0, -2.0, 5.0, 2.0).into();
            assert_eq!(rt.count(&r), brute.count(&r), "n={n}");
        }
    }

    #[test]
    fn matches_brute_force_on_rects() {
        let (points, labels) = random_dataset(3000, 51);
        let rt = RTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        for _ in 0..200 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let w = rng.gen_range(0.0..8.0);
            let h = rng.gen_range(0.0..4.0);
            let r: Region = Rect::from_coords(cx, cy, cx + w, cy + h).into();
            assert_eq!(rt.count(&r), brute.count(&r), "mismatch for {r}");
        }
    }

    #[test]
    fn matches_brute_force_on_circles() {
        let (points, labels) = random_dataset(2000, 53);
        let rt = RTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        for _ in 0..150 {
            let c: Region = Circle::new(
                Point::new(rng.gen_range(-11.0..11.0), rng.gen_range(-6.0..6.0)),
                rng.gen_range(0.0..5.0),
            )
            .into();
            assert_eq!(rt.count(&c), brute.count(&c), "mismatch for {c}");
        }
    }

    #[test]
    fn ids_match_brute_force() {
        let (points, labels) = random_dataset(1200, 55);
        let rt = RTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(56);
        for _ in 0..50 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let r: Region = Rect::from_coords(cx, cy, cx + 5.0, cy + 3.0).into();
            assert_eq!(rt.ids_in(&r), brute.ids_in(&r));
        }
    }

    #[test]
    fn clustered_data_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(57);
        let mut points = Vec::new();
        for c in 0..10 {
            let cx = (c as f64) * 3.0;
            for _ in 0..200 {
                points.push(Point::new(
                    cx + rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                ));
            }
        }
        let labels = BitLabels::from_fn(points.len(), |i| i % 3 == 0);
        let rt = RTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        for c in 0..10 {
            let r: Region =
                Rect::from_coords((c as f64) * 3.0 - 0.5, -1.0, (c as f64) * 3.0 + 0.5, 1.0).into();
            assert_eq!(rt.count(&r), brute.count(&r), "cluster {c}");
        }
    }

    #[test]
    fn count_with_alternate_labels() {
        let (points, labels) = random_dataset(800, 58);
        let rt = RTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let world = BitLabels::from_fn(800, |i| i % 5 == 0);
        let r: Region = Rect::from_coords(-4.0, -2.0, 4.0, 2.0).into();
        assert_eq!(rt.count_with(&r, &world), brute.count_with(&r, &world));
    }
}
