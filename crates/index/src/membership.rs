//! Precomputed region-membership lists for the Monte Carlo loop.
//!
//! The key observation (DESIGN.md §5): across simulated worlds the
//! *locations* never change — only the labels do. Therefore `n(R)` is
//! world-invariant and only `p(R)` needs recomputation. Materialising
//! each region's member ids once turns a world evaluation into a dense
//! sweep `p(R) = Σ labels[id]` over cached, sorted id lists against a
//! label bitset that fits in cache.

use crate::{labels::BitLabels, CountPair, PointVisit};
use sfgeo::Region;

/// Region→member-ids lists with world-invariant `n(R)` counts.
#[derive(Debug, Clone)]
pub struct Membership {
    /// CSR layout: `offsets[r]..offsets[r+1]` indexes `ids`.
    offsets: Vec<u64>,
    ids: Vec<u32>,
    num_points: usize,
}

impl Membership {
    /// Builds membership lists for `regions` using any id-enumerating
    /// index.
    ///
    /// # Panics
    /// Panics if the index enumerates an id `>= num_points`. Validating
    /// here — once, at construction — is what lets the per-world hot
    /// loop ([`BitLabels::count_at`]) index label blocks directly with
    /// no per-id bounds check.
    pub fn build<I: PointVisit + ?Sized>(index: &I, num_points: usize, regions: &[Region]) -> Self {
        let mut offsets = Vec::with_capacity(regions.len() + 1);
        offsets.push(0u64);
        let mut ids: Vec<u32> = Vec::new();
        for (r, region) in regions.iter().enumerate() {
            let before = ids.len();
            index.for_each_in(region, &mut |id| ids.push(id));
            // Sorted member lists give sequential bitset access.
            ids[before..].sort_unstable();
            // Sorted, so the last id is the maximum for this region.
            if let Some(&max_id) = ids.last().filter(|_| ids.len() > before) {
                assert!(
                    (max_id as usize) < num_points,
                    "index enumerated member id {max_id} for region {r}, \
                     but only {num_points} points are indexed"
                );
            }
            offsets.push(ids.len() as u64);
        }
        Membership {
            offsets,
            ids,
            num_points,
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of points the lists refer to.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Member ids of region `r` (sorted).
    pub fn members(&self, r: usize) -> &[u32] {
        let (s, e) = (self.offsets[r] as usize, self.offsets[r + 1] as usize);
        &self.ids[s..e]
    }

    /// World-invariant observation count `n(R)` of region `r`.
    pub fn n_of(&self, r: usize) -> u64 {
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Counts `(n(R), p(R))` of region `r` against a label set.
    pub fn count(&self, r: usize, labels: &BitLabels) -> CountPair {
        assert_eq!(
            labels.len(),
            self.num_points,
            "label set length must match the indexed point count"
        );
        CountPair {
            n: self.n_of(r),
            p: labels.count_at(self.members(r)),
        }
    }

    /// Counts `p(R)` for *all* regions against a label set, reusing the
    /// output buffer. This is the per-world hot loop.
    pub fn count_all_into(&self, labels: &BitLabels, out: &mut Vec<u64>) {
        assert_eq!(
            labels.len(),
            self.num_points,
            "label set length must match the indexed point count"
        );
        out.clear();
        out.reserve(self.num_regions());
        for r in 0..self.num_regions() {
            out.push(labels.count_at(self.members(r)));
        }
    }

    /// Total number of stored ids (memory diagnostic: 4 bytes each).
    pub fn total_ids(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceIndex, RangeCount};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Circle, Point, Rect};

    fn setup() -> (BruteForceIndex, Vec<Region>, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let n = 1000;
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.5));
        let idx = BruteForceIndex::build(points, labels);
        let mut regions: Vec<Region> = Vec::new();
        for _ in 0..30 {
            let cx = rng.gen_range(0.0..10.0);
            let cy = rng.gen_range(0.0..10.0);
            regions.push(Rect::square(Point::new(cx, cy), rng.gen_range(0.5..4.0)).into());
        }
        regions.push(Circle::new(Point::new(5.0, 5.0), 2.0).into());
        (idx, regions, n)
    }

    #[test]
    fn n_counts_match_direct_queries() {
        let (idx, regions, n) = setup();
        let mem = Membership::build(&idx, n, &regions);
        assert_eq!(mem.num_regions(), regions.len());
        for (r_idx, region) in regions.iter().enumerate() {
            let direct = idx.count(region);
            assert_eq!(mem.n_of(r_idx), direct.n, "n mismatch for region {r_idx}");
        }
    }

    #[test]
    fn alternate_world_counts_match_requery() {
        let (idx, regions, n) = setup();
        let mem = Membership::build(&idx, n, &regions);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..5 {
            let world = BitLabels::from_fn(n, |_| rng.gen_bool(0.62));
            for (r_idx, region) in regions.iter().enumerate() {
                let by_mem = mem.count(r_idx, &world);
                let by_query = idx.count_with(region, &world);
                assert_eq!(by_mem, by_query, "region {r_idx}");
            }
        }
    }

    #[test]
    fn count_all_into_matches_individual_counts() {
        let (idx, regions, n) = setup();
        let mem = Membership::build(&idx, n, &regions);
        let world = BitLabels::from_fn(n, |i| i % 2 == 0);
        let mut out = Vec::new();
        mem.count_all_into(&world, &mut out);
        assert_eq!(out.len(), regions.len());
        for (r_idx, &p) in out.iter().enumerate() {
            assert_eq!(p, mem.count(r_idx, &world).p);
        }
        // Buffer reuse: second call must not grow.
        let cap = out.capacity();
        mem.count_all_into(&world, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn members_are_sorted_and_unique() {
        let (idx, regions, n) = setup();
        let mem = Membership::build(&idx, n, &regions);
        for r in 0..mem.num_regions() {
            let m = mem.members(r);
            assert!(
                m.windows(2).all(|w| w[0] < w[1]),
                "region {r} not sorted/unique"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_label_length_rejected() {
        let (idx, regions, n) = setup();
        let mem = Membership::build(&idx, n, &regions);
        let bad = BitLabels::zeros(n + 1);
        let _ = mem.count(0, &bad);
    }

    /// An index that enumerates ids past the declared point count —
    /// the construction-time input [`Membership::build`] must reject.
    struct OutOfRangeIndex;

    impl PointVisit for OutOfRangeIndex {
        fn for_each_in(&self, _region: &Region, visit: &mut dyn FnMut(u32)) {
            visit(3);
            visit(1000);
        }
    }

    #[test]
    #[should_panic(expected = "enumerated member id 1000")]
    fn out_of_range_member_id_rejected_at_construction() {
        let regions: Vec<Region> = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0).into()];
        let _ = Membership::build(&OutOfRangeIndex, 10, &regions);
    }

    #[test]
    fn empty_regions_have_zero_counts() {
        let (idx, _, n) = setup();
        let far: Vec<Region> = vec![Rect::from_coords(99.0, 99.0, 100.0, 100.0).into()];
        let mem = Membership::build(&idx, n, &far);
        assert_eq!(mem.n_of(0), 0);
        let world = BitLabels::from_fn(n, |_| true);
        assert_eq!(mem.count(0, &world), CountPair::default());
    }
}
