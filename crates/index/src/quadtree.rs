//! A region quadtree with per-node count aggregates.
//!
//! Same pruning contract as [`crate::KdTree`], different space
//! decomposition: nodes split their square extent into four quadrants.
//! Included as an ablation backend (see DESIGN.md §4) — on the paper's
//! strongly clustered LAR-like data the kd-tree adapts to density while
//! the quadtree's splits are data-independent.

use crate::{labels::BitLabels, CountPair, PointVisit, RangeCount};
use sfgeo::{BoundingBox, Point, Rect, Region};

const LEAF_SIZE: usize = 32;
const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
struct Node {
    bbox: Rect,
    agg: CountPair,
    start: u32,
    end: u32,
    /// Indices of up to four children; `u32::MAX` = absent.
    children: [u32; 4],
    is_leaf: bool,
}

/// A point-region quadtree over immutable points with build-time labels.
#[derive(Debug, Clone)]
pub struct QuadTree {
    points: Vec<Point>,
    labels: BitLabels,
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
}

impl QuadTree {
    /// Builds the tree.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()` or any coordinate is
    /// non-finite.
    pub fn build(points: Vec<Point>, labels: BitLabels) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        assert!(
            points.iter().all(Point::is_finite),
            "quadtree points must have finite coordinates"
        );
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        let root = if points.is_empty() {
            u32::MAX
        } else {
            let bbox = BoundingBox::of_points(&points).expect("non-empty");
            let n = points.len();
            build_node(&points, &labels, &mut ids, 0, n, bbox, 0, &mut nodes)
        };
        QuadTree {
            points,
            labels,
            ids,
            nodes,
            root,
        }
    }

    /// Number of tree nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn count_rec(&self, node_idx: u32, region: &Region, acc: &mut CountPair) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.bbox) {
            return;
        }
        if region.contains_rect(&node.bbox) {
            acc.add(node.agg);
            return;
        }
        if node.is_leaf {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if region.contains(&self.points[id as usize]) {
                    acc.n += 1;
                    acc.p += self.labels.get(id as usize) as u64;
                }
            }
            return;
        }
        for &child in &node.children {
            if child != u32::MAX {
                self.count_rec(child, region, acc);
            }
        }
    }

    fn visit_rec(&self, node_idx: u32, region: &Region, visit: &mut dyn FnMut(u32)) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.bbox) {
            return;
        }
        if region.contains_rect(&node.bbox) {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                visit(id);
            }
            return;
        }
        if node.is_leaf {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if region.contains(&self.points[id as usize]) {
                    visit(id);
                }
            }
            return;
        }
        for &child in &node.children {
            if child != u32::MAX {
                self.visit_rec(child, region, visit);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    points: &[Point],
    labels: &BitLabels,
    ids: &mut [u32],
    start: usize,
    end: usize,
    bbox: Rect,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let mut pos = 0u64;
    for &id in &ids[start..end] {
        pos += labels.get(id as usize) as u64;
    }
    let agg = CountPair {
        n: (end - start) as u64,
        p: pos,
    };
    let node_idx = nodes.len() as u32;
    nodes.push(Node {
        bbox,
        agg,
        start: start as u32,
        end: end as u32,
        children: [u32::MAX; 4],
        is_leaf: true,
    });
    if end - start <= LEAF_SIZE || depth >= MAX_DEPTH {
        return node_idx;
    }
    // Partition ids into the four quadrants of the node's extent, in
    // place: quadrant = (x >= cx) as usize | ((y >= cy) as usize) << 1.
    let c = bbox.center();
    let quadrant = |p: &Point| -> usize { (p.x >= c.x) as usize | (((p.y >= c.y) as usize) << 1) };
    let slice = &mut ids[start..end];
    slice.sort_unstable_by_key(|&id| quadrant(&points[id as usize]));
    // Find quadrant boundaries.
    let mut bounds = [0usize; 5];
    for q in 0..4 {
        bounds[q + 1] = bounds[q]
            + slice[bounds[q]..]
                .iter()
                .take_while(|&&id| quadrant(&points[id as usize]) == q)
                .count();
    }
    // A node whose points are all identical would recurse forever into
    // one quadrant; the depth cap above is the backstop, but also stop
    // if no split happened.
    let effective: usize = (0..4).filter(|&q| bounds[q + 1] > bounds[q]).count();
    if effective <= 1 && bbox.width() <= f64::EPSILON && bbox.height() <= f64::EPSILON {
        return node_idx;
    }
    let child_boxes = [
        Rect::from_coords(bbox.min.x, bbox.min.y, c.x, c.y),
        Rect::from_coords(c.x, bbox.min.y, bbox.max.x, c.y),
        Rect::from_coords(bbox.min.x, c.y, c.x, bbox.max.y),
        Rect::from_coords(c.x, c.y, bbox.max.x, bbox.max.y),
    ];
    let mut children = [u32::MAX; 4];
    for q in 0..4 {
        let (s, e) = (start + bounds[q], start + bounds[q + 1]);
        if s < e {
            children[q] = build_node(points, labels, ids, s, e, child_boxes[q], depth + 1, nodes);
        }
    }
    nodes[node_idx as usize].children = children;
    nodes[node_idx as usize].is_leaf = false;
    node_idx
}

impl RangeCount for QuadTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn total(&self) -> CountPair {
        if self.root == u32::MAX {
            CountPair::default()
        } else {
            self.nodes[self.root as usize].agg
        }
    }

    fn count(&self, region: &Region) -> CountPair {
        let mut acc = CountPair::default();
        if self.root != u32::MAX {
            self.count_rec(self.root, region, &mut acc);
        }
        acc
    }
}

impl PointVisit for QuadTree {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        if self.root != u32::MAX {
            self.visit_rec(self.root, region, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::Circle;

    fn random_dataset(n: usize, seed: u64) -> (Vec<Point>, BitLabels) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.4));
        (points, labels)
    }

    #[test]
    fn empty_tree() {
        let t = QuadTree::build(vec![], BitLabels::zeros(0));
        assert_eq!(t.total(), CountPair::default());
    }

    #[test]
    fn matches_brute_force_on_rects() {
        let (points, labels) = random_dataset(2000, 11);
        let qt = QuadTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        assert_eq!(qt.total(), brute.total());
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..200 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let w = rng.gen_range(0.0..8.0);
            let h = rng.gen_range(0.0..4.0);
            let r: Region = Rect::from_coords(cx, cy, cx + w, cy + h).into();
            assert_eq!(qt.count(&r), brute.count(&r), "mismatch for {r}");
        }
    }

    #[test]
    fn matches_brute_force_on_circles() {
        let (points, labels) = random_dataset(1200, 13);
        let qt = QuadTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for _ in 0..100 {
            let c: Region = Circle::new(
                Point::new(rng.gen_range(-11.0..11.0), rng.gen_range(-6.0..6.0)),
                rng.gen_range(0.0..5.0),
            )
            .into();
            assert_eq!(qt.count(&c), brute.count(&c), "mismatch for {c}");
        }
    }

    #[test]
    fn ids_match_brute_force() {
        let (points, labels) = random_dataset(600, 15);
        let qt = QuadTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let r: Region = Rect::from_coords(-3.0, -2.0, 6.0, 3.0).into();
        assert_eq!(qt.ids_in(&r), brute.ids_in(&r));
    }

    #[test]
    fn duplicate_points_survive_depth_cap() {
        let pts = vec![Point::new(2.0, 2.0); 500];
        let labels = BitLabels::from_fn(500, |i| i % 2 == 0);
        let qt = QuadTree::build(pts, labels);
        let r: Region = Rect::from_coords(1.0, 1.0, 3.0, 3.0).into();
        assert_eq!(qt.count(&r), CountPair::new(500, 250));
    }

    #[test]
    fn clustered_data_correct() {
        // Two tight clusters far apart — exercises deep unbalanced paths.
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let mut points = Vec::new();
        for _ in 0..500 {
            points.push(Point::new(
                rng.gen_range(0.0..0.01),
                rng.gen_range(0.0..0.01),
            ));
        }
        for _ in 0..500 {
            points.push(Point::new(
                rng.gen_range(99.99..100.0),
                rng.gen_range(99.99..100.0),
            ));
        }
        let labels = BitLabels::from_fn(1000, |i| i < 500);
        let qt = QuadTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let r: Region = Rect::from_coords(-1.0, -1.0, 1.0, 1.0).into();
        assert_eq!(qt.count(&r), brute.count(&r));
        assert_eq!(qt.count(&r), CountPair::new(500, 500));
    }
}
