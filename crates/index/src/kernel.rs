//! Counting kernels: the popcount inner loops of blocked counting.
//!
//! [`BlockedMembership`](crate::BlockedMembership) turns a world
//! recount into two streams of work: *dense full ranges* (contiguous
//! label words counted whole) and *partial runs* (single words counted
//! under a mask). The partial runs are a gather — one word, one AND,
//! one popcnt — and stay scalar everywhere. The dense ranges are where
//! instruction-level choice matters, and this module makes that choice
//! explicit:
//!
//! * [`CountingKernel::Scalar`] — the pinned reference loop: one
//!   `count_ones` per word, in order. Every other kernel is defined as
//!   "bit-identical to this, faster".
//! * [`CountingKernel::Portable`] — a 8-word unrolled loop with four
//!   independent accumulators; plain Rust that the autovectorizer can
//!   turn into whatever the target offers.
//! * [`CountingKernel::Avx2`] — Harley–Seal carry-save popcount over
//!   256-bit lanes (16 vectors per reduction round), nibble-LUT
//!   `popcnt` per lane. Runtime-dispatched; requires AVX2.
//! * [`CountingKernel::Avx512`] — one `vpopcntdq` per 8 words.
//!   Runtime-dispatched; requires AVX-512F + AVX-512VPOPCNTDQ.
//!
//! Counts are exact integers, so kernel equivalence is **equality**,
//! not tolerance: every kernel must return the same `u64` as
//! [`CountingKernel::Scalar`] on every input. The proptests in
//! `crates/index/tests/kernel_proptests.rs` pin this on adversarial
//! geometries, and [`KernelSelect::Auto`] re-checks it at resolve time
//! with a self-probe before trusting a SIMD kernel.
//!
//! [`KernelSelect`] is the user-facing knob (config / wire / CLI): it
//! names a *preference*, which [`KernelSelect::resolve`] degrades to
//! the best kernel the running CPU actually supports. Because all
//! kernels are bit-identical, the knob is pure performance — results
//! never depend on it.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The resolved counting kernel: which popcount inner loop blocked
/// counting runs. Obtain one via [`KernelSelect::resolve`] — a
/// `CountingKernel` value is a proof that the variant was either
/// checked against the CPU's feature flags or needs none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingKernel {
    /// Pinned scalar reference loop.
    #[default]
    Scalar,
    /// Unrolled multi-accumulator loop; autovectorizes.
    Portable,
    /// Harley–Seal / CSA popcount over 256-bit lanes.
    Avx2,
    /// `vpopcntdq`: hardware per-lane popcount over 512-bit lanes.
    Avx512,
}

impl CountingKernel {
    /// Every kernel variant, for test matrices and bench sweeps.
    pub const ALL: [CountingKernel; 4] = [
        CountingKernel::Scalar,
        CountingKernel::Portable,
        CountingKernel::Avx2,
        CountingKernel::Avx512,
    ];

    /// Stable lowercase name (CLI value, bench artifact key).
    pub fn name(self) -> &'static str {
        match self {
            CountingKernel::Scalar => "scalar",
            CountingKernel::Portable => "portable",
            CountingKernel::Avx2 => "avx2",
            CountingKernel::Avx512 => "avx512",
        }
    }

    /// Whether the running CPU can execute this kernel. `Scalar` and
    /// `Portable` are always supported; the SIMD kernels consult the
    /// runtime feature flags (and are never supported off x86_64).
    pub fn is_supported(self) -> bool {
        match self {
            CountingKernel::Scalar | CountingKernel::Portable => true,
            CountingKernel::Avx2 => avx2_detected(),
            CountingKernel::Avx512 => avx512_detected(),
        }
    }

    /// Popcount of a dense word range — the kernel's whole job.
    ///
    /// # Panics
    /// Panics (via the dispatch `debug_assert!` in debug builds, and
    /// the probe-backed resolve path in release) only if called on an
    /// unsupported SIMD variant; [`KernelSelect::resolve`] never hands
    /// one out.
    #[inline]
    pub fn popcount(self, words: &[u64]) -> u64 {
        match self {
            CountingKernel::Scalar => popcount_scalar(words),
            CountingKernel::Portable => popcount_portable(words),
            CountingKernel::Avx2 => {
                debug_assert!(self.is_supported(), "avx2 kernel on a non-avx2 cpu");
                // SAFETY: resolve() only yields Avx2 when the feature
                // is detected at runtime.
                unsafe { popcount_avx2(words) }
            }
            CountingKernel::Avx512 => {
                debug_assert!(self.is_supported(), "avx512 kernel on a non-avx512 cpu");
                // SAFETY: resolve() only yields Avx512 when the
                // features are detected at runtime.
                unsafe { popcount_avx512(words) }
            }
        }
    }
}

impl std::fmt::Display for CountingKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The counting-kernel *selection* knob: what the user asked for,
/// before it meets the CPU. Threads through `AuditConfig`, the wire
/// format, and `--kernel`; resolve with [`KernelSelect::resolve`].
///
/// An explicit SIMD selection degrades gracefully: `Avx512` on a CPU
/// without it resolves to `Avx2`, and `Avx2` without AVX2 resolves to
/// `Portable`. Kernels are bit-identical, so degradation can never
/// change a result — only its speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSelect {
    /// Best detected kernel, validated by a self-probe at resolve time.
    #[default]
    Auto,
    /// Force the pinned scalar reference loop.
    Scalar,
    /// Force AVX2 Harley–Seal (degrades to `Portable` if undetected).
    Avx2,
    /// Force AVX-512 `vpopcntdq` (degrades toward `Portable`).
    Avx512,
    /// Force the portable unrolled loop.
    Portable,
}

impl KernelSelect {
    /// Every selection, for CLI help and test matrices.
    pub const ALL: [KernelSelect; 5] = [
        KernelSelect::Auto,
        KernelSelect::Scalar,
        KernelSelect::Avx2,
        KernelSelect::Avx512,
        KernelSelect::Portable,
    ];

    /// Stable name (serde value; parsed case-insensitively).
    pub fn name(&self) -> &'static str {
        match self {
            KernelSelect::Auto => "Auto",
            KernelSelect::Scalar => "Scalar",
            KernelSelect::Avx2 => "Avx2",
            KernelSelect::Avx512 => "Avx512",
            KernelSelect::Portable => "Portable",
        }
    }

    /// Resolves the selection against the running CPU:
    ///
    /// * `Scalar` / `Portable` — themselves, unconditionally.
    /// * `Avx512` → `Avx2` → `Portable` — the best *detected* kernel at
    ///   or below the request (a forced SIMD kernel on hardware
    ///   without it would be UB, and silently wrong results are not on
    ///   the menu — counts are bit-identical across kernels, so
    ///   degrading is safe).
    /// * `Auto` — the best detected kernel that also passes a one-time
    ///   self-probe comparing it against `Scalar` on an adversarial
    ///   bit pattern; a kernel that disagrees is skipped. The probe
    ///   result is cached for the process.
    pub fn resolve(self) -> CountingKernel {
        match self {
            KernelSelect::Scalar => CountingKernel::Scalar,
            KernelSelect::Portable => CountingKernel::Portable,
            KernelSelect::Avx2 => {
                if CountingKernel::Avx2.is_supported() {
                    CountingKernel::Avx2
                } else {
                    CountingKernel::Portable
                }
            }
            KernelSelect::Avx512 => {
                if CountingKernel::Avx512.is_supported() {
                    CountingKernel::Avx512
                } else {
                    KernelSelect::Avx2.resolve()
                }
            }
            KernelSelect::Auto => auto_kernel(),
        }
    }
}

impl std::fmt::Display for KernelSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`KernelSelect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel `{}` (expected auto, scalar, avx2, avx512, or portable)",
            self.input
        )
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for KernelSelect {
    type Err = ParseKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelSelect::Auto),
            "scalar" => Ok(KernelSelect::Scalar),
            "avx2" => Ok(KernelSelect::Avx2),
            "avx512" => Ok(KernelSelect::Avx512),
            "portable" => Ok(KernelSelect::Portable),
            _ => Err(ParseKernelError {
                input: s.to_string(),
            }),
        }
    }
}

// Wire encoding: the selection's name as a string, parsed back
// case-insensitively. The knob rides inside `AuditConfig` (absent on
// pre-kernel payloads, which decode as `Auto` — see the config serde).
impl Serialize for KernelSelect {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for KernelSelect {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let Some(s) = value.as_str() else {
            return Err(serde::Error::msg("kernel must be a string"));
        };
        s.parse()
            .map_err(|e: ParseKernelError| serde::Error::msg(e.to_string()))
    }
}

/// The `Auto` resolution, computed once per process: best detected
/// kernel that agrees with the scalar reference on a probe pattern.
fn auto_kernel() -> CountingKernel {
    static AUTO: OnceLock<CountingKernel> = OnceLock::new();
    *AUTO.get_or_init(|| {
        for kernel in [
            CountingKernel::Avx512,
            CountingKernel::Avx2,
            CountingKernel::Portable,
        ] {
            if kernel.is_supported() && probe_agrees_with_scalar(kernel) {
                return kernel;
            }
        }
        CountingKernel::Scalar
    })
}

/// Checks a kernel against the scalar reference on a deterministic
/// adversarial pattern: every slice length 0..=129 (covers the SIMD
/// kernels' 64-word Harley–Seal blocks, their 4/8-word vector tails,
/// and the scalar remainders) over mixed dense/sparse/alternating
/// words. A kernel that fails here is never selected by `Auto`.
fn probe_agrees_with_scalar(kernel: CountingKernel) -> bool {
    let mut words = [0u64; 129];
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for (i, w) in words.iter_mut().enumerate() {
        // SplitMix64 step: well-mixed, deterministic, dependency-free.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *w = match i % 5 {
            0 => z,
            1 => u64::MAX,
            2 => 0,
            3 => 0xAAAA_AAAA_AAAA_AAAA,
            _ => z ^ (z >> 1),
        };
    }
    (0..=words.len()).all(|len| {
        let slice = &words[..len];
        kernel.popcount(slice) == popcount_scalar(slice)
    })
}

/// The pinned scalar reference: one `count_ones` per word, in order.
#[inline]
fn popcount_scalar(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for w in words {
        acc += w.count_ones() as u64;
    }
    acc
}

/// Unrolled 8-words-per-iteration loop with four independent
/// accumulators — enough ILP for the autovectorizer (or the scalar
/// popcnt unit) to keep multiple chains in flight.
#[inline]
fn popcount_portable(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(8);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for ch in &mut chunks {
        a += ch[0].count_ones() as u64 + ch[4].count_ones() as u64;
        b += ch[1].count_ones() as u64 + ch[5].count_ones() as u64;
        c += ch[2].count_ones() as u64 + ch[6].count_ones() as u64;
        d += ch[3].count_ones() as u64 + ch[7].count_ones() as u64;
    }
    let mut acc = (a + b) + (c + d);
    for w in chunks.remainder() {
        acc += w.count_ones() as u64;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
fn avx2_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_detected() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_detected() -> bool {
    false
}

/// AVX2 Harley–Seal popcount (Muła–Kurz–Lemire): carry-save adders
/// compress 16 input vectors per round into `sixteens`, whose popcount
/// is taken once per 64 words; the residual `ones/twos/fours/eights`
/// accumulators are popcounted once at the end with their weights.
/// Per-lane popcount is the nibble-LUT `pshufb` + `psadbw` reduction.
///
/// # Safety
/// Requires AVX2 at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn popcount_avx2(words: &[u64]) -> u64 {
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt256(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        // Horizontal bytes → one u64 per 64-bit lane.
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn csa(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        let high = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
        let low = _mm256_xor_si256(u, c);
        (high, low)
    }

    let n = words.len();
    let ptr = words.as_ptr();
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(ptr: *const u64, word: usize) -> __m256i {
        _mm256_loadu_si256(ptr.add(word) as *const __m256i)
    }

    let zero = _mm256_setzero_si256();
    let mut total = zero;
    let mut ones = zero;
    let mut twos = zero;
    let mut fours = zero;
    let mut eights = zero;
    let mut i = 0;
    // 16 vectors × 4 words per Harley–Seal round.
    while i + 64 <= n {
        let (twos_a, o) = csa(ones, load(ptr, i), load(ptr, i + 4));
        let (twos_b, o) = csa(o, load(ptr, i + 8), load(ptr, i + 12));
        let (fours_a, t) = csa(twos, twos_a, twos_b);
        let (twos_a, o) = csa(o, load(ptr, i + 16), load(ptr, i + 20));
        let (twos_b, o) = csa(o, load(ptr, i + 24), load(ptr, i + 28));
        let (fours_b, t) = csa(t, twos_a, twos_b);
        let (eights_a, f) = csa(fours, fours_a, fours_b);
        let (twos_a, o) = csa(o, load(ptr, i + 32), load(ptr, i + 36));
        let (twos_b, o) = csa(o, load(ptr, i + 40), load(ptr, i + 44));
        let (fours_a, t) = csa(t, twos_a, twos_b);
        let (twos_a, o) = csa(o, load(ptr, i + 48), load(ptr, i + 52));
        let (twos_b, o) = csa(o, load(ptr, i + 56), load(ptr, i + 60));
        let (fours_b, t) = csa(t, twos_a, twos_b);
        let (eights_b, f) = csa(f, fours_a, fours_b);
        let (sixteens, e) = csa(eights, eights_a, eights_b);
        ones = o;
        twos = t;
        fours = f;
        eights = e;
        total = _mm256_add_epi64(total, popcnt256(sixteens));
        i += 64;
    }
    total = _mm256_slli_epi64::<4>(total);
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<3>(popcnt256(eights)));
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<2>(popcnt256(fours)));
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<1>(popcnt256(twos)));
    total = _mm256_add_epi64(total, popcnt256(ones));
    // Whole vectors the CSA rounds didn't cover.
    while i + 4 <= n {
        total = _mm256_add_epi64(total, popcnt256(load(ptr, i)));
        i += 4;
    }
    // Horizontal sum of the four u64 lanes.
    let lo = _mm256_castsi256_si128(total);
    let hi = _mm256_extracti128_si256::<1>(total);
    let pair = _mm_add_epi64(lo, hi);
    let mut acc = (_mm_cvtsi128_si64(pair) as u64)
        .wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(pair, pair)) as u64);
    // Scalar tail (< 4 words).
    while i < n {
        acc += (*ptr.add(i)).count_ones() as u64;
        i += 1;
    }
    acc
}

/// AVX-512 popcount: one `vpopcntdq` per 8 words, lane-wise
/// accumulation, one horizontal reduce at the end.
///
/// # Safety
/// Requires AVX-512F and AVX-512VPOPCNTDQ at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn popcount_avx512(words: &[u64]) -> u64 {
    use std::arch::x86_64::*;

    let n = words.len();
    let ptr = words.as_ptr();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm512_loadu_si512(ptr.add(i) as *const __m512i);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u64;
    while i < n {
        total += (*ptr.add(i)).count_ones() as u64;
        i += 1;
    }
    total
}

/// Never compiled on x86_64; the unreachable stub keeps the dispatch
/// total on other architectures (where `is_supported()` is `false`, so
/// these variants are never produced by `resolve()`).
#[cfg(not(target_arch = "x86_64"))]
unsafe fn popcount_avx2(_words: &[u64]) -> u64 {
    unreachable!("avx2 kernel is x86_64-only")
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn popcount_avx512(_words: &[u64]) -> u64 {
    unreachable!("avx512 kernel is x86_64-only")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<u64>> {
        let mut out = vec![
            vec![],
            vec![0],
            vec![u64::MAX],
            vec![1, 2, 4, 8],
            vec![u64::MAX; 63],
            vec![u64::MAX; 64],
            vec![u64::MAX; 65],
            vec![0x5555_5555_5555_5555; 200],
        ];
        // Deterministic mixed pattern over an awkward length.
        let mut x = 1u64;
        out.push(
            (0..137)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect(),
        );
        out
    }

    #[test]
    fn supported_kernels_match_scalar_exactly() {
        for kernel in CountingKernel::ALL {
            if !kernel.is_supported() {
                continue;
            }
            for pattern in patterns() {
                // Every suffix, to hit every tail length.
                for start in 0..=pattern.len() {
                    let slice = &pattern[start..];
                    assert_eq!(
                        kernel.popcount(slice),
                        popcount_scalar(slice),
                        "kernel {kernel} diverged on len {}",
                        slice.len()
                    );
                }
            }
        }
    }

    #[test]
    fn probe_accepts_every_supported_kernel() {
        for kernel in CountingKernel::ALL {
            if kernel.is_supported() {
                assert!(probe_agrees_with_scalar(kernel), "probe rejected {kernel}");
            }
        }
    }

    #[test]
    fn resolve_degrades_to_supported_kernels() {
        for select in KernelSelect::ALL {
            let kernel = select.resolve();
            assert!(
                kernel.is_supported(),
                "{select} resolved unsupported {kernel}"
            );
        }
        assert_eq!(KernelSelect::Scalar.resolve(), CountingKernel::Scalar);
        assert_eq!(KernelSelect::Portable.resolve(), CountingKernel::Portable);
        // Auto never falls all the way back to Scalar in practice
        // (Portable is always supported and always agrees).
        assert_ne!(KernelSelect::Auto.resolve(), CountingKernel::Scalar);
    }

    #[test]
    fn parse_roundtrip_and_case_insensitivity() {
        for select in KernelSelect::ALL {
            assert_eq!(select.name().parse::<KernelSelect>().unwrap(), select);
            assert_eq!(
                select
                    .name()
                    .to_ascii_lowercase()
                    .parse::<KernelSelect>()
                    .unwrap(),
                select
            );
        }
        assert!("neon".parse::<KernelSelect>().is_err());
        let err = "mmx".parse::<KernelSelect>().unwrap_err();
        assert!(err.to_string().contains("portable"));
    }

    #[test]
    fn serde_roundtrip_via_names() {
        for select in KernelSelect::ALL {
            let value = select.to_value();
            assert_eq!(KernelSelect::from_value(&value).unwrap(), select);
        }
        let err = KernelSelect::from_value(&serde::Value::U64(3)).unwrap_err();
        assert!(err.message.contains("string"));
    }
}
