//! Summed-area tables for O(1) grid-aligned range counts.
//!
//! The paper's §4.2 partitionings are regular grids; every partition is
//! a contiguous cell range of the grid, so after one `O(N + G)` pass a
//! summed-area table (2-D prefix sums over per-cell counts) answers
//! every partition's `(n, p)` in constant time. This is the fastest
//! exact backend for partitioning-based audits and for the `MeanVar`
//! baseline, and is rebuilt per Monte Carlo world in `O(N + G)`.

use crate::{labels::BitLabels, CountPair};
use sfgeo::{Point, UniformGrid};

/// 2-D prefix-sum table over a uniform grid's per-cell `(n, p)` counts.
#[derive(Debug, Clone)]
pub struct SummedAreaTable {
    grid: UniformGrid,
    /// `(nx+1) x (ny+1)` prefix sums, row-major; index `[iy][ix]` =
    /// totals of cells with coordinates `< (ix, iy)`.
    pref_n: Vec<u64>,
    pref_p: Vec<u64>,
}

impl SummedAreaTable {
    /// Builds the table from points and labels.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()`.
    pub fn build(points: &[Point], labels: &BitLabels, grid: UniformGrid) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        let mut cell_n = vec![0u64; grid.num_cells()];
        let mut cell_p = vec![0u64; grid.num_cells()];
        for (i, pt) in points.iter().enumerate() {
            let c = grid.cell_index_of(pt);
            cell_n[c] += 1;
            cell_p[c] += labels.get(i) as u64;
        }
        Self::from_cell_counts(grid, &cell_n, &cell_p)
    }

    /// Builds the table from precomputed per-cell counts (used by the
    /// Monte Carlo loop which keeps a fixed point→cell assignment).
    pub fn from_cell_counts(grid: UniformGrid, cell_n: &[u64], cell_p: &[u64]) -> Self {
        assert_eq!(cell_n.len(), grid.num_cells(), "cell_n length mismatch");
        assert_eq!(cell_p.len(), grid.num_cells(), "cell_p length mismatch");
        let (nx, ny) = (grid.nx(), grid.ny());
        let stride = nx + 1;
        let mut pref_n = vec![0u64; stride * (ny + 1)];
        let mut pref_p = vec![0u64; stride * (ny + 1)];
        for iy in 0..ny {
            let mut row_n = 0u64;
            let mut row_p = 0u64;
            for ix in 0..nx {
                let cell = iy * nx + ix;
                row_n += cell_n[cell];
                row_p += cell_p[cell];
                let out = (iy + 1) * stride + (ix + 1);
                pref_n[out] = pref_n[iy * stride + (ix + 1)] + row_n;
                pref_p[out] = pref_p[iy * stride + (ix + 1)] + row_p;
            }
        }
        SummedAreaTable {
            grid,
            pref_n,
            pref_p,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Totals over the whole grid.
    pub fn total(&self) -> CountPair {
        self.count_cells(0, 0, self.grid.nx() - 1, self.grid.ny() - 1)
    }

    /// Counts over the inclusive cell range `(ix0, iy0)..=(ix1, iy1)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn count_cells(&self, ix0: usize, iy0: usize, ix1: usize, iy1: usize) -> CountPair {
        assert!(
            ix0 <= ix1 && iy0 <= iy1 && ix1 < self.grid.nx() && iy1 < self.grid.ny(),
            "invalid cell range ({ix0},{iy0})..=({ix1},{iy1})"
        );
        let stride = self.grid.nx() + 1;
        let idx = |ix: usize, iy: usize| iy * stride + ix;
        let n = self.pref_n[idx(ix1 + 1, iy1 + 1)] + self.pref_n[idx(ix0, iy0)]
            - self.pref_n[idx(ix0, iy1 + 1)]
            - self.pref_n[idx(ix1 + 1, iy0)];
        let p = self.pref_p[idx(ix1 + 1, iy1 + 1)] + self.pref_p[idx(ix0, iy0)]
            - self.pref_p[idx(ix0, iy1 + 1)]
            - self.pref_p[idx(ix1 + 1, iy0)];
        CountPair { n, p }
    }

    /// Counts over a single cell.
    pub fn count_cell(&self, ix: usize, iy: usize) -> CountPair {
        self.count_cells(ix, iy, ix, iy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceIndex, RangeCount};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Rect, Region};

    fn setup(n: usize, nx: usize, ny: usize, seed: u64) -> (Vec<Point>, BitLabels, UniformGrid) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..6.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.62));
        let grid = UniformGrid::new(Rect::from_coords(0.0, 0.0, 10.0, 6.0), nx, ny);
        (points, labels, grid)
    }

    #[test]
    fn total_matches_input() {
        let (points, labels, grid) = setup(500, 8, 4, 31);
        let sat = SummedAreaTable::build(&points, &labels, grid);
        assert_eq!(
            sat.total(),
            CountPair {
                n: 500,
                p: labels.count_ones()
            }
        );
    }

    #[test]
    fn single_cells_sum_to_total() {
        let (points, labels, grid) = setup(700, 10, 5, 32);
        let sat = SummedAreaTable::build(&points, &labels, grid.clone());
        let mut acc = CountPair::default();
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                acc.add(sat.count_cell(ix, iy));
            }
        }
        assert_eq!(acc, sat.total());
    }

    #[test]
    fn ranges_match_brute_force_cell_rects() {
        let (points, labels, grid) = setup(1500, 12, 7, 33);
        let sat = SummedAreaTable::build(&points, &labels, grid.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        for _ in 0..100 {
            let ix0 = rng.gen_range(0..grid.nx());
            let ix1 = rng.gen_range(ix0..grid.nx());
            let iy0 = rng.gen_range(0..grid.ny());
            let iy1 = rng.gen_range(iy0..grid.ny());
            let rect = grid.cell_rect(ix0, iy0).union(&grid.cell_rect(ix1, iy1));
            // Shrink slightly so brute-force closed containment matches
            // the grid's half-open cell assignment at the range's outer
            // edges (points exactly on a shared edge belong to the
            // next cell over).
            let eps = 1e-9;
            let inner: Region = Rect::from_coords(
                rect.min.x - eps,
                rect.min.y - eps,
                rect.max.x - eps,
                rect.max.y - eps,
            )
            .into();
            let by_sat = sat.count_cells(ix0, iy0, ix1, iy1);
            let by_brute = brute.count(&inner);
            assert_eq!(by_sat, by_brute, "range ({ix0},{iy0})..=({ix1},{iy1})");
        }
    }

    #[test]
    fn from_cell_counts_matches_build() {
        let (points, labels, grid) = setup(400, 6, 3, 35);
        let direct = SummedAreaTable::build(&points, &labels, grid.clone());
        let mut cell_n = vec![0u64; grid.num_cells()];
        let mut cell_p = vec![0u64; grid.num_cells()];
        for (i, pt) in points.iter().enumerate() {
            let c = grid.cell_index_of(pt);
            cell_n[c] += 1;
            cell_p[c] += labels.get(i) as u64;
        }
        let indirect = SummedAreaTable::from_cell_counts(grid.clone(), &cell_n, &cell_p);
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                assert_eq!(direct.count_cell(ix, iy), indirect.count_cell(ix, iy));
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid cell range")]
    fn inverted_range_rejected() {
        let (points, labels, grid) = setup(10, 4, 4, 36);
        let sat = SummedAreaTable::build(&points, &labels, grid);
        let _ = sat.count_cells(2, 2, 1, 1);
    }

    #[test]
    fn empty_dataset() {
        let grid = UniformGrid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 3, 3);
        let sat = SummedAreaTable::build(&[], &BitLabels::zeros(0), grid);
        assert_eq!(sat.total(), CountPair::default());
        assert_eq!(sat.count_cells(0, 0, 2, 2), CountPair::default());
    }
}
