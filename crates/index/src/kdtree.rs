//! A kd-tree with per-node count aggregates.
//!
//! The classic structure for the paper's range-count workload: nodes
//! store `(n, p)` aggregates so a query region that fully contains a
//! node's bounding box is answered in `O(1)` for that subtree, and a
//! disjoint node is pruned outright. Typical query cost is `O(√N + k)`
//! boundary work for rectangles.

use crate::{labels::BitLabels, CountPair, PointVisit, RangeCount};
use sfgeo::{BoundingBox, Point, Rect, Region};

const LEAF_SIZE: usize = 32;

#[derive(Debug, Clone)]
struct Node {
    bbox: Rect,
    /// Aggregates for the subtree rooted here.
    agg: CountPair,
    /// Range into the permuted id array.
    start: u32,
    end: u32,
    /// Child node indices (`u32::MAX` = leaf).
    left: u32,
    right: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// Median-split kd-tree over immutable points with build-time labels.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point>,
    labels: BitLabels,
    /// Permutation of point ids; each node owns a contiguous range.
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
}

impl KdTree {
    /// Builds the tree.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()` or any coordinate is
    /// non-finite.
    pub fn build(points: Vec<Point>, labels: BitLabels) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        assert!(
            points.iter().all(Point::is_finite),
            "kd-tree points must have finite coordinates"
        );
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        let root = if points.is_empty() {
            u32::MAX
        } else {
            let n = points.len();
            build_node(&points, &labels, &mut ids, 0, n, &mut nodes)
        };
        KdTree {
            points,
            labels,
            ids,
            nodes,
            root,
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of tree nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn count_rec(&self, node_idx: u32, region: &Region, acc: &mut CountPair) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.bbox) {
            return;
        }
        if region.contains_rect(&node.bbox) {
            acc.add(node.agg);
            return;
        }
        if node.is_leaf() {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if region.contains(&self.points[id as usize]) {
                    acc.n += 1;
                    acc.p += self.labels.get(id as usize) as u64;
                }
            }
            return;
        }
        self.count_rec(node.left, region, acc);
        self.count_rec(node.right, region, acc);
    }

    fn visit_rec(&self, node_idx: u32, region: &Region, visit: &mut dyn FnMut(u32)) {
        let node = &self.nodes[node_idx as usize];
        if !region.intersects_rect(&node.bbox) {
            return;
        }
        if region.contains_rect(&node.bbox) {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                visit(id);
            }
            return;
        }
        if node.is_leaf() {
            for &id in &self.ids[node.start as usize..node.end as usize] {
                if region.contains(&self.points[id as usize]) {
                    visit(id);
                }
            }
            return;
        }
        self.visit_rec(node.left, region, visit);
        self.visit_rec(node.right, region, visit);
    }
}

fn build_node(
    points: &[Point],
    labels: &BitLabels,
    ids: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let slice = &mut ids[start..end];
    let mut bbox = BoundingBox::new();
    let mut pos = 0u64;
    for &id in slice.iter() {
        bbox.add_point(&points[id as usize]);
        pos += labels.get(id as usize) as u64;
    }
    let bbox = bbox.build().expect("non-empty node");
    let agg = CountPair {
        n: (end - start) as u64,
        p: pos,
    };
    let node_idx = nodes.len() as u32;
    nodes.push(Node {
        bbox,
        agg,
        start: start as u32,
        end: end as u32,
        left: u32::MAX,
        right: u32::MAX,
    });
    if end - start <= LEAF_SIZE {
        return node_idx;
    }
    // Split on the wider axis at the median.
    let mid = (end - start) / 2;
    let by_x = bbox.width() >= bbox.height();
    if by_x {
        slice.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize]
                .x
                .partial_cmp(&points[b as usize].x)
                .expect("finite coordinates")
        });
    } else {
        slice.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize]
                .y
                .partial_cmp(&points[b as usize].y)
                .expect("finite coordinates")
        });
    }
    let left = build_node(points, labels, ids, start, start + mid, nodes);
    let right = build_node(points, labels, ids, start + mid, end, nodes);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

impl RangeCount for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn total(&self) -> CountPair {
        if self.root == u32::MAX {
            CountPair::default()
        } else {
            self.nodes[self.root as usize].agg
        }
    }

    fn count(&self, region: &Region) -> CountPair {
        let mut acc = CountPair::default();
        if self.root != u32::MAX {
            self.count_rec(self.root, region, &mut acc);
        }
        acc
    }
}

impl PointVisit for KdTree {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        if self.root != u32::MAX {
            self.visit_rec(self.root, region, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::Circle;

    fn random_dataset(n: usize, seed: u64) -> (Vec<Point>, BitLabels) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.6));
        (points, labels)
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(vec![], BitLabels::zeros(0));
        assert_eq!(t.total(), CountPair::default());
        let r: Region = Rect::from_coords(0.0, 0.0, 1.0, 1.0).into();
        assert_eq!(t.count(&r), CountPair::default());
        assert_eq!(t.ids_in(&r), Vec::<u32>::new());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![Point::new(1.0, 1.0)], BitLabels::from_bools(&[true]));
        assert_eq!(t.total(), CountPair::new(1, 1));
        let hit: Region = Rect::from_coords(0.0, 0.0, 2.0, 2.0).into();
        let miss: Region = Rect::from_coords(2.0, 2.0, 3.0, 3.0).into();
        assert_eq!(t.count(&hit), CountPair::new(1, 1));
        assert_eq!(t.count(&miss), CountPair::default());
    }

    #[test]
    fn matches_brute_force_on_rects() {
        let (points, labels) = random_dataset(2000, 1);
        let kd = KdTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let w = rng.gen_range(0.0..8.0);
            let h = rng.gen_range(0.0..4.0);
            let r: Region = Rect::from_coords(cx, cy, cx + w, cy + h).into();
            assert_eq!(kd.count(&r), brute.count(&r), "mismatch for {r}");
        }
    }

    #[test]
    fn matches_brute_force_on_circles() {
        let (points, labels) = random_dataset(1500, 3);
        let kd = KdTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..200 {
            let c: Region = Circle::new(
                Point::new(rng.gen_range(-11.0..11.0), rng.gen_range(-6.0..6.0)),
                rng.gen_range(0.0..5.0),
            )
            .into();
            assert_eq!(kd.count(&c), brute.count(&c), "mismatch for {c}");
        }
    }

    #[test]
    fn ids_match_brute_force() {
        let (points, labels) = random_dataset(800, 5);
        let kd = KdTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..50 {
            let cx = rng.gen_range(-11.0..11.0);
            let cy = rng.gen_range(-6.0..6.0);
            let r: Region = Rect::from_coords(cx, cy, cx + 4.0, cy + 2.0).into();
            assert_eq!(kd.ids_in(&r), brute.ids_in(&r));
        }
    }

    #[test]
    fn count_with_alternate_labels_matches() {
        let (points, labels) = random_dataset(1000, 7);
        let kd = KdTree::build(points.clone(), labels.clone());
        let brute = BruteForceIndex::build(points, labels);
        let world = BitLabels::from_fn(1000, |i| i % 3 == 0);
        let r: Region = Rect::from_coords(-5.0, -2.0, 5.0, 2.0).into();
        assert_eq!(kd.count_with(&r, &world), brute.count_with(&r, &world));
    }

    #[test]
    fn duplicate_points_are_counted() {
        let pts = vec![Point::new(1.0, 1.0); 100];
        let labels = BitLabels::from_fn(100, |i| i < 40);
        let kd = KdTree::build(pts, labels);
        let r: Region = Rect::from_coords(0.5, 0.5, 1.5, 1.5).into();
        assert_eq!(kd.count(&r), CountPair::new(100, 40));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_points_rejected() {
        let _ = KdTree::build(vec![Point::new(f64::NAN, 0.0)], BitLabels::zeros(1));
    }
}
