//! Pluggable counting substrates.
//!
//! The paper's audit cost is `O(M · N · Q)` where `Q` is the cost of
//! one spatial range-count query — which makes the index backend the
//! single biggest lever on audit latency. This module turns the
//! backend into a *runtime decision*:
//!
//! * [`CountingSubstrate`] — the capability a scan engine needs from
//!   an index: exact range counts ([`RangeCount`]) *and* member-id
//!   enumeration ([`PointVisit`], used to materialize membership lists
//!   and to recount simulated worlds).
//! * [`IndexBackend`] — a serializable config knob naming a backend.
//! * [`Substrate`] — the runtime-selected backend, dispatching to the
//!   concrete index structures.
//!
//! [`SummedAreaTable`](crate::SummedAreaTable) is deliberately *not* a
//! substrate: it only answers grid-aligned cell ranges and cannot
//! enumerate member ids, so it keeps its specialized role in
//! partition-based pipelines.
//!
//! Every substrate is exact — backends differ in build and query cost
//! only, never in results. The differential proptests in this crate
//! and the cross-backend audit tests in `sfscan` hold them to
//! bit-identical answers.

use crate::{
    BitLabels, BruteForceIndex, CountPair, GridIndex, KdTree, PointVisit, QuadTree, RTree,
    RangeCount,
};
use serde::{Deserialize, Serialize};
use sfgeo::{Point, Region};

/// Everything a scan engine needs from a spatial index: exact range
/// counts plus member-id enumeration.
///
/// Blanket-implemented for every type providing both capabilities, so
/// custom backends participate automatically.
pub trait CountingSubstrate: RangeCount + PointVisit + Send + Sync {}

impl<T: RangeCount + PointVisit + Send + Sync> CountingSubstrate for T {}

/// Config knob selecting a counting backend.
///
/// All backends return bit-identical counts; they differ in build
/// time, memory, and per-query cost. See the crate docs for guidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IndexBackend {
    /// Linear scan per query; no build cost. Best for tiny datasets
    /// and as the differential-testing oracle.
    Brute,
    /// Median-split kd-tree with per-node aggregates (the default:
    /// robust across dataset shapes and region types).
    #[default]
    KdTree,
    /// Region quadtree with aggregate pruning; strong on spatially
    /// clustered data.
    QuadTree,
    /// STR bulk-loaded R-tree, the canonical database spatial index.
    RTree,
    /// Uniform-grid bucketing (CSR layout) with per-cell aggregates;
    /// excels on rectangle queries over uniform-density data.
    Grid,
}

impl IndexBackend {
    /// All selectable backends (used by cross-backend tests and the
    /// comparison benches).
    pub const ALL: [IndexBackend; 5] = [
        IndexBackend::Brute,
        IndexBackend::KdTree,
        IndexBackend::QuadTree,
        IndexBackend::RTree,
        IndexBackend::Grid,
    ];

    /// Stable lowercase name (CLI/bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Brute => "brute",
            IndexBackend::KdTree => "kdtree",
            IndexBackend::QuadTree => "quadtree",
            IndexBackend::RTree => "rtree",
            IndexBackend::Grid => "grid",
        }
    }
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing an [`IndexBackend`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    input: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown index backend {:?}; valid values: ", self.input)?;
        for (i, backend) in IndexBackend::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(backend.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for IndexBackend {
    type Err = ParseBackendError;

    /// Parses the [`Display`](std::fmt::Display) name back (`brute`,
    /// `kdtree`, `quadtree`, `rtree`, `grid`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IndexBackend::ALL
            .into_iter()
            .find(|backend| backend.name() == s.trim())
            .ok_or_else(|| ParseBackendError {
                input: s.to_string(),
            })
    }
}

/// Target mean points per cell for [`IndexBackend::Grid`] (matches the
/// sizing the index benches found competitive across workloads).
pub const GRID_TARGET_PER_CELL: usize = 64;

/// A runtime-selected counting backend.
///
/// Built from an [`IndexBackend`] knob via [`Substrate::build`];
/// dispatches [`RangeCount`] and [`PointVisit`] to the concrete index.
#[derive(Debug, Clone)]
pub enum Substrate {
    /// Brute-force linear scans.
    Brute(BruteForceIndex),
    /// kd-tree.
    KdTree(KdTree),
    /// Quadtree.
    QuadTree(QuadTree),
    /// R-tree.
    RTree(RTree),
    /// Uniform grid.
    Grid(GridIndex),
}

impl Substrate {
    /// Builds the backend named by `backend` over `points`/`labels`.
    pub fn build(backend: IndexBackend, points: Vec<Point>, labels: BitLabels) -> Self {
        match backend {
            IndexBackend::Brute => Substrate::Brute(BruteForceIndex::build(points, labels)),
            IndexBackend::KdTree => Substrate::KdTree(KdTree::build(points, labels)),
            IndexBackend::QuadTree => Substrate::QuadTree(QuadTree::build(points, labels)),
            IndexBackend::RTree => Substrate::RTree(RTree::build(points, labels)),
            IndexBackend::Grid => {
                Substrate::Grid(GridIndex::build_auto(points, labels, GRID_TARGET_PER_CELL))
            }
        }
    }

    /// The knob this substrate was built from.
    pub fn backend(&self) -> IndexBackend {
        match self {
            Substrate::Brute(_) => IndexBackend::Brute,
            Substrate::KdTree(_) => IndexBackend::KdTree,
            Substrate::QuadTree(_) => IndexBackend::QuadTree,
            Substrate::RTree(_) => IndexBackend::RTree,
            Substrate::Grid(_) => IndexBackend::Grid,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Substrate::Brute($inner) => $body,
            Substrate::KdTree($inner) => $body,
            Substrate::QuadTree($inner) => $body,
            Substrate::RTree($inner) => $body,
            Substrate::Grid($inner) => $body,
        }
    };
}

impl RangeCount for Substrate {
    fn len(&self) -> usize {
        dispatch!(self, inner => inner.len())
    }

    fn total(&self) -> CountPair {
        dispatch!(self, inner => inner.total())
    }

    fn count(&self, region: &Region) -> CountPair {
        dispatch!(self, inner => inner.count(region))
    }
}

impl PointVisit for Substrate {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        dispatch!(self, inner => inner.for_each_in(region, visit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Circle, Rect};

    fn dataset(n: usize, seed: u64) -> (Vec<Point>, BitLabels) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)))
            .collect();
        let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.4));
        (points, labels)
    }

    fn regions() -> Vec<Region> {
        vec![
            Rect::from_coords(-8.0, -8.0, 0.0, 8.0).into(),
            Rect::from_coords(-1.0, -1.0, 1.0, 1.0).into(),
            Circle::new(Point::new(2.0, 2.0), 3.0).into(),
            Rect::from_coords(20.0, 20.0, 30.0, 30.0).into(), // empty
        ]
    }

    #[test]
    fn every_backend_is_constructible_and_exact() {
        let (points, labels) = dataset(800, 1);
        let oracle = BruteForceIndex::build(points.clone(), labels.clone());
        for backend in IndexBackend::ALL {
            let substrate = Substrate::build(backend, points.clone(), labels.clone());
            assert_eq!(substrate.backend(), backend);
            assert_eq!(substrate.len(), oracle.len(), "{backend}");
            assert_eq!(substrate.total(), oracle.total(), "{backend}");
            for region in &regions() {
                assert_eq!(substrate.count(region), oracle.count(region), "{backend}");
                assert_eq!(substrate.ids_in(region), oracle.ids_in(region), "{backend}");
            }
        }
    }

    #[test]
    fn substrate_serves_alternate_world_counts() {
        let (points, labels) = dataset(500, 2);
        let n = points.len();
        let world = BitLabels::from_fn(n, |i| i % 3 == 0);
        let oracle = BruteForceIndex::build(points.clone(), labels.clone());
        for backend in IndexBackend::ALL {
            let substrate = Substrate::build(backend, points.clone(), labels.clone());
            for region in &regions() {
                assert_eq!(
                    substrate.count_with(region, &world),
                    oracle.count_with(region, &world),
                    "{backend}"
                );
            }
        }
    }

    #[test]
    fn backend_knob_serializes_by_name() {
        for backend in IndexBackend::ALL {
            let json = serde_json::to_string(&backend).unwrap();
            let back: IndexBackend = serde_json::from_str(&json).unwrap();
            assert_eq!(back, backend);
        }
        assert_eq!(IndexBackend::default(), IndexBackend::KdTree);
        assert_eq!(IndexBackend::Grid.to_string(), "grid");
    }

    #[test]
    fn backend_parse_round_trips() {
        for backend in IndexBackend::ALL {
            let shown = backend.to_string();
            assert_eq!(shown.parse::<IndexBackend>().unwrap(), backend);
        }
        let err = "ball-tree".parse::<IndexBackend>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ball-tree"), "{msg}");
        for backend in IndexBackend::ALL {
            assert!(msg.contains(backend.name()), "{msg} missing {backend}");
        }
    }

    #[test]
    fn empty_dataset_supported() {
        for backend in IndexBackend::ALL {
            let substrate = Substrate::build(backend, Vec::new(), BitLabels::zeros(0));
            assert!(substrate.is_empty(), "{backend}");
            assert_eq!(substrate.count(&regions()[0]), CountPair::default());
        }
    }
}
