//! Brute-force range counting — the correctness oracle.

use crate::{labels::BitLabels, CountPair, PointVisit, RangeCount};
use sfgeo::{Point, Region};

/// Linear-scan index: `O(N)` per query, trivially correct.
///
/// Every other backend in this crate is differential-tested against
/// this one. It is also a legitimate choice for small datasets where
/// build cost dominates.
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    points: Vec<Point>,
    labels: BitLabels,
    positives: u64,
}

impl BruteForceIndex {
    /// Builds the index over `points` with build-time `labels`.
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()`.
    pub fn build(points: Vec<Point>, labels: BitLabels) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "points and labels must have equal length"
        );
        let positives = labels.count_ones();
        BruteForceIndex {
            points,
            labels,
            positives,
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

impl RangeCount for BruteForceIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn total(&self) -> CountPair {
        CountPair {
            n: self.points.len() as u64,
            p: self.positives,
        }
    }

    fn count(&self, region: &Region) -> CountPair {
        let mut n = 0u64;
        let mut p = 0u64;
        for (i, pt) in self.points.iter().enumerate() {
            if region.contains(pt) {
                n += 1;
                p += self.labels.get(i) as u64;
            }
        }
        CountPair { n, p }
    }
}

impl PointVisit for BruteForceIndex {
    fn for_each_in(&self, region: &Region, visit: &mut dyn FnMut(u32)) {
        for (i, pt) in self.points.iter().enumerate() {
            if region.contains(pt) {
                visit(i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgeo::{Circle, Rect};

    fn make() -> BruteForceIndex {
        // 4 points on a line, alternating labels.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let labels = BitLabels::from_bools(&[true, false, true, false]);
        BruteForceIndex::build(pts, labels)
    }

    #[test]
    fn totals() {
        let idx = make();
        assert_eq!(idx.total(), CountPair::new(4, 2));
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn rect_count() {
        let idx = make();
        let r: Region = Rect::from_coords(0.5, -1.0, 2.5, 1.0).into();
        assert_eq!(idx.count(&r), CountPair::new(2, 1));
    }

    #[test]
    fn circle_count() {
        let idx = make();
        let c: Region = Circle::new(Point::new(0.0, 0.0), 1.0).into();
        assert_eq!(idx.count(&c), CountPair::new(2, 1)); // points at 0 and 1
    }

    #[test]
    fn empty_region() {
        let idx = make();
        let r: Region = Rect::from_coords(10.0, 10.0, 11.0, 11.0).into();
        assert_eq!(idx.count(&r), CountPair::default());
    }

    #[test]
    fn whole_space() {
        let idx = make();
        let r: Region = Rect::from_coords(-10.0, -10.0, 10.0, 10.0).into();
        assert_eq!(idx.count(&r), idx.total());
    }

    #[test]
    fn visit_and_count_with_alternate_labels() {
        let idx = make();
        let r: Region = Rect::from_coords(0.5, -1.0, 3.5, 1.0).into();
        assert_eq!(idx.ids_in(&r), vec![1, 2, 3]);
        // Alternate world: all positive.
        let world = BitLabels::from_fn(4, |_| true);
        assert_eq!(idx.count_with(&r, &world), CountPair::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_rejected() {
        let _ = BruteForceIndex::build(vec![Point::ORIGIN], BitLabels::zeros(2));
    }
}
