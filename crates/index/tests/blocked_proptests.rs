//! Property tests pinning blocked counting to the scalar paths.
//!
//! The blocked substrate's contract is bit-identity: for any label
//! set and any valid member list, the masked-popcount sweep must
//! return exactly what the scalar `count_at` gather returns. These
//! tests drive random label sets, adversarial region shapes (empty,
//! single-id, full-span, word-boundary-straddling), label `refill`
//! reuse, and permuted layouts against that contract.

use proptest::prelude::*;
use sfgeo::{Point, Rect, Region};
use sfindex::{
    morton_layout, BitLabels, BlockedBuildError, BlockedMembership, BruteForceIndex, Membership,
};

/// A random sorted/unique id list over `0..n`.
fn arb_id_list(n: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..n as u32, 0..n.min(256)).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

/// Deterministic scalar oracle.
fn scalar(labels: &BitLabels, ids: &[u32]) -> u64 {
    ids.iter().map(|&id| labels.get(id as usize) as u64).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_equals_scalar_on_random_lists(
        lists in prop::collection::vec(arb_id_list(300), 1..12),
        label_bits in prop::collection::vec(any::<bool>(), 300),
    ) {
        let labels = BitLabels::from_bools(&label_bits);
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), 300).unwrap();
        for (r, ids) in lists.iter().enumerate() {
            prop_assert_eq!(blocked.count(r, &labels), scalar(&labels, ids));
            prop_assert_eq!(blocked.count(r, &labels), labels.count_at(ids));
            prop_assert_eq!(blocked.n_of(r), ids.len() as u64);
        }
    }

    #[test]
    fn blocked_equals_scalar_after_refill(
        lists in prop::collection::vec(arb_id_list(200), 1..6),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), 200).unwrap();
        let mut labels = BitLabels::from_fn(200, |i| (seed_a >> (i % 64)) & 1 == 1);
        for (r, ids) in lists.iter().enumerate() {
            prop_assert_eq!(blocked.count(r, &labels), labels.count_at(ids));
        }
        // Reusing the allocation must not leak stale bits into counts.
        labels.refill(|i| (seed_b >> (i % 64)) & 1 == 1);
        for (r, ids) in lists.iter().enumerate() {
            prop_assert_eq!(blocked.count(r, &labels), labels.count_at(ids));
        }
    }

    #[test]
    fn layout_compilation_preserves_counts(
        rows in prop::collection::vec(((0.0..8.0f64), (0.0..8.0f64), any::<bool>()), 30..200),
        rx in 0.0..6.0f64,
        ry in 0.0..6.0f64,
        half in 0.3..3.0f64,
    ) {
        let points: Vec<Point> = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
        let bools: Vec<bool> = rows.iter().map(|&(_, _, l)| l).collect();
        let n = points.len();
        let idx = BruteForceIndex::build(points.clone(), BitLabels::from_bools(&bools));
        let regions: Vec<Region> = vec![
            Rect::square(Point::new(rx, ry), half).into(),
            Rect::from_coords(-1.0, -1.0, 9.0, 9.0).into(), // full span
            Rect::from_coords(50.0, 50.0, 51.0, 51.0).into(), // empty
        ];
        let membership = Membership::build(&idx, n, &regions);
        let flat = BlockedMembership::compile(&membership).unwrap();
        let morton = BlockedMembership::compile_with_layout(
            &membership,
            morton_layout(&points),
        ).unwrap();
        let world = BitLabels::from_bools(&bools);
        let layout_world = morton.layout_labels(&bools);
        for r in 0..membership.num_regions() {
            let expected = membership.count(r, &world).p;
            prop_assert_eq!(flat.count(r, &world), expected, "flat, region {}", r);
            prop_assert_eq!(morton.count(r, &layout_world), expected, "morton, region {}", r);
        }
    }
}

#[test]
fn adversarial_shapes_match_scalar() {
    // Shapes chosen to stress every run kind: empty, single-id,
    // full-span (dense ranges), word-boundary straddles, exact word
    // edges, and the 0/63/64 corners.
    let n = 384; // 6 words exactly
    let shapes: Vec<Vec<u32>> = vec![
        vec![],
        vec![0],
        vec![63],
        vec![64],
        vec![383],
        (0..n as u32).collect(),
        (60..70).collect(),
        (63..=64).collect(),
        (0..64).collect(),
        (64..192).collect(),
        (1..n as u32).step_by(2).collect(),
        vec![0, 63, 64, 127, 128, 191, 192, 255, 256, 319, 320, 383],
    ];
    let refs: Vec<&[u32]> = shapes.iter().map(|l| l.as_slice()).collect();
    let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
    let mut labels = BitLabels::zeros(n);
    for round in 0..4u64 {
        labels.refill(|i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ round)
                .is_multiple_of(3)
        });
        for (r, ids) in shapes.iter().enumerate() {
            assert_eq!(
                blocked.count(r, &labels),
                labels.count_at(ids),
                "shape {r}, round {round}"
            );
        }
    }
}

#[test]
fn invalid_lists_are_rejected_not_miscounted() {
    type ErrorPredicate = fn(&BlockedBuildError) -> bool;
    let cases: Vec<(Vec<u32>, ErrorPredicate)> = vec![
        (vec![4, 2], |e| {
            matches!(e, BlockedBuildError::UnsortedIds { .. })
        }),
        (vec![2, 2], |e| {
            matches!(e, BlockedBuildError::DuplicateId { .. })
        }),
        (vec![9, 10], |e| {
            matches!(e, BlockedBuildError::IdOutOfRange { .. })
        }),
    ];
    for (list, matches) in cases {
        let err = BlockedMembership::from_lists([list.as_slice()].into_iter(), 10)
            .expect_err("invalid list must not compile");
        assert!(matches(&err), "{list:?} -> {err}");
    }
}
