//! Shard-boundary property tests for the clipped blocked-membership
//! views.
//!
//! The sharding contract is exact partition: `shard_word_bounds` must
//! tile the label-word axis into contiguous, non-overlapping windows,
//! and the per-shard `clip_to_words` views' counts must sum to the
//! unsharded count for every region and every label set — including
//! the awkward geometries: point counts that are not 64-aligned,
//! shards that own no member of a region, shards owning a single
//! point, and regions spanning one, many, or all shards.

use proptest::prelude::*;
use sfindex::{shard_word_bounds, BitLabels, BlockedMembership};

/// A random sorted/unique id list over `0..n`.
fn arb_id_list(n: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..n as u32, 0..n.min(256)).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

/// Per-shard partial counts summed back together.
fn sharded_counts(blocked: &BlockedMembership, shards: usize, labels: &BitLabels) -> Vec<u64> {
    let bounds = shard_word_bounds(blocked.num_label_words(), shards);
    let mut totals = vec![0u64; blocked.num_regions()];
    let mut partial = Vec::new();
    for &(lo, hi) in &bounds {
        blocked
            .clip_to_words(lo, hi)
            .count_all_into(labels, &mut partial);
        for (total, p) in totals.iter_mut().zip(&partial) {
            *total += p;
        }
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shard_word_bounds` is an exact contiguous partition of the
    /// word axis for every `(num_words, shards)` — no gaps, no
    /// overlap, no empty window while `shards <= num_words`.
    #[test]
    fn shard_bounds_partition_the_word_axis(
        num_words in 1usize..200,
        shards in 1usize..32,
    ) {
        let shards = shards.min(num_words);
        let bounds = shard_word_bounds(num_words, shards);
        prop_assert_eq!(bounds.len(), shards);
        prop_assert_eq!(bounds[0].0, 0);
        prop_assert_eq!(bounds[shards - 1].1, num_words);
        for w in bounds.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "gap or overlap at {:?}", w);
        }
        for &(lo, hi) in &bounds {
            prop_assert!(hi > lo, "empty shard ({lo}, {hi})");
            // The even split never lets two shards differ by more
            // than one word.
            prop_assert!(hi - lo <= num_words / shards + 1);
        }
    }

    /// For random member lists and labels, the per-shard partials sum
    /// to the unsharded count for EVERY shard count — including
    /// non-64-aligned point counts (n is drawn freely, so tail words
    /// are partial almost always).
    #[test]
    fn shard_partials_sum_to_unsharded_counts(
        n in 65usize..400,
        seed in any::<u64>(),
        lists in prop::collection::vec(arb_id_list(380), 1..10),
    ) {
        let lists: Vec<Vec<u32>> = lists
            .into_iter()
            .map(|ids| ids.into_iter().filter(|&id| (id as usize) < n).collect())
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
        let labels = BitLabels::from_fn(n, |i| {
            (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed).is_multiple_of(3)
        });
        let mut unsharded = Vec::new();
        blocked.count_all_into(&labels, &mut unsharded);
        for shards in [1, 2, 3, 5, blocked.num_label_words()] {
            let totals = sharded_counts(&blocked, shards, &labels);
            prop_assert_eq!(&totals, &unsharded, "shards = {}", shards);
        }
    }

    /// A region confined to one shard is counted entirely by that
    /// shard's view; every other shard's partial is zero.
    #[test]
    fn foreign_shards_count_nothing(
        word in 0usize..6,
        seed in any::<u64>(),
    ) {
        let n = 384; // 6 words exactly, one region per word
        let lists: Vec<Vec<u32>> = (0..6)
            .map(|w| (w as u32 * 64..(w as u32 + 1) * 64).collect())
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
        let labels = BitLabels::from_fn(n, |i| (seed >> (i % 64)) & 1 == 1);
        for (s, &(lo, hi)) in shard_word_bounds(6, 6).iter().enumerate() {
            let view = blocked.clip_to_words(lo, hi);
            let expected = if s == word { blocked.count(word, &labels) } else { 0 };
            prop_assert_eq!(view.count(word, &labels), expected, "shard {}", s);
        }
    }
}

#[test]
fn adversarial_shard_geometries_sum_exactly() {
    // Region shapes chosen to stress the clip boundaries: empty,
    // single-id at word edges, dense full-span, straddles of every
    // shard boundary a 3-way split of 5 words produces, and a sparse
    // comb touching every word. n = 290 leaves a 34-bit tail word.
    let n = 290;
    let shapes: Vec<Vec<u32>> = vec![
        vec![],
        vec![0],
        vec![63],
        vec![64],
        vec![127],
        vec![128],
        vec![289],
        (0..n as u32).collect(),
        (60..70).collect(),
        (120..140).collect(),
        (250..=289).collect(),
        (0..n as u32).step_by(7).collect(),
    ];
    let refs: Vec<&[u32]> = shapes.iter().map(|l| l.as_slice()).collect();
    let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
    let mut labels = BitLabels::zeros(n);
    for round in 0..4u64 {
        labels.refill(|i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ round)
                .is_multiple_of(3)
        });
        let mut unsharded = Vec::new();
        blocked.count_all_into(&labels, &mut unsharded);
        for shards in 1..=blocked.num_label_words() {
            assert_eq!(
                sharded_counts(&blocked, shards, &labels),
                unsharded,
                "{shards} shards, round {round}"
            );
        }
    }
}

#[test]
fn single_point_and_single_word_shards() {
    // One point (one partial word) still shards: the only legal split
    // is one shard owning everything.
    let blocked = BlockedMembership::from_lists([[0u32].as_slice()].into_iter(), 1).unwrap();
    assert_eq!(blocked.num_label_words(), 1);
    let bounds = shard_word_bounds(1, 1);
    assert_eq!(bounds, vec![(0, 1)]);
    let labels = BitLabels::from_bools(&[true]);
    assert_eq!(blocked.clip_to_words(0, 1).count(0, &labels), 1);
    // An empty clip window is a valid view that counts nothing.
    assert_eq!(blocked.clip_to_words(0, 0).count(0, &labels), 0);
    assert_eq!(blocked.clip_to_words(1, 1).count(0, &labels), 0);
}
