//! Kernel-equivalence property tests: every supported counting kernel
//! must produce the pinned scalar loop's *exact* integer counts —
//! counts are exact, so equivalence is equality, never tolerance.
//!
//! The geometries are chosen adversarially for SIMD popcount paths:
//! empty member lists, full-span lists (maximal dense ranges),
//! non-64-aligned label tails (partial last words), single-word shard
//! views (clips that degenerate every range), and dense vs sparse
//! label sets (Harley–Seal's carry-save cascade must not care). The
//! fused multi-world sweep is held to the same standard against the
//! per-world path, batch by batch, on clipped views too.

use proptest::prelude::*;
use sfindex::{shard_word_bounds, BitLabels, BlockedMembership, CountingKernel, MAX_FUSED_WORLDS};

/// Every kernel this CPU can actually run (Scalar and Portable
/// always; AVX2/AVX-512 when detected).
fn supported_kernels() -> Vec<CountingKernel> {
    CountingKernel::ALL
        .into_iter()
        .filter(|k| k.is_supported())
        .collect()
}

/// A member-list suite over `0..n` that always includes the
/// adversarial extremes alongside random lists: the empty region, the
/// full-span region (one maximal dense range), and a last-id region
/// (a single-bit mask in the unaligned tail word).
fn arb_lists(n: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..n as u32, 0..n.min(192)), 1..6).prop_map(
        move |mut lists| {
            for ids in &mut lists {
                ids.sort_unstable();
                ids.dedup();
            }
            lists.push(Vec::new());
            lists.push((0..n as u32).collect());
            lists.push(vec![(n - 1) as u32]);
            lists
        },
    )
}

/// Labels of tunable density — `density` near 0 exercises sparse
/// worlds, near 1 dense ones (both sides of the popcount cascade).
fn arb_labels(n: usize, density: f64) -> impl Strategy<Value = BitLabels> {
    let density = density.clamp(0.05, 0.95);
    prop::collection::vec(0.0..1.0f64, n).prop_map(move |draws| {
        let bits: Vec<bool> = draws.iter().map(|&v| v < density).collect();
        BitLabels::from_bools(&bits)
    })
}

/// One complete counting scenario: a label length straddling word
/// boundaries (rarely a multiple of 64 → partial tail words), a
/// member-list suite with the adversarial extremes, and one world.
fn arb_case() -> impl Strategy<Value = (Vec<Vec<u32>>, BitLabels)> {
    (65usize..1200, 0.0..1.0f64)
        .prop_flat_map(|(n, density)| (arb_lists(n), arb_labels(n, density)))
}

/// A scenario with a whole batch of worlds of mixed densities —
/// below, at, and above [`MAX_FUSED_WORLDS`] wide.
fn arb_batch_case() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<BitLabels>)> {
    (65usize..900, 1usize..(2 * MAX_FUSED_WORLDS + 2)).prop_flat_map(|(n, w)| {
        (
            arb_lists(n),
            prop::collection::vec((0.02..0.98f64).prop_flat_map(move |d| arb_labels(n, d)), w),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-region counts: every kernel equals the pinned scalar loop
    /// on every region, single-region and whole-matrix entry points
    /// alike.
    #[test]
    fn kernels_equal_the_scalar_reference((lists, labels) in arb_case()) {
        let n = labels.len();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
        for kernel in supported_kernels() {
            for r in 0..lists.len() {
                prop_assert_eq!(
                    blocked.count_with(r, &labels, kernel),
                    blocked.count(r, &labels),
                    "kernel {} diverged on region {} (n={})",
                    kernel, r, n
                );
            }
            let mut all = Vec::new();
            blocked.count_all_into_with(&labels, kernel, &mut all);
            for (r, &counted) in all.iter().enumerate() {
                prop_assert_eq!(counted, blocked.count(r, &labels));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused multi-world counting: for every batch width and every
    /// kernel, the fused sweep equals W independent per-world counts.
    #[test]
    fn fused_sweeps_equal_per_world_counts((lists, worlds) in arb_batch_case()) {
        let n = worlds[0].len();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
        let world_refs: Vec<&BitLabels> = worlds.iter().collect();
        for kernel in supported_kernels() {
            let mut fused = vec![0u64; world_refs.len()];
            for r in 0..lists.len() {
                blocked.count_many_into(r, &world_refs, kernel, &mut fused);
                for (w, world) in world_refs.iter().enumerate() {
                    prop_assert_eq!(
                        fused[w],
                        blocked.count(r, world),
                        "kernel {} fused count diverged: region {}, world {}",
                        kernel, r, w
                    );
                }
            }
            let mut matrix = Vec::new();
            blocked.count_all_many_into(&world_refs, kernel, &mut matrix);
            for r in 0..lists.len() {
                for (w, world) in world_refs.iter().enumerate() {
                    prop_assert_eq!(matrix[r * world_refs.len() + w], blocked.count(r, world));
                }
            }
        }
    }

    /// Clipped shard views: per-shard partials summed in shard order
    /// equal the unsharded count for every kernel and every shard
    /// granularity, down to single-word shards (every dense range
    /// degenerates to at most one word per view — the hardest case
    /// for a kernel that wants long runs). The fused sweep is held to
    /// the same sum on the same views.
    #[test]
    fn clipped_views_sum_to_unsharded_counts((lists, labels) in arb_case()) {
        let n = labels.len();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let blocked = BlockedMembership::from_lists(refs.iter().copied(), n).unwrap();
        let num_words = blocked.num_label_words();
        // 1 = unsharded, 3 = coarse, num_words = single-word shards.
        for k in [1usize, 3, num_words] {
            let views: Vec<BlockedMembership> = shard_word_bounds(num_words, k)
                .into_iter()
                .map(|(lo, hi)| blocked.clip_to_words(lo, hi))
                .collect();
            for kernel in supported_kernels() {
                for r in 0..lists.len() {
                    let total: u64 = views
                        .iter()
                        .map(|v| v.count_with(r, &labels, kernel))
                        .sum();
                    prop_assert_eq!(
                        total,
                        blocked.count(r, &labels),
                        "kernel {} sharded sum diverged: region {}, {} shards",
                        kernel, r, k
                    );
                }
                // Fused across the same views.
                let world_refs = [&labels, &labels];
                let mut matrix = Vec::new();
                let mut totals = vec![0u64; lists.len() * world_refs.len()];
                for view in &views {
                    view.count_all_many_into(&world_refs, kernel, &mut matrix);
                    for (acc, &c) in totals.iter_mut().zip(&matrix) {
                        *acc += c;
                    }
                }
                for r in 0..lists.len() {
                    for w in 0..world_refs.len() {
                        prop_assert_eq!(
                            totals[r * world_refs.len() + w],
                            blocked.count(r, &labels)
                        );
                    }
                }
            }
        }
    }
}

/// The explicit single-word-shard tail case, pinned without
/// randomness: 129 labels = two full words plus a one-bit tail word.
#[test]
fn single_word_shards_cover_the_unaligned_tail() {
    let n = 129usize;
    let ids: Vec<u32> = (0..n as u32).collect();
    let blocked = BlockedMembership::from_lists([ids.as_slice()].into_iter(), n).unwrap();
    let labels = BitLabels::from_fn(n, |i| i % 3 == 0);
    assert_eq!(blocked.num_label_words(), 3);
    for kernel in supported_kernels() {
        let total: u64 = (0..3)
            .map(|w| {
                blocked
                    .clip_to_words(w, w + 1)
                    .count_with(0, &labels, kernel)
            })
            .sum();
        assert_eq!(total, blocked.count(0, &labels), "kernel {kernel}");
        assert_eq!(total, labels.count_ones(), "kernel {kernel}");
    }
}
