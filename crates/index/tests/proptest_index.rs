//! Differential property tests: every index backend must agree with
//! the brute-force oracle on arbitrary data and regions.

use proptest::prelude::*;
use sfgeo::{Circle, ConvexPolygon, Point, Rect, Region};
use sfindex::{
    BitLabels, BruteForceIndex, GridIndex, KdTree, Membership, PointVisit, QuadTree, RTree,
    RangeCount,
};

fn arb_dataset() -> impl Strategy<Value = (Vec<Point>, Vec<bool>)> {
    prop::collection::vec(((-50.0..50.0f64), (-50.0..50.0f64), any::<bool>()), 0..300).prop_map(
        |rows| {
            let points = rows.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
            let labels = rows.iter().map(|&(_, _, l)| l).collect();
            (points, labels)
        },
    )
}

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        (
            (-60.0..60.0f64),
            (-60.0..60.0f64),
            (-60.0..60.0f64),
            (-60.0..60.0f64)
        )
            .prop_map(|(a, b, c, d)| Region::Rect(Rect::from_coords(a, b, c, d))),
        ((-60.0..60.0f64), (-60.0..60.0f64), (0.0..80.0f64))
            .prop_map(|(x, y, r)| Region::Circle(Circle::new(Point::new(x, y), r))),
        // Regular convex polygons (always valid) of 3..10 vertices.
        (
            (-60.0..60.0f64),
            (-60.0..60.0f64),
            (0.1..80.0f64),
            3usize..10
        )
            .prop_map(|(x, y, r, n)| Region::Polygon(ConvexPolygon::regular(
                Point::new(x, y),
                r,
                n
            )),),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_backends_agree_with_brute_force(
        (points, labels) in arb_dataset(),
        regions in prop::collection::vec(arb_region(), 1..8),
    ) {
        let bits = BitLabels::from_bools(&labels);
        let brute = BruteForceIndex::build(points.clone(), bits.clone());
        let kd = KdTree::build(points.clone(), bits.clone());
        let qt = QuadTree::build(points.clone(), bits.clone());
        let gi = GridIndex::build_auto(points.clone(), bits.clone(), 16);
        let rt = RTree::build(points.clone(), bits.clone());

        prop_assert_eq!(kd.total(), brute.total());
        prop_assert_eq!(qt.total(), brute.total());
        prop_assert_eq!(gi.total(), brute.total());
        prop_assert_eq!(rt.total(), brute.total());

        for region in &regions {
            let expected = brute.count(region);
            prop_assert_eq!(kd.count(region), expected, "kd mismatch for {}", region);
            prop_assert_eq!(qt.count(region), expected, "quad mismatch for {}", region);
            prop_assert_eq!(gi.count(region), expected, "grid mismatch for {}", region);
            prop_assert_eq!(rt.count(region), expected, "rtree mismatch for {}", region);

            let expected_ids = brute.ids_in(region);
            prop_assert_eq!(kd.ids_in(region), expected_ids.clone());
            prop_assert_eq!(qt.ids_in(region), expected_ids.clone());
            prop_assert_eq!(gi.ids_in(region), expected_ids.clone());
            prop_assert_eq!(rt.ids_in(region), expected_ids);
        }
    }

    #[test]
    fn membership_counts_agree_with_requery_under_new_labels(
        (points, labels) in arb_dataset(),
        regions in prop::collection::vec(arb_region(), 1..6),
        world in prop::collection::vec(any::<bool>(), 300),
    ) {
        let n = points.len();
        let bits = BitLabels::from_bools(&labels);
        let kd = KdTree::build(points.clone(), bits);
        let mem = Membership::build(&kd, n, &regions);
        let world_bits = BitLabels::from_bools(&world[..n]);
        for (r, region) in regions.iter().enumerate() {
            let by_mem = mem.count(r, &world_bits);
            let by_query = kd.count_with(region, &world_bits);
            prop_assert_eq!(by_mem, by_query);
        }
    }

    #[test]
    fn count_is_monotone_in_region_growth(
        (points, labels) in arb_dataset(),
        cx in -50.0..50.0f64,
        cy in -50.0..50.0f64,
        s1 in 0.0..40.0f64,
        s2 in 0.0..40.0f64,
    ) {
        let bits = BitLabels::from_bools(&labels);
        let kd = KdTree::build(points, bits);
        let (small, large) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let a = kd.count(&Rect::square(Point::new(cx, cy), small).into());
        let b = kd.count(&Rect::square(Point::new(cx, cy), large).into());
        prop_assert!(a.n <= b.n);
        prop_assert!(a.p <= b.p);
    }
}
