//! `serve`: the JSONL reference transport over one [`AuditService`].
//!
//! Reads [`RequestEnvelope`] lines (`{"handle": 0, "request": {…}}`)
//! from `--input <path>` (or stdin), routes them through a service
//! hosting the synthetic benchmark dataset, and writes exactly one
//! [`ResponseEnvelope`] line per input line to stdout, in input order:
//!
//! ```text
//! {"ticket": 0, "status": "ready", "report": {…}, "error": null}
//! {"ticket": null, "status": "rejected", "report": null, "error": "…"}
//! ```
//!
//! Stdout is *pure* JSONL (all narration goes to stderr), so the
//! output pipes straight into `jq`/`grep`-style consumers — the CI
//! smoke step does exactly that. Handles are assigned `0, 1, …` in
//! registration order; this harness registers one dataset, so request
//! lines address `"handle": 0` (announced on stderr).
//!
//! `--max-pending N` switches the drain policy from manual
//! (everything executes in one batch at EOF) to
//! [`DrainPolicy::MaxPending`], so batches execute mid-stream exactly
//! as a long-running deployment's would. Either way every accepted
//! ticket is ready once the final flush runs, and repeated request
//! lines are answered from the session's world cache (the closing
//! stderr summary prints the `ServerStats` line with the cache
//! counters).

use crate::common::Options;
use sfdata::synth::SynthConfig;
use sfscan::{AuditConfig, RegionSet};
use sfserve::{AuditService, DrainPolicy, ResponseEnvelope, Ticket};
use std::io::{BufRead, Write};

/// One input line's fate: a ticket to poll at the end, or an
/// immediate rejection message.
type LineOutcome = Result<Ticket, String>;

/// Runs the JSONL serving loop.
pub fn run(opts: &Options) {
    // Unlike the figure harnesses, all narration goes to stderr:
    // stdout carries nothing but response envelopes.
    eprintln!("[serve] JSONL request/response envelopes over one AuditService");

    let n = if opts.quick { 2_000 } else { 20_000 };
    let outcomes = SynthConfig {
        per_half: n / 2,
        ..SynthConfig::paper()
    }
    .generate(opts.seed);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(opts.seed),
    );

    let mut service = match opts.max_pending {
        Some(limit) => AuditService::new().with_policy(DrainPolicy::MaxPending(limit)),
        None => AuditService::new(),
    };
    let handle = service
        .register(&outcomes, &regions, base)
        .expect("the synthetic benchmark dataset is auditable");
    eprintln!(
        "[serve] registered {} points x {} regions as handle {} \
         (request lines use \"handle\": {})",
        outcomes.len(),
        regions.len(),
        handle.0,
        handle.0
    );

    let outcomes_per_line = match &opts.input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .unwrap_or_else(|e| panic!("cannot open --input {path}: {e}"));
            read_lines(std::io::BufReader::new(file), &mut service)
        }
        None => {
            eprintln!("[serve] reading JSONL requests from stdin");
            let stdin = std::io::stdin();
            let lock = stdin.lock();
            read_lines(lock, &mut service)
        }
    };

    // EOF: execute whatever the policy left queued, then answer every
    // line in input order.
    service.flush();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    for outcome in &outcomes_per_line {
        let envelope = match outcome {
            Ok(ticket) => {
                let wants_geojson = service.geojson_requested(*ticket);
                // take() claims the response outright — no
                // poll-then-take double clone of the embedded
                // simulated distribution.
                let envelope = match service.take(*ticket) {
                    Some(response) => {
                        served += 1;
                        ResponseEnvelope::ready(response)
                    }
                    None => ResponseEnvelope::from_status(*ticket, service.poll(*ticket)),
                };
                if wants_geojson {
                    envelope.with_geojson_findings()
                } else {
                    envelope
                }
            }
            Err(message) => ResponseEnvelope {
                ticket: None,
                status: sfserve::WireStatus::Rejected,
                report: None,
                error: Some(message.clone()),
                geojson: None,
            },
        };
        writeln!(out, "{}", envelope.to_json()).expect("stdout is writable");
    }
    out.flush().expect("stdout is writable");
    eprintln!(
        "[serve] {} lines in, {} served, {} rejected; {}",
        outcomes_per_line.len(),
        served,
        outcomes_per_line.len() - served,
        service.stats()
    );
}

/// Feeds every input line to the service, recording each line's fate.
fn read_lines(reader: impl BufRead, service: &mut AuditService) -> Vec<LineOutcome> {
    let mut outcomes = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| panic!("cannot read request line {}: {e}", i + 1));
        if line.trim().is_empty() {
            continue;
        }
        outcomes.push(match service.submit_json(&line) {
            Ok(ticket) => Ok(ticket),
            Err(e) => {
                eprintln!("[serve] line {}: rejected: {e}", i + 1);
                Err(e.to_string())
            }
        });
    }
    outcomes
}
