//! `serve`: the JSONL transport over one audit service — in-process,
//! listening, or connecting.
//!
//! The default mode reads [`RequestEnvelope`] lines
//! (`{"handle": 0, "request": {…}}`) from `--input <path>` (or
//! stdin), routes them through an [`AuditService`] hosting the
//! synthetic benchmark dataset, and writes exactly one
//! [`ResponseEnvelope`] line per input line to stdout, in input order:
//!
//! ```text
//! {"ticket": 0, "status": "ready", "report": {…}, "error": null}
//! {"ticket": null, "status": "rejected", "report": null, "error": "…", "code": "…"}
//! ```
//!
//! Stdout is *pure* JSONL (all narration goes to stderr), so the
//! output pipes straight into `jq`/`grep`-style consumers — the CI
//! smoke step does exactly that. Handles are assigned `0, 1, …` in
//! registration order; this harness registers one dataset, so request
//! lines address `"handle": 0` (announced on stderr).
//!
//! `--max-pending N` switches the drain policy from manual
//! (everything executes in one batch at EOF) to
//! [`DrainPolicy::MaxPending`], so batches execute mid-stream exactly
//! as a long-running deployment's would. Either way every accepted
//! ticket is ready once the final flush runs, and repeated request
//! lines are answered from the session's world cache (the closing
//! stderr summary prints the `ServerStats` line with the cache
//! counters).
//!
//! `--listen <addr>` hosts the same dataset behind the `sfnet` TCP
//! server instead: newline-delimited envelopes over the socket, a
//! worker pool (`--net-workers`), per-session backpressure
//! (`--queue-capacity` → `"busy"` envelopes), and wall-clock deadline
//! drains (`--deadline-ms`, driven by the timer thread). SIGINT stops
//! accepting, drains every accepted ticket, and prints the final
//! stats line to stderr. A connection's response transcript is
//! byte-identical to the default mode's stdout for the same lines.
//!
//! `--connect <addr>` is the matching client: it streams stdin (or
//! `--input`) lines to the socket, half-closes, and prints the
//! server's response lines to stdout — so
//! `serve --connect` composes with `diff` against `serve` exactly the
//! way CI's TCP smoke leg uses it.

use crate::common::Options;
use sfcluster::{CoordinatorConfig, DistributedEvaluator, FaultPlan, ShardWorker, SpanCounter};
use sfdata::synth::SynthConfig;
use sfnet::{AuditTcpServer, ExecutorConfig, NetExecutor, SystemClock};
use sfscan::outcomes::SpatialOutcomes;
use sfscan::prepared::{PreparedAudit, WorldEvaluator};
use sfscan::{AuditConfig, CountingStrategy, RegionSet};
use sfserve::{AuditService, DrainPolicy, ResponseEnvelope, SubmitError, Ticket};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One input line's fate: a ticket to poll at the end, an immediate
/// typed rejection (rendered as a `"rejected"`/`"busy"` envelope with
/// its [`sfserve::ErrorCode`]), or a `{"stats": true}` metrics probe
/// (answered at render time, after the EOF flush, so the snapshot
/// covers every batch the transcript executed).
enum LineOutcome {
    Submitted(Ticket),
    Rejected(SubmitError),
    Stats,
}

/// The benchmark dataset every serve mode hosts (deterministic in
/// `--seed`/`--quick`, so server and reference transcripts agree).
pub(crate) fn dataset(opts: &Options) -> (SpatialOutcomes, RegionSet, AuditConfig) {
    let n = if opts.quick { 2_000 } else { 20_000 };
    let outcomes = SynthConfig {
        per_half: n / 2,
        ..SynthConfig::paper()
    }
    .generate(opts.seed);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(opts.seed),
    );
    (outcomes, regions, base)
}

/// Dispatches on the serve mode flags.
pub fn run(opts: &Options) {
    if let Some(addr) = &opts.shard_worker {
        run_shard_worker(opts, addr);
    } else if let Some(addr) = &opts.connect {
        run_client(opts, addr);
    } else if let Some(addr) = &opts.listen {
        run_server(opts, addr);
    } else {
        run_inprocess(opts);
    }
}

/// Runs the in-process JSONL serving loop (the reference transcript).
/// With `--coordinator`, world evaluation for every batch routes
/// through the distributed shard coordinator instead of the local
/// engine — the transcript is bit-identical either way.
fn run_inprocess(opts: &Options) {
    // Unlike the figure harnesses, all narration goes to stderr:
    // stdout carries nothing but response envelopes.
    eprintln!("[serve] JSONL request/response envelopes over one AuditService");

    let (outcomes, regions, mut base) = dataset(opts);
    if opts.coordinator.is_some() {
        // The coordinator reduces blocked count partials; the span
        // counter refuses any other counting strategy.
        base = base.with_strategy(CountingStrategy::Blocked);
    }

    let mut service = match opts.max_pending {
        Some(limit) => AuditService::new().with_policy(DrainPolicy::MaxPending(limit)),
        None => AuditService::new(),
    };
    let evaluator = opts.coordinator.as_ref().map(|spec| {
        let addrs: Vec<String> = spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let prepared = Arc::new(
            PreparedAudit::prepare(&outcomes, &regions, base)
                .expect("the synthetic benchmark dataset is auditable"),
        );
        let config = CoordinatorConfig {
            dispatch_timeout: opts.dispatch_timeout_ms.saturating_mul(1_000), // clock runs in µs
            ..CoordinatorConfig::default()
        };
        let evaluator = Arc::new(
            DistributedEvaluator::new(prepared, &addrs, config, Arc::new(SystemClock::new()))
                .unwrap_or_else(|e| panic!("--coordinator: {e}")),
        );
        eprintln!(
            "[serve] coordinator over {} worker(s), shard windows {:?}, \
             dispatch timeout {}ms",
            addrs.len(),
            evaluator.shard_bounds(),
            opts.dispatch_timeout_ms
        );
        service.set_evaluator(Some(evaluator.clone() as Arc<dyn WorldEvaluator>));
        evaluator
    });
    let handle = service
        .register(&outcomes, &regions, base)
        .expect("the synthetic benchmark dataset is auditable");
    eprintln!(
        "[serve] registered {} points x {} regions as handle {} \
         (request lines use \"handle\": {})",
        outcomes.len(),
        regions.len(),
        handle.0,
        handle.0
    );

    let outcomes_per_line = match &opts.input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .unwrap_or_else(|e| panic!("cannot open --input {path}: {e}"));
            read_lines(std::io::BufReader::new(file), &mut service)
        }
        None => {
            eprintln!("[serve] reading JSONL requests from stdin");
            let stdin = std::io::stdin();
            let lock = stdin.lock();
            read_lines(lock, &mut service)
        }
    };

    // EOF: execute whatever the policy left queued, then answer every
    // line in input order.
    service.flush();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    let mut rejected = 0usize;
    for outcome in &outcomes_per_line {
        let envelope = match outcome {
            LineOutcome::Submitted(ticket) => {
                let wants_geojson = service.geojson_requested(*ticket);
                // take() claims the response outright — no
                // poll-then-take double clone of the embedded
                // simulated distribution.
                let envelope = match service.take(*ticket) {
                    Some(response) => {
                        served += 1;
                        ResponseEnvelope::ready(response)
                    }
                    None => ResponseEnvelope::from_status(*ticket, service.poll(*ticket)),
                };
                if wants_geojson {
                    envelope.with_geojson_findings()
                } else {
                    envelope
                }
            }
            LineOutcome::Rejected(error) => {
                rejected += 1;
                ResponseEnvelope::rejected(error)
            }
            LineOutcome::Stats => {
                ResponseEnvelope::stats_snapshot(*service.stats(), service.cache_stats_total())
            }
        };
        writeln!(out, "{}", envelope.to_json()).expect("stdout is writable");
    }
    out.flush().expect("stdout is writable");
    eprintln!(
        "[serve] {} lines in, {} served, {} rejected; {}",
        outcomes_per_line.len(),
        served,
        rejected,
        service.stats()
    );
    if let Some(evaluator) = evaluator {
        let stats = evaluator.stats();
        eprintln!(
            "[serve] cluster: {} | health {:?}",
            serde_json::to_string(&stats).expect("cluster stats serialise"),
            (0..evaluator.shard_bounds().len())
                .map(|w| evaluator.worker_health(w))
                .collect::<Vec<_>>()
        );
    }
}

/// Feeds every input line to the service, recording each line's fate.
fn read_lines(reader: impl BufRead, service: &mut AuditService) -> Vec<LineOutcome> {
    let mut outcomes = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| panic!("cannot read request line {}: {e}", i + 1));
        if line.trim().is_empty() {
            continue;
        }
        if sfserve::is_stats_request(line.trim()) {
            outcomes.push(LineOutcome::Stats);
            continue;
        }
        outcomes.push(match service.submit_json(&line) {
            Ok(ticket) => LineOutcome::Submitted(ticket),
            Err(e) => {
                eprintln!("[serve] line {}: rejected: {e}", i + 1);
                LineOutcome::Rejected(e)
            }
        });
    }
    outcomes
}

/// Set by the SIGINT handler; polled by the `--listen` wait loop.
static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    // The only async-signal-safe thing worth doing: flip the flag.
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler via the raw libc `signal` symbol — no
/// vendored signal crate, and an atomic store is async-signal-safe.
#[cfg(unix)]
fn install_sigint() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NUM: i32 = 2;
    unsafe {
        signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint() {
    // No portable handler: Ctrl-C terminates the process, the OS
    // reclaims the socket. Graceful drain needs unix.
}

/// Hosts the benchmark dataset behind the `sfnet` TCP server until
/// SIGINT, then shuts down gracefully (drain everything, answer every
/// accepted ticket, print final stats).
fn run_server(opts: &Options, addr: &str) {
    let (outcomes, regions, base) = dataset(opts);
    let policy = match (opts.deadline_ms, opts.max_pending) {
        (Some(ms), _) => DrainPolicy::Deadline(ms.saturating_mul(1_000)), // clock runs in µs
        (None, Some(limit)) => DrainPolicy::MaxPending(limit),
        (None, None) => DrainPolicy::Manual,
    };
    let executor = Arc::new(NetExecutor::new(
        ExecutorConfig {
            workers: opts.net_workers.max(1),
            queue_capacity: opts.queue_capacity,
            policy,
        },
        Arc::new(SystemClock::new()),
    ));
    let handle = executor
        .register(&outcomes, &regions, base)
        .expect("the synthetic benchmark dataset is auditable");
    let server = AuditTcpServer::bind(addr, executor, Duration::from_millis(5))
        .unwrap_or_else(|e| panic!("cannot listen on {addr}: {e}"));
    eprintln!(
        "[serve] listening on {} — {} points x {} regions as handle {}, {:?}, workers={}, \
         queue_capacity={:?}",
        server.local_addr(),
        outcomes.len(),
        regions.len(),
        handle.0,
        policy,
        opts.net_workers.max(1),
        opts.queue_capacity,
    );

    install_sigint();
    while !SIGINT.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("[serve] SIGINT: draining and shutting down");
    let stats = server.shutdown();
    eprintln!("[serve] final stats: {stats}");
}

/// Connects with a per-attempt timeout and a bounded number of
/// retries (short backoff between attempts), so a dead server fails
/// the client fast and loudly instead of hanging it forever.
fn connect_with_retry(addr: &str, timeout: Duration, retries: u32) -> std::net::TcpStream {
    use std::net::{TcpStream, ToSocketAddrs};
    let attempts = retries.max(1);
    let mut last_error = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            let backoff = Duration::from_millis(200u64.saturating_mul(1 << attempt.min(4)));
            eprintln!(
                "[serve] connect attempt {}/{attempts} failed ({last_error}); \
                 retrying in {backoff:?}",
                attempt
            );
            std::thread::sleep(backoff);
        }
        let resolved = match addr.to_socket_addrs() {
            Ok(mut it) => it.next(),
            Err(e) => {
                last_error = format!("cannot resolve {addr}: {e}");
                continue;
            }
        };
        let Some(resolved) = resolved else {
            last_error = format!("{addr} resolves to no address");
            continue;
        };
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => return stream,
            Err(e) => last_error = e.to_string(),
        }
    }
    panic!("cannot connect to {addr} after {attempts} attempt(s): {last_error}");
}

/// Streams the input lines to a live server and prints its response
/// lines to stdout — the socket client matching `run_inprocess`'s
/// stdout byte for byte against the same server-side dataset. Every
/// socket operation is bounded by `--io-timeout-ms` and the connect
/// is retried `--connect-retries` times, so a dead or wedged server
/// produces a clear error instead of an indefinite hang.
fn run_client(opts: &Options, addr: &str) {
    use std::io::ErrorKind;
    use std::net::Shutdown;
    let lines: Vec<String> = match &opts.input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .unwrap_or_else(|e| panic!("cannot open --input {path}: {e}"));
            std::io::BufReader::new(file)
                .lines()
                .map(|l| l.expect("readable input"))
                .collect()
        }
        None => {
            eprintln!("[serve] reading JSONL requests from stdin");
            std::io::stdin()
                .lock()
                .lines()
                .map(|l| l.unwrap())
                .collect()
        }
    };
    let io_timeout = Duration::from_millis(opts.io_timeout_ms.max(1));
    let mut stream = connect_with_retry(addr, io_timeout, opts.connect_retries);
    stream
        .set_write_timeout(Some(io_timeout))
        .expect("socket accepts a write timeout");
    stream
        .set_read_timeout(Some(io_timeout))
        .expect("socket accepts a read timeout");
    for line in &lines {
        writeln!(stream, "{line}")
            .unwrap_or_else(|e| panic!("cannot send request line to {addr}: {e}"));
    }
    stream
        .shutdown(Shutdown::Write)
        .expect("write half-close signals EOF");
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    for line in std::io::BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| {
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
                panic!(
                    "no response from {addr} within {}ms (--io-timeout-ms); giving up",
                    opts.io_timeout_ms
                );
            }
            panic!("cannot read response line from {addr}: {e}");
        });
        writeln!(out, "{line}").expect("stdout is writable");
        served += 1;
    }
    out.flush().expect("stdout is writable");
    eprintln!(
        "[serve] {} lines sent, {} responses received",
        lines.len(),
        served
    );
}

/// Hosts a count-partial shard worker: the same synthetic dataset,
/// prepared with blocked counting, served span-by-span to a
/// coordinator until SIGINT (or until a `--fault-plan` kill fires).
fn run_shard_worker(opts: &Options, addr: &str) {
    let (outcomes, regions, base) = dataset(opts);
    let base = base.with_strategy(CountingStrategy::Blocked);
    let prepared = Arc::new(
        PreparedAudit::prepare(&outcomes, &regions, base)
            .expect("the synthetic benchmark dataset is auditable"),
    );
    let counter =
        Arc::new(SpanCounter::new(prepared).expect("blocked counting is forced for shard workers"));
    let fault: Arc<FaultPlan> = Arc::new(match &opts.fault_plan {
        Some(spec) => spec.parse().unwrap_or_else(|e| panic!("--fault-plan: {e}")),
        None => FaultPlan::none(),
    });
    let fault_desc = if fault.is_empty() {
        "no faults".to_string()
    } else {
        format!("fault plan: {}", opts.fault_plan.as_deref().unwrap_or(""))
    };
    let mut worker = ShardWorker::bind(addr, counter, fault)
        .unwrap_or_else(|e| panic!("cannot bind shard worker on {addr}: {e}"));
    eprintln!(
        "[serve] shard worker on {} — {} points x {} regions, {}",
        worker.local_addr(),
        outcomes.len(),
        regions.len(),
        fault_desc
    );
    install_sigint();
    while !SIGINT.load(Ordering::SeqCst) && !worker.is_killed() {
        std::thread::sleep(Duration::from_millis(50));
    }
    if worker.is_killed() {
        eprintln!("[serve] kill-after fault fired; worker is down");
    } else {
        eprintln!("[serve] SIGINT: shutting down shard worker");
    }
    worker.shutdown();
    eprintln!(
        "[serve] worker stats: {}",
        serde_json::to_string(&worker.stats()).expect("worker stats serialise")
    );
}
