//! Shared harness plumbing: options, dataset construction, rendering.

use sfdata::crime::{CrimeConfig, CrimeData, CrimePipelineResult};
use sfdata::lar::{LarConfig, LarDataset};
use sfgeo::Rect;
use sfml::RandomForestConfig;
use sfscan::outcomes::SpatialOutcomes;
use sfscan::{
    AuditConfig, CountingStrategy, IndexBackend, KernelSelect, McStrategy, Shards, Statistic,
    WorldGen,
};
use std::time::Instant;

/// Global harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced scales for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Monte Carlo worlds (`w − 1`).
    pub worlds: usize,
    /// Spatial index backend serving every audit's range counts.
    pub backend: IndexBackend,
    /// Per-world counting strategy.
    pub strategy: CountingStrategy,
    /// Monte Carlo budget strategy for every calibration.
    pub mc_strategy: McStrategy,
    /// World-generation algorithm version for every calibration.
    pub worldgen: WorldGen,
    /// Shard count for the blocked counting/generation fan-out
    /// (`auto` resolves to the available cores).
    pub shards: Shards,
    /// Popcount kernel for the blocked counting sweeps (`auto`
    /// resolves to the best kernel the CPU supports).
    pub kernel: KernelSelect,
    /// Test statistic scoring every region in every world.
    pub statistic: Statistic,
    /// `serve-bench`: number of queued audit requests.
    pub requests: usize,
    /// `serve-bench`: output path for the machine-readable results.
    pub out: String,
    /// `serve`: JSONL request file (None reads stdin).
    pub input: Option<String>,
    /// `serve`: drain policy — execute a handle's queue as soon as it
    /// holds this many requests (None = manual, flush at EOF).
    pub max_pending: Option<usize>,
    /// `serve`: TCP listen address (e.g. `127.0.0.1:7878`); switches
    /// from the stdin/stdout loop to the `sfnet` server.
    pub listen: Option<String>,
    /// `serve`: connect to a live server instead of hosting one —
    /// streams stdin/`--input` lines to the socket and prints response
    /// lines to stdout (the CI TCP smoke client).
    pub connect: Option<String>,
    /// `serve --listen`: executor worker threads.
    pub net_workers: usize,
    /// `serve --listen`: per-session bound on outstanding requests
    /// (None = unbounded; full queues answer `"busy"`).
    pub queue_capacity: Option<usize>,
    /// `serve --listen`: drain deadline in milliseconds (switches the
    /// policy to `Deadline`; wins over `--max-pending`).
    pub deadline_ms: Option<u64>,
    /// `serve --connect`: connect/read timeout in milliseconds — the
    /// client aborts with a clear error instead of blocking forever on
    /// a dead or wedged server.
    pub io_timeout_ms: u64,
    /// `serve --connect`: bounded connection attempts (with a short
    /// backoff between them) before giving up.
    pub connect_retries: u32,
    /// `serve`: host a shard worker on this address instead of an
    /// audit service — serves count-partial spans to a coordinator.
    pub shard_worker: Option<String>,
    /// `serve`: comma-separated shard-worker addresses; the in-process
    /// loop routes world evaluation through the fault-tolerant
    /// coordinator instead of the local engine (bit-identical output).
    pub coordinator: Option<String>,
    /// `serve --shard-worker`: deterministic fault-injection plan
    /// (e.g. `kill-after=3,delay-every=2:50`; see `sfcluster`).
    pub fault_plan: Option<String>,
    /// Coordinator dispatch deadline per span request, milliseconds.
    pub dispatch_timeout_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            seed: 42,
            worlds: 999,
            backend: IndexBackend::default(),
            strategy: CountingStrategy::default(),
            mc_strategy: McStrategy::FullBudget,
            worldgen: WorldGen::Word,
            shards: Shards::Auto,
            kernel: KernelSelect::Auto,
            statistic: Statistic::BernoulliLlr,
            requests: 24,
            out: "BENCH_PR9.json".to_string(),
            input: None,
            max_pending: None,
            listen: None,
            connect: None,
            net_workers: 4,
            queue_capacity: None,
            deadline_ms: None,
            io_timeout_ms: 30_000,
            connect_retries: 5,
            shard_worker: None,
            coordinator: None,
            fault_plan: None,
            dispatch_timeout_ms: 10_000,
        }
    }
}

impl Options {
    /// The significance level used throughout the paper's evaluation.
    pub const ALPHA: f64 = 0.005;

    /// Applies the harness-level audit knobs (index backend, counting
    /// strategy, Monte Carlo budget strategy, world generator, shard
    /// count, popcount kernel, test statistic) to a figure's config.
    pub fn decorate(&self, config: AuditConfig) -> AuditConfig {
        config
            .with_backend(self.backend)
            .with_strategy(self.strategy)
            .with_mc_strategy(self.mc_strategy)
            .with_worldgen(self.worldgen)
            .with_shards(self.shards)
            .with_kernel(self.kernel)
            .with_statistic(self.statistic)
    }

    /// LAR generator config at the selected scale.
    pub fn lar_config(&self) -> LarConfig {
        if self.quick {
            LarConfig {
                seed: self.seed,
                ..LarConfig::small()
            }
        } else {
            LarConfig {
                seed: self.seed,
                ..LarConfig::paper()
            }
        }
    }

    /// Crime generator config at the selected scale.
    pub fn crime_config(&self) -> CrimeConfig {
        if self.quick {
            CrimeConfig {
                seed: self.seed,
                ..CrimeConfig::small()
            }
        } else {
            CrimeConfig {
                seed: self.seed,
                ..CrimeConfig::medium()
            }
        }
    }

    /// Monte Carlo budget, clamped in quick mode.
    pub fn effective_worlds(&self) -> usize {
        if self.quick {
            self.worlds.min(199)
        } else {
            self.worlds
        }
    }
}

/// Generates SynthLAR, timing the construction.
pub fn build_lar(opts: &Options) -> LarDataset {
    let t = Instant::now();
    let lar = LarDataset::generate(&opts.lar_config());
    println!(
        "[data] SynthLAR: N={}, P={}, rate={:.4}, {} locations ({:.1?})",
        lar.outcomes.len(),
        lar.outcomes.positives(),
        lar.outcomes.rate(),
        lar.locations.len(),
        t.elapsed()
    );
    lar
}

/// Generates SynthCrime and runs the train→predict pipeline.
pub fn build_crime(opts: &Options) -> (CrimeData, CrimePipelineResult) {
    let t = Instant::now();
    let data = CrimeData::generate(&opts.crime_config());
    let mut rf = RandomForestConfig::new(if opts.quick { 8 } else { 20 }, opts.seed);
    rf.tree.max_depth = 12;
    let result = data.run_pipeline(&rf);
    println!(
        "[data] SynthCrime: {} incidents, base rate {:.3}; model accuracy {:.3} (paper 0.78), \
         TPR {:.3} (paper 0.58); equal-opportunity view: {} outcomes ({:.1?})",
        data.features.num_rows(),
        result.base_rate,
        result.accuracy,
        result.tpr,
        result.outcomes.len(),
        t.elapsed()
    );
    (data, result)
}

/// Renders a terminal density map of outcomes: glyph = local positive
/// rate (`.` low … `#` high), blank = no observations.
pub fn ascii_map(outcomes: &SpatialOutcomes, cols: usize, rows: usize) -> String {
    let bb = outcomes.expanded_bounding_box();
    let mut n = vec![0u64; cols * rows];
    let mut p = vec![0u64; cols * rows];
    for (pt, &l) in outcomes.points().iter().zip(outcomes.labels()) {
        let cx = (((pt.x - bb.min.x) / bb.width()) * cols as f64) as usize;
        let cy = (((pt.y - bb.min.y) / bb.height()) * rows as f64) as usize;
        let idx = cy.min(rows - 1) * cols + cx.min(cols - 1);
        n[idx] += 1;
        p[idx] += l as u64;
    }
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut out = String::with_capacity((cols + 1) * rows);
    // Render north-up.
    for cy in (0..rows).rev() {
        for cx in 0..cols {
            let idx = cy * cols + cx;
            if n[idx] == 0 {
                out.push(' ');
            } else {
                let rate = p[idx] as f64 / n[idx] as f64;
                let g =
                    1 + ((rate * (glyphs.len() - 2) as f64).round() as usize).min(glyphs.len() - 2);
                out.push(glyphs[g]);
            }
        }
        out.push('\n');
    }
    out
}

/// Pretty-prints a labelled key-value row comparing paper vs measured.
pub fn report_row(what: &str, paper: &str, measured: &str) {
    println!("  {what:<46} paper: {paper:<16} measured: {measured}");
}

/// Section banner.
pub fn banner(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

/// A rect formatted as "side x side at (cx, cy)".
pub fn fmt_rect(r: &Rect) -> String {
    format!(
        "{:.2}x{:.2} deg at ({:.2}, {:.2})",
        r.width(),
        r.height(),
        r.center().x,
        r.center().y
    )
}
