//! Figures 2 and 3: "Where is it unfair?" on LAR at 100×50.
//!
//! * Figure 2(a): the partition making the largest contribution to
//!   `MeanVar` is a sparse all-negative cell (paper: 5 outcomes in
//!   Iowa, local rate 0, LLR ≈ insignificant vs threshold 9.6).
//! * Figure 2(b): the partition with the highest SUL is a dense
//!   Northern-California cell (paper: ≈8,000 outcomes, 84% positive,
//!   log-likelihood difference ≈1000, p < 0.005).
//! * Figure 3(a): 59 statistically significant partitions (ours).
//! * Figure 3(b): the top-50 MeanVar partitions are "all very sparse
//!   partitions that contain only negative outcomes".

use crate::common::{banner, fmt_rect, report_row, Options};
use sfdata::lar::LarDataset;
use sfgeo::Partitioning;
use sfscan::{AuditConfig, Auditor, MeanVar, RegionSet};
use sfstats::rng::derive_seed;

pub fn run_fig2(opts: &Options) {
    let (lar, report, contribs, _) = scan_lar_grid(opts, 100, 50);

    banner("Figure 2 — the most suspicious region, by each method");
    // (a) MeanVar's best evidence.
    let top_mv = &contribs[0];
    let (metro_mv, _) = LarDataset::nearest_metro(&top_mv.rect.center());
    println!(
        "  MeanVar top contributor: n={}, p={}, rate={:.2} at {} (near {})",
        top_mv.n,
        top_mv.p,
        top_mv.rate,
        fmt_rect(&top_mv.rect),
        metro_mv.name
    );
    report_row("  -> observations n", "5 (sparse)", &top_mv.n.to_string());
    report_row(
        "  -> local positive rate",
        "0.00 (extreme)",
        &format!("{:.2}", top_mv.rate),
    );

    // What does OUR statistic say about that cell? (Paper: ~0.96-4.8,
    // far below the critical value.)
    let llr_of_mv_cell = sfstats::llr::bernoulli_llr(&sfstats::llr::Counts2x2::new(
        top_mv.n,
        top_mv.p,
        report.n_total,
        report.p_total,
    ));
    report_row(
        "  -> its log-likelihood difference",
        "0.96 (not significant)",
        &format!(
            "{llr_of_mv_cell:.2} (critical {:.2})",
            report.critical_value
        ),
    );

    // (b) The audit's best evidence.
    let best = &report.findings[0];
    let (metro_sul, _) = LarDataset::nearest_metro(&best.region.center());
    println!(
        "  Audit top finding:       n={}, p={}, rate={:.2} at {} (near {})",
        best.n,
        best.p,
        best.rate,
        fmt_rect(&best.region.bounding_rect()),
        metro_sul.name
    );
    report_row("  -> observations n", "~8,000 (dense)", &best.n.to_string());
    report_row(
        "  -> local positive rate",
        "0.84",
        &format!("{:.2}", best.rate),
    );
    report_row(
        "  -> log-likelihood difference",
        "~1000",
        &format!("{:.0}", best.llr),
    );
    report_row("  -> located in", "northern California", metro_sul.name);
    let _ = lar;
}

pub fn run_fig3(opts: &Options) {
    let (_, report, contribs, regions) = scan_lar_grid(opts, 100, 50);

    banner("Figure 3 — LAR, high-resolution 100x50 partitioning");
    report_row(
        "significance threshold (LLR, alpha=0.005)",
        "9.6",
        &format!("{:.2}", report.critical_value),
    );
    report_row(
        "statistically significant partitions",
        "59",
        &report.findings.len().to_string(),
    );
    report_row("audit verdict", "unfair", &report.verdict().to_string());

    // Character of the audit's findings: mostly dense.
    let dense = report.findings.iter().filter(|f| f.n >= 100).count();
    println!(
        "  audit findings: {} of {} have n >= 100 (median n = {})",
        dense,
        report.findings.len(),
        median_n(report.findings.iter().map(|f| f.n))
    );

    // Character of MeanVar's top-50: sparse, all-negative.
    let top50 = &contribs[..50.min(contribs.len())];
    let all_negative = top50.iter().filter(|c| c.p == 0).count();
    let median = median_n(top50.iter().map(|c| c.n));
    report_row(
        "MeanVar top-50: all-negative cells",
        "50 of 50",
        &format!("{all_negative} of {}", top50.len()),
    );
    println!("  MeanVar top-50 median n = {median} (paper: \"very sparse\")");
    let _ = regions;
}

/// Shared computation: audit + MeanVar contributions on an
/// `nx`×`ny` LAR grid. Returns (dataset, audit report, contributions,
/// region set).
pub fn scan_lar_grid(
    opts: &Options,
    nx: usize,
    ny: usize,
) -> (
    LarDataset,
    sfscan::AuditReport,
    Vec<sfscan::PartitionContribution>,
    RegionSet,
) {
    let lar = crate::common::build_lar(opts);
    let bounds = lar.outcomes.expanded_bounding_box();
    let regions = RegionSet::regular_grid(bounds, nx, ny);
    let config = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(derive_seed(opts.seed, "lar-grid-audit")),
    );
    let t = std::time::Instant::now();
    let report = Auditor::new(config)
        .audit(&lar.outcomes, &regions)
        .expect("auditable");
    println!(
        "[scan] {nx}x{ny} grid over LAR: tau={:.1}, p={:.4}, critical={:.2}, {} significant ({:.1?})",
        report.tau,
        report.p_value,
        report.critical_value,
        report.findings.len(),
        t.elapsed()
    );
    let partitioning = Partitioning::regular(bounds, nx, ny);
    let contribs = MeanVar::contributions(&lar.outcomes, &partitioning);
    (lar, report, contribs, regions)
}

fn median_n(values: impl Iterator<Item = u64>) -> u64 {
    let mut v: Vec<u64> = values.collect();
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}
