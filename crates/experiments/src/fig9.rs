//! Figure 9 / Appendix B.1: LAR at a low-resolution 25×12 grid.
//!
//! Paper: 22 statistically significant partitions (ours) vs the
//! top-20 `MeanVar` partitions — at this coarser resolution `MeanVar`
//! "now also returns some dense areas, and also identifies the most
//! spatially unfair region in northern California".

use crate::common::{banner, report_row, Options};
use crate::fig23::scan_lar_grid;

pub fn run(opts: &Options) {
    let (_lar, report, contribs, _regions) = scan_lar_grid(opts, 25, 12);

    banner("Figure 9 — LAR, low-resolution 25x12 partitioning");
    report_row(
        "statistically significant partitions",
        "22",
        &report.findings.len().to_string(),
    );
    report_row("audit verdict", "unfair", &report.verdict().to_string());

    let top20 = &contribs[..20.min(contribs.len())];
    let dense = top20.iter().filter(|c| c.n >= 100).count();
    report_row(
        "MeanVar top-20 containing dense cells",
        "some (unlike 100x50)",
        &format!("{dense} of {}", top20.len()),
    );

    // Does MeanVar's top-20 include the audit's best (NorCal) region?
    let best = &report.findings[0];
    let overlap = top20
        .iter()
        .any(|c| c.rect.intersects(&best.region.bounding_rect()));
    report_row(
        "MeanVar top-20 hits the most-unfair region",
        "yes (northern California)",
        if overlap { "yes" } else { "no" },
    );
}
