//! Figure 4: Crime, equal opportunity on a 20×20 grid.
//!
//! The audit should flag a handful of dense partitions (paper: 5),
//! among them the Hollywood area whose local TPR (0.51) trails the
//! global 0.58; the `MeanVar` top-5 are sparse cells with a single
//! false positive ("not interesting for the auditor").

use crate::common::{banner, build_crime, fmt_rect, report_row, Options};
use sfdata::crime::hollywood_region;
use sfgeo::Partitioning;
use sfscan::{AuditConfig, Auditor, MeanVar, RegionSet};
use sfstats::rng::derive_seed;

pub fn run(opts: &Options) {
    let (_data, pipeline) = build_crime(opts);
    let outcomes = &pipeline.outcomes;

    let bounds = outcomes.expanded_bounding_box();
    let regions = RegionSet::regular_grid(bounds, 20, 20);
    let config = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(derive_seed(opts.seed, "crime-grid-audit")),
    );
    let report = Auditor::new(config)
        .audit(outcomes, &regions)
        .expect("auditable");

    banner("Figure 4 — Crime, 20x20 partitioning (equal opportunity)");
    report_row(
        "global true positive rate",
        "0.58",
        &format!("{:.2}", outcomes.rate()),
    );
    report_row("audit verdict", "unfair", &report.verdict().to_string());
    report_row(
        "statistically significant partitions",
        "5",
        &report.findings.len().to_string(),
    );

    // Is the Hollywood drift among the findings?
    let hw = hollywood_region();
    let hw_hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.region.bounding_rect().intersects(&hw))
        .collect();
    report_row(
        "findings inside the drift ('Hollywood') area",
        ">=1 (the headline finding)",
        &hw_hits.len().to_string(),
    );
    for f in report.top_k(5) {
        let tag = if f.region.bounding_rect().intersects(&hw) {
            " [Hollywood]"
        } else {
            ""
        };
        println!(
            "    finding: n={}, correct={}, local TPR={:.2}, LLR={:.1} at {}{tag}",
            f.n,
            f.p,
            f.rate,
            f.llr,
            fmt_rect(&f.region.bounding_rect())
        );
    }
    if let Some(best_hw) = hw_hits.first() {
        report_row(
            "Hollywood finding: observations",
            "~3,000",
            &best_hw.n.to_string(),
        );
        report_row(
            "Hollywood finding: local TPR",
            "0.51 (vs global 0.58)",
            &format!("{:.2}", best_hw.rate),
        );
    }

    // MeanVar's top-5 on the same grid.
    let partitioning = Partitioning::regular(bounds, 20, 20);
    let contribs = MeanVar::contributions(outcomes, &partitioning);
    let top5 = &contribs[..5.min(contribs.len())];
    banner("Figure 4(b) — MeanVar top-5 partitions");
    let sparse_single_miss = top5
        .iter()
        .filter(|c| c.n <= 3 && (c.p == 0 || c.p == c.n))
        .count();
    report_row(
        "top-5 that are sparse one-sided cells",
        "5 of 5 (single false positive)",
        &format!("{sparse_single_miss} of {}", top5.len()),
    );
    for c in top5 {
        println!(
            "    MeanVar cell: n={}, correct={}, rate={:.2}, contribution={:.3} at {}",
            c.n,
            c.p,
            c.rate,
            c.contribution,
            fmt_rect(&c.rect)
        );
    }
}
