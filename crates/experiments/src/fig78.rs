//! Figures 7 and 8: dataset renderings.
//!
//! The paper shows scatter plots; a terminal harness renders density
//! maps where the glyph encodes the local positive rate
//! (`.` ≈ 0 … `#` ≈ 1) and blank cells have no observations.

use crate::common::{ascii_map, banner, build_crime, build_lar, Options};

pub fn run_fig7(opts: &Options) {
    let lar = build_lar(opts);
    banner("Figure 7 — SynthLAR locations and outcomes");
    println!(
        "  N={}, P={}, rate={:.3}; glyph = local positive rate (. low, # high)",
        lar.outcomes.len(),
        lar.outcomes.positives(),
        lar.outcomes.rate()
    );
    print!("{}", ascii_map(&lar.outcomes, 100, 28));
}

pub fn run_fig8(opts: &Options) {
    let (_, pipeline) = build_crime(opts);
    banner("Figure 8 — SynthCrime equal-opportunity view (test set, y=1)");
    println!(
        "  N={}, correct={}, TPR={:.3}; glyph = local TPR (. low, # high)",
        pipeline.outcomes.len(),
        pipeline.outcomes.positives(),
        pipeline.outcomes.rate()
    );
    print!("{}", ascii_map(&pipeline.outcomes, 80, 26));
}
