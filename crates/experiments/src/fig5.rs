//! Figures 5, 10, 11, 12: unrestricted square-region scans on LAR.
//!
//! §4.3: squares with 20 side lengths (0.1–2.0 degrees) centered on
//! 100 k-means centers of the observation locations — 2,000 regions.
//! * Figure 10 — the scan geometry.
//! * Figure 5 — two-sided: 700 unfair regions, 28 non-overlapping;
//!   smallest kept region near Tampa (0.1°, 473 obs), largest near
//!   Orlando (1°, 4,783 obs).
//! * Figure 11 — one-sided low ("red"): 27 non-overlapping; worst is
//!   Miami (6,281 obs, 43% positive).
//! * Figure 12 — one-sided high ("green"): 17 non-overlapping; worst
//!   is San Jose (17,875 obs, 83% positive).

use crate::common::{banner, build_lar, report_row, Options};
use sfcluster::{KMeans, KMeansConfig};
use sfdata::lar::LarDataset;
use sfgeo::Point;
use sfscan::identify::select_non_overlapping;
use sfscan::{AuditConfig, AuditReport, Auditor, Direction, RegionSet};
use sfstats::rng::derive_seed;

/// Builds the §4.3 region set: 100 k-means centers over the distinct
/// locations × 20 side lengths.
fn build_square_scan(opts: &Options, lar: &LarDataset) -> RegionSet {
    let k = if opts.quick { 40 } else { 100 };
    let km = KMeans::fit(
        &lar.locations,
        &KMeansConfig::new(k, derive_seed(opts.seed, "kmeans-centers")),
    );
    RegionSet::squares(km.centers, &RegionSet::paper_side_lengths())
}

fn audit_squares(opts: &Options, direction: Direction) -> (LarDataset, RegionSet, AuditReport) {
    let lar = build_lar(opts);
    let regions = build_square_scan(opts, &lar);
    let config = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(derive_seed(opts.seed, "square-audit"))
            .with_direction(direction),
    );
    let t = std::time::Instant::now();
    let report = Auditor::new(config)
        .audit(&lar.outcomes, &regions)
        .expect("auditable");
    println!(
        "[scan] {} squares, direction {direction}: tau={:.1}, p={:.4}, {} significant ({:.1?})",
        regions.len(),
        report.tau,
        report.p_value,
        report.findings.len(),
        t.elapsed()
    );
    (lar, regions, report)
}

pub fn run_fig10(opts: &Options) {
    let lar = build_lar(opts);
    let regions = build_square_scan(opts, &lar);
    banner("Figure 10 — square-scan geometry");
    let centers = regions.centers().expect("square scan has centers");
    let sides = RegionSet::paper_side_lengths();
    report_row(
        "scan centers (k-means of locations)",
        "100",
        &centers.len().to_string(),
    );
    report_row(
        "side lengths",
        "20 (0.1 to 2.0 deg)",
        &format!(
            "{} ({:.1} to {:.1} deg)",
            sides.len(),
            sides[0],
            sides[sides.len() - 1]
        ),
    );
    report_row("total square regions", "2,000", &regions.len().to_string());
    // Show a few centers with their nearest metro for orientation.
    for c in centers.iter().take(5) {
        let (m, d) = LarDataset::nearest_metro(c);
        println!(
            "    center ({:.2}, {:.2}) — {:.2} deg from {}",
            c.x, c.y, d, m.name
        );
    }
}

pub fn run_fig5(opts: &Options) {
    let (_lar, _regions, report) = audit_squares(opts, Direction::TwoSided);
    banner("Figure 5 — LAR unrestricted regions (two-sided)");
    report_row(
        "unfair regions @ alpha=0.005",
        "700",
        &report.findings.len().to_string(),
    );
    let kept = select_non_overlapping(&report.findings);
    report_row(
        "non-overlapping unfair regions",
        "28",
        &kept.len().to_string(),
    );

    // Size/observation diversity (paper highlights Tampa smallest with
    // 473 obs, Orlando largest with 4,783 obs).
    if let (Some(smallest), Some(largest)) = (
        kept.iter()
            .min_by(|a, b| a.region.area().partial_cmp(&b.region.area()).unwrap()),
        kept.iter()
            .max_by(|a, b| a.region.area().partial_cmp(&b.region.area()).unwrap()),
    ) {
        let (m_s, _) = LarDataset::nearest_metro(&smallest.region.center());
        let (m_l, _) = LarDataset::nearest_metro(&largest.region.center());
        report_row(
            "smallest kept region",
            "0.1 deg near Tampa, 473 obs",
            &format!(
                "{:.1} deg near {}, {} obs",
                smallest.region.bounding_rect().width(),
                m_s.name,
                smallest.n
            ),
        );
        report_row(
            "largest kept region",
            "1.0 deg near Orlando, 4,783 obs",
            &format!(
                "{:.1} deg near {}, {} obs",
                largest.region.bounding_rect().width(),
                m_l.name,
                largest.n
            ),
        );
    }
    print_kept(&kept, 8);
}

pub fn run_fig11(opts: &Options) {
    let (_lar, _regions, report) = audit_squares(opts, Direction::Low);
    banner("Figure 11 — one-sided LOW ('red') regions");
    let kept = select_non_overlapping(&report.findings);
    report_row("non-overlapping red regions", "27", &kept.len().to_string());
    let worst = kept
        .iter()
        .max_by(|a, b| a.llr.partial_cmp(&b.llr).unwrap());
    if let Some(worst) = worst {
        let (m, _) = LarDataset::nearest_metro(&worst.region.center());
        report_row(
            "most unfair red region",
            "Miami: 6,281 obs, 43% positive",
            &format!(
                "{}: {} obs, {:.0}% positive",
                m.name,
                worst.n,
                worst.rate * 100.0
            ),
        );
    }
    print_kept(&kept, 8);
}

pub fn run_fig12(opts: &Options) {
    let (_lar, _regions, report) = audit_squares(opts, Direction::High);
    banner("Figure 12 — one-sided HIGH ('green') regions");
    let kept = select_non_overlapping(&report.findings);
    report_row(
        "non-overlapping green regions",
        "17",
        &kept.len().to_string(),
    );
    let worst = kept
        .iter()
        .max_by(|a, b| a.llr.partial_cmp(&b.llr).unwrap());
    if let Some(worst) = worst {
        let (m, _) = LarDataset::nearest_metro(&worst.region.center());
        report_row(
            "most unfair green region",
            "San Jose: 17,875 obs, 83% positive",
            &format!(
                "{}: {} obs, {:.0}% positive",
                m.name,
                worst.n,
                worst.rate * 100.0
            ),
        );
    }
    print_kept(&kept, 8);
}

fn print_kept(kept: &[sfscan::RegionFinding], limit: usize) {
    let mut by_llr: Vec<&sfscan::RegionFinding> = kept.iter().collect();
    by_llr.sort_by(|a, b| b.llr.partial_cmp(&a.llr).unwrap());
    for f in by_llr.iter().take(limit) {
        let (m, _) = LarDataset::nearest_metro(&f.region.center());
        println!(
            "    kept: {:.1} deg square near {:<20} n={:<6} rate={:.2} LLR={:.0}",
            f.region.bounding_rect().width(),
            m.name,
            f.n,
            f.rate,
            f.llr
        );
    }
}

/// Exposed for the `fig10` geometry printout reuse in tests.
#[allow(dead_code)]
pub fn centers_for(lar: &LarDataset, k: usize, seed: u64) -> Vec<Point> {
    KMeans::fit(&lar.locations, &KMeansConfig::new(k, seed)).centers
}
