//! Per-figure experiment harness.
//!
//! Every evaluation artifact of the paper has a subcommand that
//! regenerates its rows/series on the synthetic dataset clones
//! (DESIGN.md §4 maps each figure to modules and parameters):
//!
//! ```text
//! cargo run --release -p experiments -- fig1      # MeanVar vs audit on Synth/SemiSynth
//! cargo run --release -p experiments -- fig2      # most-suspicious region, both methods
//! cargo run --release -p experiments -- fig3      # LAR 100x50 grid
//! cargo run --release -p experiments -- fig4      # Crime 20x20 grid (equal opportunity)
//! cargo run --release -p experiments -- fig5      # LAR unrestricted squares
//! cargo run --release -p experiments -- fig6      # fair worlds / pure clusters (Appendix A)
//! cargo run --release -p experiments -- fig7      # LAR dataset rendering
//! cargo run --release -p experiments -- fig8      # Crime dataset rendering
//! cargo run --release -p experiments -- fig9      # LAR 25x12 grid (Appendix B.1)
//! cargo run --release -p experiments -- fig10     # square-scan geometry
//! cargo run --release -p experiments -- fig11     # one-sided "red" regions (B.2)
//! cargo run --release -p experiments -- fig12     # one-sided "green" regions (B.2)
//! cargo run --release -p experiments -- complexity# O(M*N*Q) cost model measurements
//! cargo run --release -p experiments -- serve-bench # batched serving vs rebuild-per-request
//! cargo run --release -p experiments -- cluster-bench # distributed shards: scaling + faults
//! cargo run --release -p experiments -- serve     # JSONL request/response loop (AuditService)
//! cargo run --release -p experiments -- all       # everything above in order
//! ```
//!
//! Options: `--quick` (reduced scales for smoke runs), `--seed <u64>`,
//! `--worlds <n>`, `--backend <brute|kdtree|quadtree|rtree|grid>`
//! (counting substrate; results are backend-invariant), `--strategy
//! <membership|requery|blocked|auto>` (per-world counting), `--mc
//! <full-budget|early-stop|early-stop(batch=N)>` (budget strategy),
//! `--early-stop` (shorthand for `--mc early-stop`), `--worldgen
//! <scalar|word>` (world-generation version; `word` — the default —
//! draws Bernoulli labels 64 per RNG pass), `--shards <auto|N>`
//! (contiguous rank shards for blocked counting/generation; `auto`
//! resolves to the available cores), `--kernel
//! <auto|scalar|avx2|avx512|portable>` (popcount kernel for the
//! blocked sweeps; every kernel is bit-identical, `auto` picks the
//! best one the CPU supports), `--statistic
//! <bernoulli-llr|equal-opp-tpr|mean-residual>` (test statistic
//! scoring every region in every world). `serve-bench` additionally
//! takes `--requests <n>` and `--out <path>` (default `BENCH_PR9.json`);
//! `serve` takes `--input <path>` (JSONL request envelopes; default
//! stdin) and `--max-pending <n>` (drain policy; default manual, one
//! batch at EOF), plus the network modes: `--listen <addr>` hosts the
//! `sfnet` TCP server over the same envelopes (with `--net-workers
//! <n>` executor threads, `--queue-capacity <n>` per-session
//! backpressure, `--deadline-ms <n>` wall-clock drains; SIGINT
//! shuts down gracefully and prints the final stats) and `--connect
//! <addr>` is the matching client (streams stdin/`--input` lines to
//! the socket with `--io-timeout-ms`/`--connect-retries` bounds,
//! prints response lines to stdout). The distributed modes:
//! `serve --shard-worker <addr>` hosts a count-partial shard worker
//! (optionally with a deterministic `--fault-plan`), and
//! `serve --coordinator <addr,addr,…>` routes the in-process loop's
//! world evaluation through the fault-tolerant coordinator
//! (`--dispatch-timeout-ms` per span) — bit-identical output by
//! construction. `cluster-bench` measures healthy scaling and faulted
//! recovery into `BENCH_PR10.json`. The backend/strategy/mc/worldgen
//! values are parsed with the types' `FromStr` impls, so error
//! messages list the valid values.

mod clusterbench;
mod common;
mod complexity;
mod fig1;
mod fig23;
mod fig4;
mod fig5;
mod fig6;
mod fig78;
mod fig9;
mod serve_cmd;
mod servebench;

use common::Options;

/// Parses a flag value with the target type's `FromStr`, dying with
/// the parse error's own message (which lists the valid values).
fn parse_flag<T>(flag: &str, value: Option<&String>) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let value = value.unwrap_or_else(|| die(&format!("{flag} needs a value")));
    value
        .parse()
        .unwrap_or_else(|e| die(&format!("{flag}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                i += 1;
                opts.seed = parse_flag("--seed", args.get(i));
            }
            "--worlds" => {
                i += 1;
                opts.worlds = parse_flag("--worlds", args.get(i));
            }
            "--backend" => {
                i += 1;
                opts.backend = parse_flag("--backend", args.get(i));
            }
            "--strategy" => {
                i += 1;
                opts.strategy = parse_flag("--strategy", args.get(i));
            }
            "--mc" => {
                i += 1;
                opts.mc_strategy = parse_flag("--mc", args.get(i));
            }
            "--early-stop" => opts.mc_strategy = sfscan::McStrategy::early_stop(),
            "--worldgen" => {
                i += 1;
                opts.worldgen = parse_flag("--worldgen", args.get(i));
            }
            "--shards" => {
                i += 1;
                opts.shards = parse_flag("--shards", args.get(i));
            }
            "--kernel" => {
                i += 1;
                opts.kernel = parse_flag("--kernel", args.get(i));
            }
            "--statistic" => {
                i += 1;
                opts.statistic = parse_flag("--statistic", args.get(i));
            }
            "--requests" => {
                i += 1;
                opts.requests = parse_flag("--requests", args.get(i));
            }
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--input" => {
                i += 1;
                opts.input = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--input needs a path")),
                );
            }
            "--max-pending" => {
                i += 1;
                opts.max_pending = Some(parse_flag("--max-pending", args.get(i)));
            }
            "--listen" => {
                i += 1;
                opts.listen = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--listen needs an address (e.g. 127.0.0.1:7878)")),
                );
            }
            "--connect" => {
                i += 1;
                opts.connect = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--connect needs an address")),
                );
            }
            "--net-workers" => {
                i += 1;
                opts.net_workers = parse_flag("--net-workers", args.get(i));
            }
            "--queue-capacity" => {
                i += 1;
                opts.queue_capacity = Some(parse_flag("--queue-capacity", args.get(i)));
            }
            "--deadline-ms" => {
                i += 1;
                opts.deadline_ms = Some(parse_flag("--deadline-ms", args.get(i)));
            }
            "--io-timeout-ms" => {
                i += 1;
                opts.io_timeout_ms = parse_flag("--io-timeout-ms", args.get(i));
            }
            "--connect-retries" => {
                i += 1;
                opts.connect_retries = parse_flag("--connect-retries", args.get(i));
            }
            "--shard-worker" => {
                i += 1;
                opts.shard_worker = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--shard-worker needs a bind address")),
                );
            }
            "--coordinator" => {
                i += 1;
                opts.coordinator = Some(args.get(i).cloned().unwrap_or_else(|| {
                    die("--coordinator needs comma-separated worker addresses")
                }));
            }
            "--fault-plan" => {
                i += 1;
                opts.fault_plan = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--fault-plan needs a plan (e.g. kill-after=3)")),
                );
            }
            "--dispatch-timeout-ms" => {
                i += 1;
                opts.dispatch_timeout_ms = parse_flag("--dispatch-timeout-ms", args.get(i));
            }
            arg if !arg.starts_with('-') && command.is_none() => {
                command = Some(arg.to_string());
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if opts.shard_worker.is_some() && opts.coordinator.is_some() {
        die("--shard-worker and --coordinator are mutually exclusive");
    }
    let command = command.unwrap_or_else(|| die("missing command; try `all` or `fig1`..`fig12`"));
    run(&command, &opts);
}

fn run(command: &str, opts: &Options) {
    match command {
        "fig1" => fig1::run(opts),
        "fig2" => fig23::run_fig2(opts),
        "fig3" => fig23::run_fig3(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run_fig5(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig78::run_fig7(opts),
        "fig8" => fig78::run_fig8(opts),
        "fig9" => fig9::run(opts),
        "fig10" => fig5::run_fig10(opts),
        "fig11" => fig5::run_fig11(opts),
        "fig12" => fig5::run_fig12(opts),
        "complexity" => complexity::run(opts),
        "serve-bench" => servebench::run(opts),
        "cluster-bench" => clusterbench::run(opts),
        "serve" => serve_cmd::run(opts),
        "all" => {
            for c in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "complexity",
                "serve-bench",
            ] {
                run(c, opts);
            }
        }
        other => die(&format!("unknown command: {other}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <fig1..fig12|complexity|serve-bench|cluster-bench|serve|all> \
         [--quick] [--seed N] \
         [--worlds N] [--backend <brute|kdtree|quadtree|rtree|grid>] \
         [--strategy <membership|requery|blocked|auto>] \
         [--mc <full-budget|early-stop|early-stop(batch=N)>] [--early-stop] \
         [--worldgen <scalar|word>] [--shards <auto|N>] \
         [--kernel <auto|scalar|avx2|avx512|portable>] \
         [--statistic <bernoulli-llr|equal-opp-tpr|mean-residual>] \
         [--requests N] [--out PATH] [--input PATH] [--max-pending N] \
         [--listen ADDR] [--connect ADDR] [--net-workers N] \
         [--queue-capacity N] [--deadline-ms N] \
         [--io-timeout-ms N] [--connect-retries N] \
         [--shard-worker ADDR] [--coordinator ADDR,ADDR,…] \
         [--fault-plan PLAN] [--dispatch-timeout-ms N]"
    );
    std::process::exit(2);
}
