//! Per-figure experiment harness.
//!
//! Every evaluation artifact of the paper has a subcommand that
//! regenerates its rows/series on the synthetic dataset clones
//! (DESIGN.md §4 maps each figure to modules and parameters):
//!
//! ```text
//! cargo run --release -p experiments -- fig1      # MeanVar vs audit on Synth/SemiSynth
//! cargo run --release -p experiments -- fig2      # most-suspicious region, both methods
//! cargo run --release -p experiments -- fig3      # LAR 100x50 grid
//! cargo run --release -p experiments -- fig4      # Crime 20x20 grid (equal opportunity)
//! cargo run --release -p experiments -- fig5      # LAR unrestricted squares
//! cargo run --release -p experiments -- fig6      # fair worlds / pure clusters (Appendix A)
//! cargo run --release -p experiments -- fig7      # LAR dataset rendering
//! cargo run --release -p experiments -- fig8      # Crime dataset rendering
//! cargo run --release -p experiments -- fig9      # LAR 25x12 grid (Appendix B.1)
//! cargo run --release -p experiments -- fig10     # square-scan geometry
//! cargo run --release -p experiments -- fig11     # one-sided "red" regions (B.2)
//! cargo run --release -p experiments -- fig12     # one-sided "green" regions (B.2)
//! cargo run --release -p experiments -- complexity# O(M*N*Q) cost model measurements
//! cargo run --release -p experiments -- all       # everything above in order
//! ```
//!
//! Options: `--quick` (reduced scales for smoke runs), `--seed <u64>`,
//! `--worlds <n>`, `--backend <brute|kdtree|quadtree|rtree|grid>`
//! (counting substrate; results are backend-invariant), `--early-stop`
//! (batched sequential Monte Carlo; same verdicts, fewer worlds).

mod common;
mod complexity;
mod fig1;
mod fig23;
mod fig4;
mod fig5;
mod fig6;
mod fig78;
mod fig9;

use common::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a u64 value"));
            }
            "--worlds" => {
                i += 1;
                opts.worlds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--worlds needs a positive integer"));
            }
            "--backend" => {
                i += 1;
                opts.backend = match args.get(i).map(String::as_str) {
                    Some("brute") => sfindex::IndexBackend::Brute,
                    Some("kdtree") => sfindex::IndexBackend::KdTree,
                    Some("quadtree") => sfindex::IndexBackend::QuadTree,
                    Some("rtree") => sfindex::IndexBackend::RTree,
                    Some("grid") => sfindex::IndexBackend::Grid,
                    _ => die("--backend needs one of: brute, kdtree, quadtree, rtree, grid"),
                };
            }
            "--early-stop" => opts.early_stop = true,
            arg if !arg.starts_with('-') && command.is_none() => {
                command = Some(arg.to_string());
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let command = command.unwrap_or_else(|| die("missing command; try `all` or `fig1`..`fig12`"));
    run(&command, &opts);
}

fn run(command: &str, opts: &Options) {
    match command {
        "fig1" => fig1::run(opts),
        "fig2" => fig23::run_fig2(opts),
        "fig3" => fig23::run_fig3(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run_fig5(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig78::run_fig7(opts),
        "fig8" => fig78::run_fig8(opts),
        "fig9" => fig9::run(opts),
        "fig10" => fig5::run_fig10(opts),
        "fig11" => fig5::run_fig11(opts),
        "fig12" => fig5::run_fig12(opts),
        "complexity" => complexity::run(opts),
        "all" => {
            for c in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "complexity",
            ] {
                run(c, opts);
            }
        }
        other => die(&format!("unknown command: {other}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <fig1..fig12|complexity|all> [--quick] [--seed N] [--worlds N] \
         [--backend <brute|kdtree|quadtree|rtree|grid>] [--early-stop]"
    );
    std::process::exit(2);
}
