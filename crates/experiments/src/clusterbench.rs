//! `cluster-bench`: the distributed shard service measured against
//! the single-process engine — healthy scaling and faulted recovery,
//! with bit-identity asserted on every row.
//!
//! The benchmark replays one mixed request matrix (both worldgens,
//! three statistics, both null models, a direction variant) three
//! ways:
//!
//! * **reference** — `PreparedAudit::run_batch` in-process, the
//!   transcript every other row is byte-compared against;
//! * **healthy rows** — the same matrix through a
//!   [`DistributedEvaluator`] over 1, 2, … in-process shard workers
//!   on loopback TCP (scaling is word-window sharding, so more
//!   workers mean narrower count windows per request);
//! * **fault rows** — three workers with deterministic [`FaultPlan`]s
//!   (kill-after, drop/corrupt, delay-past-deadline, all-dead), every
//!   recovery path exercised and the output still byte-identical.
//!
//! Every row records wall time, the coordinator's failure accounting
//! (re-dispatches, deadline misses, degraded-local spans), and an
//! `identical` flag computed by rendering each report to JSON and
//! comparing bytes — the artifact (`BENCH_PR10.json`) is the
//! machine-readable form of the tentpole's bit-identity claim.

use crate::common::{banner, report_row, Options};
use serde::Serialize;
use sfcluster::{
    ClusterStats, CoordinatorConfig, DistributedEvaluator, FaultPlan, ShardWorker, SpanCounter,
};
use sfnet::SystemClock;
use sfscan::prepared::PreparedAudit;
use sfscan::worldcache::WorldCache;
use sfscan::{
    AuditReport, AuditRequest, CountingStrategy, Direction, NullModel, Statistic, WorldGen,
};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

/// One benchmark row in the artifact.
#[derive(Debug, Serialize)]
struct ClusterRow {
    /// `"reference"`, `"healthy"`, or `"fault:<plan>"`.
    mode: String,
    /// Shard workers serving the row (0 for the reference).
    workers: usize,
    /// Fault plans injected, comma-joined (empty when healthy).
    fault_plan: String,
    /// Wall time for the full request matrix, milliseconds.
    wall_ms: f64,
    /// Whether every rendered report equals the reference bytes.
    identical: bool,
    /// Spans re-dispatched after a failed attempt.
    redispatches: u64,
    /// Dispatches that ran out the injected-clock deadline.
    deadline_misses: u64,
    /// Connection-level dispatch failures.
    conn_errors: u64,
    /// Replies rejected as corrupt (truncated/mismatched).
    corrupt_replies: u64,
    /// Spans the coordinator recomputed locally (no live worker).
    degraded_local_spans: u64,
    /// Spans reduced remotely.
    completed_remote: u64,
}

/// The machine-readable artifact (`BENCH_PR10.json`).
#[derive(Debug, Serialize)]
struct ClusterRecord {
    benchmark: String,
    quick: bool,
    points: usize,
    regions: usize,
    worlds: usize,
    requests: usize,
    rows: Vec<ClusterRow>,
}

/// The request matrix every row replays — the same coverage the
/// distributed bit-identity tests pin (both worldgens, three
/// statistics, both null models, a direction variant).
fn request_matrix(opts: &Options) -> Vec<AuditRequest> {
    let r = AuditRequest::new(Options::ALPHA)
        .with_worlds(opts.effective_worlds().min(199))
        .with_seed(opts.seed);
    vec![
        r,
        r.with_worldgen(WorldGen::Scalar),
        r.with_statistic(Statistic::EqualOppTpr),
        r.with_statistic(Statistic::MeanResidual),
        r.with_null_model(NullModel::Permutation),
        r.with_direction(Direction::High).with_seed(opts.seed ^ 1),
    ]
}

fn render(reports: &[AuditReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serialises"))
        .collect()
}

fn spawn_workers(prepared: &Arc<PreparedAudit>, plans: &[&str]) -> Vec<ShardWorker> {
    plans
        .iter()
        .map(|plan| {
            let counter =
                Arc::new(SpanCounter::new(prepared.clone()).expect("blocked engine is forced"));
            let fault = Arc::new(FaultPlan::from_str(plan).expect("benchmark fault plans parse"));
            ShardWorker::bind("127.0.0.1:0", counter, fault).expect("loopback bind")
        })
        .collect()
}

/// Runs the matrix through a coordinator over `workers`, returning
/// (wall ms, rendered reports, failure accounting).
fn run_distributed(
    prepared: &Arc<PreparedAudit>,
    workers: &[ShardWorker],
    requests: &[AuditRequest],
    dispatch_timeout_ms: u64,
) -> (f64, Vec<String>, ClusterStats) {
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let config = CoordinatorConfig {
        dispatch_timeout: dispatch_timeout_ms.saturating_mul(1_000),
        ..CoordinatorConfig::default()
    };
    let evaluator = DistributedEvaluator::new(
        prepared.clone(),
        &addrs,
        config,
        Arc::new(SystemClock::new()),
    )
    .expect("coordinator over at least one worker");
    let mut cache = WorldCache::new();
    let t = Instant::now();
    let (reports, _) = prepared.run_batch_cached_with(requests, &mut cache, Some(&evaluator));
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    (wall_ms, render(&reports), evaluator.stats())
}

fn row_from(
    mode: String,
    workers: usize,
    fault_plan: &str,
    wall_ms: f64,
    identical: bool,
    stats: ClusterStats,
) -> ClusterRow {
    ClusterRow {
        mode,
        workers,
        fault_plan: fault_plan.to_string(),
        wall_ms,
        identical,
        redispatches: stats.redispatches,
        deadline_misses: stats.deadline_misses,
        conn_errors: stats.conn_errors,
        corrupt_replies: stats.corrupt_replies,
        degraded_local_spans: stats.degraded_local_spans,
        completed_remote: stats.completed_remote,
    }
}

pub fn run(opts: &Options) {
    banner("cluster-bench: distributed shards vs single-process (bit-identity under faults)");

    let (outcomes, regions, base) = crate::serve_cmd::dataset(opts);
    let base = base.with_strategy(CountingStrategy::Blocked);
    let prepared = Arc::new(
        PreparedAudit::prepare(&outcomes, &regions, base)
            .expect("the synthetic benchmark dataset is auditable"),
    );
    let requests = request_matrix(opts);

    // Reference: the single-process transcript every row diffs against.
    let t = Instant::now();
    let reference = render(&prepared.run_batch(&requests));
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut rows = vec![row_from(
        "reference".to_string(),
        0,
        "",
        reference_ms,
        true,
        ClusterStats::default(),
    )];
    report_row(
        "single-process reference",
        "—",
        &format!("{reference_ms:.0} ms"),
    );

    // Healthy scaling: 1 → N workers, no faults.
    let healthy_counts: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4] };
    for &n in healthy_counts {
        let plans: Vec<&str> = vec![""; n];
        let workers = spawn_workers(&prepared, &plans);
        let (wall_ms, rendered, stats) =
            run_distributed(&prepared, &workers, &requests, opts.dispatch_timeout_ms);
        let identical = rendered == reference;
        report_row(
            &format!("healthy x{n} worker(s)"),
            "bit-identical",
            &format!(
                "{wall_ms:.0} ms, identical={identical}, remote spans {}",
                stats.completed_remote
            ),
        );
        rows.push(row_from(
            "healthy".to_string(),
            n,
            "",
            wall_ms,
            identical,
            stats,
        ));
    }

    // Fault rows: every recovery path, output still byte-identical.
    let fault_cases: &[(&str, &[&str])] = &[
        ("fault:kill-one", &["kill-after=2", "", ""]),
        (
            "fault:drop+corrupt",
            &["drop-at=1,drop-at=4", "corrupt-at=2", ""],
        ),
        ("fault:delay-redispatch", &["delay-at=1:300", "", ""]),
    ];
    for (mode, plans) in fault_cases {
        let workers = spawn_workers(&prepared, plans);
        // The delay case must out-wait the injected delay so the
        // deadline actually fires and the span re-dispatches.
        let timeout_ms = if mode.contains("delay") {
            50
        } else {
            opts.dispatch_timeout_ms
        };
        let (wall_ms, rendered, stats) =
            run_distributed(&prepared, &workers, &requests, timeout_ms);
        let identical = rendered == reference;
        let plan_desc = plans
            .iter()
            .filter(|p| !p.is_empty())
            .cloned()
            .collect::<Vec<_>>()
            .join(";");
        report_row(
            mode,
            "bit-identical",
            &format!(
                "{wall_ms:.0} ms, identical={identical}, redispatches {}, deadline misses {}, \
                 degraded {}",
                stats.redispatches, stats.deadline_misses, stats.degraded_local_spans
            ),
        );
        rows.push(row_from(
            mode.to_string(),
            plans.len(),
            &plan_desc,
            wall_ms,
            identical,
            stats,
        ));
    }

    // Graceful degradation: no live worker at all — the coordinator
    // recomputes every span locally and the audit still completes.
    {
        let dead = vec!["127.0.0.1:1".to_string()];
        let config = CoordinatorConfig {
            dispatch_timeout: opts.dispatch_timeout_ms.saturating_mul(1_000),
            connect_timeout_ms: 50,
            max_attempts: 1,
            dead_after: 1,
            ..CoordinatorConfig::default()
        };
        let evaluator = DistributedEvaluator::new(
            prepared.clone(),
            &dead,
            config,
            Arc::new(SystemClock::new()),
        )
        .expect("coordinator builds over a dead address");
        let mut cache = WorldCache::new();
        let t = Instant::now();
        let (reports, _) = prepared.run_batch_cached_with(&requests, &mut cache, Some(&evaluator));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let identical = render(&reports) == reference;
        let stats = evaluator.stats();
        report_row(
            "fault:all-dead (degrade local)",
            "bit-identical",
            &format!(
                "{wall_ms:.0} ms, identical={identical}, degraded {}",
                stats.degraded_local_spans
            ),
        );
        rows.push(row_from(
            "fault:all-dead".to_string(),
            1,
            "",
            wall_ms,
            identical,
            stats,
        ));
    }

    let all_identical = rows.iter().all(|r| r.identical);
    assert!(
        all_identical,
        "cluster-bench: a distributed row drifted from the single-process bytes"
    );

    let record = ClusterRecord {
        benchmark: "cluster".to_string(),
        quick: opts.quick,
        points: outcomes.len(),
        regions: regions.len(),
        worlds: requests[0].worlds,
        requests: requests.len(),
        rows,
    };
    // `--out` still wins, but the default artifact name is this PR's.
    let out = if opts.out == "BENCH_PR9.json" {
        "BENCH_PR10.json"
    } else {
        opts.out.as_str()
    };
    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    std::fs::write(out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("[cluster-bench] wrote {out} (every row bit-identical: {all_identical})");
}
