//! §3 complexity model: `O(M · N · Q)`.
//!
//! `M − 1` Monte Carlo worlds × `N` regions × `Q` per range-count.
//! This harness measures wall-clock while sweeping each factor
//! independently, and compares range-count backends (the `Q` factor)
//! — the quantitative side of the DESIGN.md ablations.

use crate::common::{banner, Options};
use sfdata::lar::{LarConfig, LarDataset};
use sfgeo::Region;
use sfindex::{BitLabels, BruteForceIndex, GridIndex, KdTree, QuadTree, RangeCount};
use sfscan::{AuditConfig, Auditor, RegionSet};
use sfstats::rng::derive_seed;
use std::time::Instant;

pub fn run(opts: &Options) {
    banner("§3 complexity — O(M*N*Q) measurements");
    // A mid-size LAR so sweeps stay fast.
    let lar = LarDataset::generate(&LarConfig {
        observations: if opts.quick { 10_000 } else { 50_000 },
        locations: if opts.quick { 2_500 } else { 12_000 },
        seed: opts.seed,
    });
    let outcomes = &lar.outcomes;
    println!("  dataset: N={} observations", outcomes.len());

    // --- sweep M (Monte Carlo worlds), fixed regions ---
    println!("\n  sweep M (worlds), fixed N=400 grid regions:");
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 20, 20);
    for worlds in [99, 199, 399, 799] {
        let config = opts.decorate(
            AuditConfig::new(0.01)
                .with_worlds(worlds)
                .with_seed(derive_seed(opts.seed, "complexity-m")),
        );
        let t = Instant::now();
        let _ = Auditor::new(config)
            .audit(outcomes, &regions)
            .expect("auditable");
        println!("    M-1 = {worlds:>4} worlds: {:>10.1?}", t.elapsed());
    }

    // --- sweep N (number of regions), fixed worlds ---
    println!("\n  sweep N (regions), fixed M-1=199 worlds:");
    for (nx, ny) in [(10, 5), (20, 10), (40, 20), (80, 40)] {
        let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), nx, ny);
        let config = opts.decorate(
            AuditConfig::new(0.01)
                .with_worlds(199)
                .with_seed(derive_seed(opts.seed, "complexity-n")),
        );
        let t = Instant::now();
        let _ = Auditor::new(config)
            .audit(outcomes, &regions)
            .expect("auditable");
        println!(
            "    N = {:>5} regions: {:>10.1?}",
            regions.len(),
            t.elapsed()
        );
    }

    // --- compare Q (range-count backends) ---
    println!("\n  compare Q (range-count backends), 2,000 square queries:");
    let points = outcomes.points().to_vec();
    let labels = BitLabels::from_bools(outcomes.labels());
    let queries: Vec<Region> = {
        let km = sfcluster::KMeans::fit(
            &lar.locations,
            &sfcluster::KMeansConfig::new(if opts.quick { 20 } else { 100 }, opts.seed),
        );
        RegionSet::squares(km.centers, &RegionSet::paper_side_lengths())
            .regions()
            .to_vec()
    };
    let t = Instant::now();
    let brute = BruteForceIndex::build(points.clone(), labels.clone());
    let build_brute = t.elapsed();
    let t = Instant::now();
    let kd = KdTree::build(points.clone(), labels.clone());
    let build_kd = t.elapsed();
    let t = Instant::now();
    let quad = QuadTree::build(points.clone(), labels.clone());
    let build_quad = t.elapsed();
    let t = Instant::now();
    let grid = GridIndex::build_auto(points.clone(), labels.clone(), 16);
    let build_grid = t.elapsed();

    let bench = |index: &dyn RangeCount| {
        let t = Instant::now();
        let mut acc = 0u64;
        for q in &queries {
            acc = acc.wrapping_add(index.count(q).n);
        }
        (t.elapsed(), acc)
    };
    let (t_brute, a) = bench(&brute);
    let (t_kd, b) = bench(&kd);
    let (t_quad, c) = bench(&quad);
    let (t_grid, d) = bench(&grid);
    assert!(a == b && b == c && c == d, "backends disagree");
    println!(
        "    brute force: build {build_brute:>9.1?}, {} queries {t_brute:>9.1?}",
        queries.len()
    );
    println!(
        "    kd-tree:     build {build_kd:>9.1?}, {} queries {t_kd:>9.1?}",
        queries.len()
    );
    println!(
        "    quadtree:    build {build_quad:>9.1?}, {} queries {t_quad:>9.1?}",
        queries.len()
    );
    println!(
        "    grid index:  build {build_grid:>9.1?}, {} queries {t_grid:>9.1?}",
        queries.len()
    );
    println!("\n  (criterion benches in crates/bench cover the same ablations with statistics)");
}
