//! `serve-bench`: batched multi-audit serving vs rebuild-per-request.
//!
//! The serving layer's promise is that the expensive artifacts (index,
//! membership CSR, region totals) and the simulated worlds are shared
//! across a request stream. This benchmark queues a mixed batch of
//! audit requests (directions × alphas × seeds × budget strategies),
//! serves it two ways —
//!
//! * **rebuild**: a fresh [`Auditor`] per request (engine rebuilt every
//!   time, worlds generated per request), and
//! * **batched**: one [`AuditServer`] holding one `PreparedAudit`,
//!   every request submitted then drained as a single batch —
//!
//! verifies the reports are **bit-identical**, and persists the
//! machine-readable comparison (throughput, speedup, world counts) so
//! the performance trajectory is tracked across PRs.

use crate::common::{banner, report_row, Options};
use serde::Serialize;
use sfdata::synth::SynthConfig;
use sfscan::prepared::AuditRequest;
use sfscan::{AuditConfig, Auditor, Direction, McStrategy, RegionSet};
use sfserve::AuditServer;
use std::time::Instant;

/// Machine-readable benchmark record (written to `--out`,
/// `BENCH_PR2.json` by default).
#[derive(Debug, Clone, Serialize)]
struct ServeBenchRecord {
    /// What produced this record.
    benchmark: String,
    /// Observations audited.
    points: usize,
    /// Candidate regions scanned.
    regions: usize,
    /// Monte Carlo budget per request (`w − 1`).
    worlds_per_request: usize,
    /// Queued audit requests.
    requests: usize,
    /// World-sharing groups the batch planned into.
    groups: usize,
    /// Rebuild-per-request wall time, milliseconds.
    rebuild_ms: f64,
    /// Batched-serving wall time, milliseconds.
    batched_ms: f64,
    /// `rebuild_ms / batched_ms`.
    speedup: f64,
    /// Rebuild path throughput, audits per second.
    rebuild_per_s: f64,
    /// Batched path throughput, audits per second.
    batched_per_s: f64,
    /// Worlds generated + counted by the rebuild path.
    rebuild_worlds: usize,
    /// Unique worlds generated + counted by the batched path.
    batched_unique_worlds: usize,
    /// Worlds answered from a shared stream instead of regenerated.
    worlds_shared: usize,
    /// Worlds early stopping saved across the batch.
    worlds_saved: usize,
    /// Reports bit-identical between the two paths.
    bit_identical: bool,
}

/// The deterministic request mix: directions × alphas × seeds with a
/// sprinkle of early stopping — the shape of a realistic multi-tenant
/// queue (many cheap knob variations over one dataset).
fn request_mix(base: &AuditConfig, count: usize) -> Vec<AuditRequest> {
    let directions = [Direction::TwoSided, Direction::High, Direction::Low];
    let alphas = [0.05, 0.01];
    (0..count)
        .map(|i| {
            let mut request = AuditRequest::from_config(base)
                .with_direction(directions[i % directions.len()])
                .with_seed(base.seed + (i / 12) as u64);
            request.alpha = alphas[(i / 3) % alphas.len()];
            if i % 8 == 7 {
                request = request.with_mc_strategy(McStrategy::early_stop());
            }
            request
        })
        .collect()
}

/// Runs the benchmark and writes the JSON record.
pub fn run(opts: &Options) {
    banner("serve-bench: batched serving vs rebuild-per-request");

    let n = if opts.quick { 4_000 } else { 20_000 };
    // Default per-request budget: the CLI default of 999 worlds is a
    // sensible audit setting but overkill for a timing comparison, so
    // an *unset* --worlds is reduced; an explicit --worlds is honored
    // (and quick mode clamps loudly, like every figure harness).
    let default_worlds = Options::default().worlds;
    let worlds = if opts.worlds == default_worlds {
        if opts.quick {
            99
        } else {
            199
        }
    } else {
        opts.effective_worlds()
    };
    if worlds != opts.worlds {
        println!(
            "[serve-bench] note: running {worlds} worlds per request \
             (--worlds {} {})",
            opts.worlds,
            if opts.worlds == default_worlds {
                "is the default; pass an explicit value to override"
            } else {
                "clamped by --quick"
            }
        );
    }
    // The acceptance target is defined over >= 16 queued audits.
    let num_requests = opts.requests.max(16);
    if num_requests != opts.requests {
        println!(
            "[serve-bench] note: raising --requests {} to the 16-audit minimum",
            opts.requests
        );
    }
    let outcomes = SynthConfig {
        per_half: n / 2,
        ..SynthConfig::paper()
    }
    .generate(opts.seed);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(worlds)
            .with_seed(opts.seed),
    );
    let requests = request_mix(&base, num_requests);
    println!(
        "[data] Synth: N={}, {} regions, {} requests x {} worlds",
        outcomes.len(),
        regions.len(),
        requests.len(),
        worlds
    );

    // Path A: rebuild the engine for every request (the pre-serving
    // architecture: one Auditor::audit call per request).
    let t = Instant::now();
    let rebuilt: Vec<_> = requests
        .iter()
        .map(|request| {
            Auditor::new(request.apply_to(base))
                .audit(&outcomes, &regions)
                .expect("auditable")
        })
        .collect();
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    let rebuild_worlds: usize = rebuilt.iter().map(|r| r.worlds_evaluated).sum();

    // Path B: prepare once, submit everything, drain one batch.
    let t = Instant::now();
    let mut server = AuditServer::new(&outcomes, &regions, base).expect("auditable");
    for request in &requests {
        server.submit(*request);
    }
    let responses = server.drain();
    let batched_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = *server.stats();

    let bit_identical = rebuilt.iter().zip(&responses).all(|(a, b)| *a == b.report);
    assert!(
        bit_identical,
        "batched serving must be bit-identical to sequential audits"
    );

    let groups = sfscan::prepared::ExecutionPlan::new(requests.clone())
        .groups()
        .len();
    let record = ServeBenchRecord {
        benchmark: "serve-bench".to_string(),
        points: outcomes.len(),
        regions: regions.len(),
        worlds_per_request: worlds,
        requests: requests.len(),
        groups,
        rebuild_ms,
        batched_ms,
        speedup: rebuild_ms / batched_ms,
        rebuild_per_s: requests.len() as f64 / (rebuild_ms / 1e3),
        batched_per_s: requests.len() as f64 / (batched_ms / 1e3),
        rebuild_worlds,
        batched_unique_worlds: stats.unique_worlds as usize,
        worlds_shared: stats.worlds_shared() as usize,
        worlds_saved: stats.worlds_saved() as usize,
        bit_identical,
    };

    report_row(
        "rebuild-per-request",
        "—",
        &format!("{rebuild_ms:.0} ms ({:.1} audits/s)", record.rebuild_per_s),
    );
    report_row(
        "batched shared engine",
        "—",
        &format!("{batched_ms:.0} ms ({:.1} audits/s)", record.batched_per_s),
    );
    report_row(
        "speedup",
        ">= 3x target",
        &format!("{:.2}x", record.speedup),
    );
    report_row(
        "worlds generated",
        &format!("{rebuild_worlds} sequential"),
        &format!(
            "{} unique ({} shared, {} saved)",
            record.batched_unique_worlds, record.worlds_shared, record.worlds_saved
        ),
    );

    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    std::fs::write(&opts.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("[serve-bench] wrote {}", opts.out);
}
