//! `serve-bench`: batched multi-audit serving vs rebuild-per-request,
//! warm-cache vs cold-batch serving, blocked vs scalar world counting,
//! and word-parallel vs scalar world *generation* on the same
//! workload.
//!
//! The serving layer's promise is that the expensive artifacts (index,
//! membership CSR, region totals) and the simulated worlds are shared
//! across a request stream — and, since the v2 [`AuditService`], across
//! *batches* via the per-session world cache. This benchmark queues a
//! mixed batch of audit requests (directions × alphas × seeds × budget
//! strategies), serves it five ways —
//!
//! * **rebuild**: a fresh [`Auditor`] per request (engine rebuilt every
//!   time, worlds generated per request),
//! * **batched**: one [`AuditService`] session, every request
//!   submitted (tickets) then flushed as a single cold batch,
//! * **warm**: the *same* requests resubmitted to the same session, so
//!   every world class replays its cached τ-stream — **zero** new
//!   simulated worlds, proven by `CacheStats`,
//! * **batched+blocked (scalar)**: a cold service with
//!   [`CountingStrategy::Blocked`] pinned to the historical
//!   [`WorldGen::Scalar`] stream, so every shared world is counted by
//!   masked popcounts over the Morton-blocked membership CSR (the
//!   pre-v2 baseline the word comparison is measured against), and
//! * **batched+blocked+word**: the same cold workload under
//!   [`WorldGen::Word`] — counting by popcnt *and* generation by bulk
//!   64-labels-per-pass Bernoulli draws written straight into the
//!   blocked layout words (the v2 fast path, and the default) —
//!
//! verifies all reports are **bit-identical** within their generator
//! version, isolates the per-world counting pass (scalar `count_at`
//! membership replay vs blocked popcnt sweep, asserted `>= 3x` at
//! full scale) *and* the per-world generation pass (scalar `gen_bool`
//! per point vs word-parallel bulk draws, asserted `>= 4x` at full
//! scale, with the cold word batch asserted `>= 2x` end to end), and
//! persists the machine-readable comparison so the performance
//! trajectory is tracked across PRs (`BENCH_PR9.json`; format
//! documented in the README's benchmark-artifact section).
//!
//! The sharded engine (PR 6) gets three sections of its own:
//!
//! * **sharded eval isolation** — the per-world τ fold alone, plain
//!   [`ScanEngine::eval_world_into`] vs the shard-partial
//!   `eval_world_into_sharded` reduce over the same word worlds, τ
//!   equality asserted per world;
//! * **single cold audit** — one request served by a sequential
//!   unsharded engine vs the parallel sharded engine, bit-identity
//!   asserted and the speedup asserted `>= 2.5x` at full scale on
//!   machines with at least 4 cores;
//! * **points scaling** — the same serial-vs-parallel single audit
//!   swept over dataset sizes, recorded as `scaling` rows.
//!
//! The pluggable-statistic layer (this PR) gets a **statistic
//! isolation** section: every [`Statistic`] scores the same word
//! worlds through `eval_world_into_with`, so the timing difference is
//! the per-region score fold alone (counting is shared). BernoulliLlr
//! through the kernel plumbing is asserted bit-identical to the engine
//! default fold, EqualOppTpr is asserted bit-identical to BernoulliLlr
//! over the same binary stream (it is the same LLR on a conditioned
//! population), and MeanResidual — a genuinely different score — is
//! asserted finite and different.
//!
//! The serving-v3 network layer (PR 9) gets a **socket load** section:
//! a live [`sfnet::AuditTcpServer`] hosts the same dataset on an
//! ephemeral port, one cold client and then several concurrent warm
//! clients replay the same request mix over real TCP connections, and
//! every transcript is asserted **byte-identical** to the in-process
//! JSONL path (connection-local tickets plus batch-invariant reports
//! make the network, the worker pool, and the drain policy invisible
//! in the bytes). Drain-latency percentiles come from the executor's
//! wall clock, sustained RPS from the warm phase, and a capacity-1
//! probe server must shed overflow with `"busy"` envelopes instead of
//! queuing without bound.
//!
//! The counting-kernel layer (PR 7) gets a **kernel isolation**
//! section: every popcount kernel the CPU supports (scalar reference,
//! portable unrolled, AVX2 Harley–Seal, AVX-512 `vpopcntdq`) is timed
//! three ways — the raw dense-range popcount (where SIMD lives), the
//! per-world `count_all_into_with` sweep, and the fused multi-world
//! `count_all_many_into` sweep that loads each CSR run/mask once per
//! [`MAX_FUSED_WORLDS`]-world batch — with every count asserted equal
//! to the pinned scalar reference. The acceptance number is the
//! *scalar-kernel* fused sweep over the PR 6 per-world baseline
//! (asserted `>= 1.3x` at full scale: pure CSR-stream amortization, no
//! SIMD, no threads); SIMD popcount gains are reported always and
//! asserted only when the CPU feature is detected.
//!
//! The record also carries a `trajectory` block: the headline numbers
//! of every benchmarked PR so far (hardcoded from the committed
//! `BENCH_PR*.json` artifacts) plus this run, so one file shows the
//! performance history.

use crate::common::{banner, report_row, Options};
use serde::Serialize;
use sfdata::synth::SynthConfig;
use sfindex::{CountingKernel, MAX_FUSED_WORLDS};
use sfnet::{AuditTcpServer, ExecutorConfig, NetExecutor, SystemClock};
use sfscan::engine::ScanEngine;
use sfscan::prepared::{AuditRequest, PreparedAudit};
use sfscan::{
    AuditConfig, Auditor, CountingStrategy, Direction, McStrategy, NullModel, RegionSet, Statistic,
    WorldGen,
};
use sfserve::{
    AuditService, DatasetHandle, DrainPolicy, RequestEnvelope, ResponseEnvelope, WireStatus,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The speedup the blocked counting path must clear over the scalar
/// membership replay at full scale (the PR 3 acceptance bar).
const COUNTING_SPEEDUP_TARGET: f64 = 3.0;

/// The cold world-generation speedup `WorldGen::Word` must clear over
/// `WorldGen::Scalar` on the blocked engine at full scale (the PR 5
/// acceptance bar)…
const WORLD_GEN_SPEEDUP_TARGET: f64 = 4.0;

/// …and the end-to-end cold-batch speedup of the word path over the
/// scalar path on the same blocked serving workload.
const WORD_BATCH_SPEEDUP_TARGET: f64 = 2.0;

/// The cold single-audit speedup the parallel sharded engine must
/// clear over the sequential unsharded engine at full scale (the PR 6
/// acceptance bar) — asserted only on machines with at least
/// [`MIN_CORES_FOR_SHARD_ASSERT`] cores, since the fan-out cannot beat
/// the sequential walk without hardware to fan out to.
const SINGLE_AUDIT_SPEEDUP_TARGET: f64 = 2.5;

/// Core floor for the single-audit speedup assertion.
const MIN_CORES_FOR_SHARD_ASSERT: usize = 4;

/// The speedup the fused multi-world sweep (scalar kernel — no SIMD,
/// no parallelism) must clear over the per-world blocked counting
/// baseline at full scale (the PR 7 acceptance bar). The gain is pure
/// CSR-stream amortization: each dense range and partial mask is
/// loaded once per [`MAX_FUSED_WORLDS`]-world batch instead of once
/// per world.
const FUSED_SPEEDUP_TARGET: f64 = 1.3;

/// The raw dense-range popcount speedup a *detected* SIMD kernel must
/// clear over the pinned scalar loop at full scale. Reported for every
/// supported kernel; asserted only for AVX2/AVX-512 when the CPU has
/// the feature (SIMD gains are reported always, asserted only when
/// detected).
const SIMD_POPCOUNT_TARGET: f64 = 1.05;

/// One `kernels` row: a supported popcount kernel's isolated timings
/// on this workload (all bit-identical to the scalar reference by
/// assertion; the columns differ only in speed).
#[derive(Debug, Clone, Serialize)]
struct KernelRow {
    /// Kernel name (`scalar`, `portable`, `avx2`, `avx512`).
    kernel: String,
    /// Raw dense-range popcount over the timed worlds' words, ms.
    popcount_ms: f64,
    /// Scalar popcount time / this kernel's — the SIMD gain.
    popcount_speedup: f64,
    /// Per-world `count_all_into_with` sweep under this kernel, ms.
    count_ms: f64,
    /// Per-world baseline `counting_blocked_ms` / `count_ms`.
    count_speedup: f64,
    /// Fused multi-world `count_all_many_into` sweep, ms.
    fused_ms: f64,
    /// Per-world baseline `counting_blocked_ms` / `fused_ms`.
    fused_speedup: f64,
}

/// One `statistics` row: a pluggable test statistic's isolated
/// world-evaluation timing on this workload (counting is shared; only
/// the per-region score fold differs).
#[derive(Debug, Clone, Serialize)]
struct StatisticRow {
    /// Statistic token (`bernoulli-llr`, `equal-opp-tpr`,
    /// `mean-residual`).
    statistic: String,
    /// `eval_world_into_with(statistic, …)` over the timed worlds, ms.
    eval_ms: f64,
    /// BernoulliLlr eval time / this statistic's — the fold-swap cost
    /// (≈ 1.0 when the kernel abstraction is free).
    relative: f64,
}

/// One `scaling` sweep row: the serial-vs-sharded single cold audit
/// at one dataset size.
#[derive(Debug, Clone, Serialize)]
struct ScalingRow {
    /// Observations audited at this size.
    points: usize,
    /// Sequential unsharded single-audit serve time, milliseconds.
    serial_ms: f64,
    /// Parallel sharded single-audit serve time, milliseconds.
    parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    speedup: f64,
}

/// One `trajectory` row: a headline metric of a benchmarked PR
/// (hardcoded from that PR's committed `BENCH_PR*.json`) or of this
/// run.
#[derive(Debug, Clone, Serialize)]
struct TrajectoryPoint {
    /// Which PR measured it.
    pr: String,
    /// Metric name (matches the record field of that PR's artifact).
    metric: String,
    /// Measured value.
    value: f64,
}

/// Machine-readable benchmark record (written to `--out`,
/// `BENCH_PR9.json` by default).
#[derive(Debug, Clone, Serialize)]
struct ServeBenchRecord {
    /// What produced this record.
    benchmark: String,
    /// Cores available to the run (`std::thread::available_parallelism`);
    /// the shard assertions are gated on this.
    cores: usize,
    /// Observations audited.
    points: usize,
    /// Candidate regions scanned.
    regions: usize,
    /// Monte Carlo budget per request (`w − 1`).
    worlds_per_request: usize,
    /// Queued audit requests.
    requests: usize,
    /// World-sharing groups the batch planned into.
    groups: usize,
    /// Rebuild-per-request wall time, milliseconds.
    rebuild_ms: f64,
    /// Batched-serving wall time, milliseconds.
    batched_ms: f64,
    /// Batched serving with blocked counting, milliseconds.
    batched_blocked_ms: f64,
    /// One-time session registration (engine build) inside
    /// `batched_ms`, milliseconds.
    register_ms: f64,
    /// The same requests resubmitted to the warmed session, ms.
    warm_ms: f64,
    /// `(batched_ms − register_ms) / warm_ms` — what the cross-batch
    /// world cache saves a repeat batch, serve time vs serve time (a
    /// repeat never pays registration).
    warm_speedup: f64,
    /// Worlds simulated by the warm batch (asserted **0**).
    warm_unique_worlds: u64,
    /// Worlds the warm batch replayed from the session cache.
    warm_worlds_replayed: u64,
    /// Warm-batch group executions that hit the cache.
    warm_cache_hits: u64,
    /// Warm responses byte-equal to the cold ones (asserted).
    warm_bit_identical: bool,
    /// `rebuild_ms / batched_ms`.
    speedup: f64,
    /// `rebuild_ms / batched_blocked_ms`.
    blocked_speedup: f64,
    /// Rebuild path throughput, audits per second.
    rebuild_per_s: f64,
    /// Batched path throughput, audits per second.
    batched_per_s: f64,
    /// Batched+blocked throughput, audits per second.
    batched_blocked_per_s: f64,
    /// Worlds generated + counted by the rebuild path.
    rebuild_worlds: usize,
    /// Unique worlds generated + counted by the batched path.
    batched_unique_worlds: usize,
    /// Worlds answered from a shared stream instead of regenerated.
    worlds_shared: usize,
    /// Worlds early stopping saved across the batch.
    worlds_saved: usize,
    /// Reports bit-identical across all three paths.
    bit_identical: bool,
    /// Counting isolation: worlds timed in the scalar-vs-blocked pass.
    counting_worlds: usize,
    /// Scalar `count_at` membership replay over those worlds, ms.
    counting_scalar_ms: f64,
    /// Blocked masked-popcount sweep over the same worlds, ms.
    counting_blocked_ms: f64,
    /// `counting_scalar_ms / counting_blocked_ms` — the tentpole
    /// number; asserted `>= 3` at full scale.
    counting_speedup: f64,
    /// Measured mask density of the blocked compilation (member ids
    /// per touched 64-bit word under the Morton layout).
    blocked_ids_per_word: f64,
    /// Per-region counts identical between scalar and blocked on every
    /// timed world.
    counting_bit_identical: bool,
    /// The kernel `Auto` resolves to on this machine (what the
    /// production engines run with by default).
    kernel_auto: String,
    /// Worlds a fused CSR pass is ANDed against (`MAX_FUSED_WORLDS`).
    fused_width: usize,
    /// Per-kernel isolated timings (one row per kernel the CPU
    /// supports).
    kernels: Vec<KernelRow>,
    /// `counting_blocked_ms` / the *scalar-kernel* fused sweep — the
    /// PR 7 tentpole number: CSR-stream amortization alone, asserted
    /// `>= 1.3x` at full scale.
    fused_speedup: f64,
    /// Every kernel's popcounts, per-world counts, and fused counts
    /// identical to the pinned scalar reference (asserted).
    kernel_bit_identical: bool,
    /// Generation isolation: worlds timed in the scalar-vs-word pass.
    gen_worlds: usize,
    /// Scalar (`gen_bool` per point) world generation over those
    /// worlds on the blocked engine, Bernoulli null, ms.
    gen_scalar_ms: f64,
    /// Word-parallel bulk generation over the same configuration, ms.
    gen_word_ms: f64,
    /// `gen_scalar_ms / gen_word_ms` — the PR 5 tentpole number;
    /// asserted `>= 4` at full scale.
    gen_speedup: f64,
    /// Serve-only time of the cold blocked batch (scalar generation),
    /// ms — the word comparison's baseline.
    blocked_serve_ms: f64,
    /// Serve-only time of the same cold batch under `WorldGen::Word`,
    /// ms.
    word_serve_ms: f64,
    /// `blocked_serve_ms / word_serve_ms` — end-to-end cold-batch
    /// gain of word generation; asserted `>= 2` at full scale.
    word_batch_speedup: f64,
    /// Word-path reports bit-identical between the blocked service and
    /// a scalar-strategy prepared engine (per-world label sets agree
    /// across storage layouts), and word-world per-region counts
    /// identical between membership and blocked counting.
    word_bit_identical: bool,
    /// Shards the isolation engine was split into (≥ 2 so the
    /// shard-partial reduce is exercised even on one core).
    shards: usize,
    /// Sharded eval isolation: worlds timed in the plain-vs-sharded
    /// τ-fold pass.
    shard_eval_worlds: usize,
    /// Plain `eval_world_into` over those worlds, ms.
    shard_eval_plain_ms: f64,
    /// Shard-partial `eval_world_into_sharded` reduce over the same
    /// worlds, ms.
    shard_eval_sharded_ms: f64,
    /// `shard_eval_plain_ms / shard_eval_sharded_ms`.
    shard_eval_speedup: f64,
    /// Every timed world's τ fold identical between the two paths
    /// (asserted).
    shard_eval_bit_identical: bool,
    /// Single cold audit on the sequential unsharded engine, ms
    /// (serve only; engine build excluded).
    serial_audit_ms: f64,
    /// The same audit on the parallel sharded engine, ms.
    sharded_audit_ms: f64,
    /// `serial_audit_ms / sharded_audit_ms` — the PR 6 tentpole
    /// number; asserted `>= 2.5` at full scale on `>= 4` cores.
    single_audit_speedup: f64,
    /// Serial and sharded single-audit reports byte-equal after
    /// aligning the `shards`/`parallel` config knobs (asserted).
    sharded_bit_identical: bool,
    /// Statistic isolation: worlds timed in the per-kernel τ-fold pass.
    statistic_worlds: usize,
    /// Per-statistic isolated world-evaluation timings.
    statistics: Vec<StatisticRow>,
    /// BernoulliLlr-through-the-kernel τ identical to the engine
    /// default fold on every timed world, and EqualOppTpr identical to
    /// BernoulliLlr over the same binary stream (asserted).
    statistic_bit_identical: bool,
    /// The serial-vs-sharded single audit swept over dataset sizes.
    scaling: Vec<ScalingRow>,
    /// Socket load: concurrent warm-phase client threads.
    net_clients: usize,
    /// Socket load: total accepted requests across both phases
    /// (`(1 + net_clients) × requests`, asserted against
    /// `requests_served`).
    net_requests: usize,
    /// Socket load: cold single-client phase wall time (connect, send
    /// the whole mix, read every response), milliseconds.
    net_cold_ms: f64,
    /// Socket load: warm multi-client phase wall time, milliseconds.
    net_warm_ms: f64,
    /// Socket load: sustained warm-phase throughput, requests per
    /// second across all clients.
    net_rps: f64,
    /// Socket load: median submit→drain latency on the executor's wall
    /// clock, microseconds.
    net_drain_p50_us: u64,
    /// Socket load: p99 submit→drain latency, microseconds.
    net_drain_p99_us: u64,
    /// Overload probe: `"busy"` envelopes a capacity-1 server answered
    /// while its only slot was occupied (asserted `> 0`).
    net_busy_lines: usize,
    /// Every socket transcript byte-equal to the in-process JSONL
    /// path's stdout for the same lines (asserted).
    net_bit_identical: bool,
    /// Headline numbers of every benchmarked PR plus this run.
    trajectory: Vec<TrajectoryPoint>,
}

/// The deterministic request mix: directions × alphas × seeds with a
/// sprinkle of early stopping — the shape of a realistic multi-tenant
/// queue (many cheap knob variations over one dataset).
fn request_mix(base: &AuditConfig, count: usize) -> Vec<AuditRequest> {
    let directions = [Direction::TwoSided, Direction::High, Direction::Low];
    let alphas = [0.05, 0.01];
    (0..count)
        .map(|i| {
            let mut request = AuditRequest::from_config(base)
                .with_direction(directions[i % directions.len()])
                .with_seed(base.seed + (i / 12) as u64);
            request.alpha = alphas[(i / 3) % alphas.len()];
            if i % 8 == 7 {
                request = request.with_mc_strategy(McStrategy::early_stop());
            }
            request
        })
        .collect()
}

/// One socket client: connect, send every line, half-close the write
/// side (the server's EOF/flush signal), read the full response
/// transcript.
fn socket_replay(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("live server accepts");
    for line in lines {
        writeln!(stream, "{line}").expect("socket is writable");
    }
    stream
        .shutdown(Shutdown::Write)
        .expect("write half-close signals EOF");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("socket is readable"))
        .collect()
}

/// Runs the benchmark and writes the JSON record.
pub fn run(opts: &Options) {
    banner("serve-bench: batched serving vs rebuild-per-request");

    let n = if opts.quick { 4_000 } else { 20_000 };
    // Default per-request budget: the CLI default of 999 worlds is a
    // sensible audit setting but overkill for a timing comparison, so
    // an *unset* --worlds is reduced; an explicit --worlds is honored
    // (and quick mode clamps loudly, like every figure harness).
    let default_worlds = Options::default().worlds;
    let worlds = if opts.worlds == default_worlds {
        if opts.quick {
            99
        } else {
            199
        }
    } else {
        opts.effective_worlds()
    };
    if worlds != opts.worlds {
        println!(
            "[serve-bench] note: running {worlds} worlds per request \
             (--worlds {} {})",
            opts.worlds,
            if opts.worlds == default_worlds {
                "is the default; pass an explicit value to override"
            } else {
                "clamped by --quick"
            }
        );
    }
    // The acceptance target is defined over >= 16 queued audits.
    let num_requests = opts.requests.max(16);
    if num_requests != opts.requests {
        println!(
            "[serve-bench] note: raising --requests {} to the 16-audit minimum",
            opts.requests
        );
    }
    let outcomes = SynthConfig {
        per_half: n / 2,
        ..SynthConfig::paper()
    }
    .generate(opts.seed);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let base = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(worlds)
            .with_seed(opts.seed),
    );
    let requests = request_mix(&base, num_requests);
    println!(
        "[data] Synth: N={}, {} regions, {} requests x {} worlds",
        outcomes.len(),
        regions.len(),
        requests.len(),
        worlds
    );

    // Path A: rebuild the engine for every request (the pre-serving
    // architecture: one Auditor::audit call per request).
    let t = Instant::now();
    let rebuilt: Vec<_> = requests
        .iter()
        .map(|request| {
            Auditor::new(request.apply_to(base))
                .audit(&outcomes, &regions)
                .expect("auditable")
        })
        .collect();
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    let rebuild_worlds: usize = rebuilt.iter().map(|r| r.worlds_evaluated).sum();

    // Path B: register once, submit everything (tickets), flush one
    // cold batch. Registration (the one-time engine build) is timed
    // separately so the warm comparison below is serve-vs-serve.
    let t = Instant::now();
    let mut service = AuditService::new();
    let handle = service
        .register(&outcomes, &regions, base)
        .expect("auditable");
    let register_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    for request in &requests {
        service.submit(handle, *request).expect("valid request");
    }
    service.flush();
    let responses = service.take_ready();
    let batched_serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let batched_ms = register_ms + batched_serve_ms;
    let stats = *service.stats();

    // Path B': the SAME requests against the warmed session — every
    // world class replays its cached τ-stream; nothing is simulated.
    let t = Instant::now();
    for request in &requests {
        service.submit(handle, *request).expect("valid request");
    }
    service.flush();
    let warm_responses = service.take_ready();
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_stats = *service.stats();
    let warm_unique_worlds = warm_stats.unique_worlds - stats.unique_worlds;
    let warm_worlds_replayed = warm_stats.worlds_replayed - stats.worlds_replayed;
    let warm_cache_hits = warm_stats.cache_hits - stats.cache_hits;
    let warm_bit_identical = responses
        .iter()
        .zip(&warm_responses)
        .all(|(a, b)| a.report == b.report);
    assert!(
        warm_bit_identical,
        "warm-cache responses must be bit-identical to the cold batch"
    );
    assert_eq!(
        warm_unique_worlds, 0,
        "a repeat batch must simulate ZERO new worlds ({warm_stats:?})"
    );
    assert!(warm_worlds_replayed > 0 && warm_cache_hits > 0);

    // Path C: a cold service with blocked world counting, pinned to
    // the historical Scalar generator — the pre-v2 baseline the word
    // comparison below is measured against (the default path no longer
    // runs Scalar anywhere). Register is timed separately so the word
    // comparison is serve-vs-serve.
    let blocked_base = base
        .with_strategy(CountingStrategy::Blocked)
        .with_worldgen(WorldGen::Scalar);
    let scalar_requests: Vec<AuditRequest> = requests
        .iter()
        .map(|r| r.with_worldgen(WorldGen::Scalar))
        .collect();
    let t = Instant::now();
    let mut blocked_service = AuditService::new();
    let blocked_handle = blocked_service
        .register(&outcomes, &regions, blocked_base)
        .expect("auditable");
    let blocked_register_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    for request in &scalar_requests {
        blocked_service
            .submit(blocked_handle, *request)
            .expect("valid request");
    }
    blocked_service.flush();
    let blocked_responses = blocked_service.take_ready();
    let blocked_serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let batched_blocked_ms = blocked_register_ms + blocked_serve_ms;

    // Path D: the same cold workload under WorldGen::Word — blocked
    // popcnt counting plus word-parallel generation, the full v2 fast
    // path. Word worlds are a different (statistically equivalent)
    // stream, so these responses are compared against their own
    // scalar-strategy reference, not against Path C's.
    let word_requests: Vec<AuditRequest> = requests
        .iter()
        .map(|r| r.with_worldgen(WorldGen::Word))
        .collect();
    let mut word_service = AuditService::new();
    let word_handle = word_service
        .register(
            &outcomes,
            &regions,
            blocked_base.with_worldgen(WorldGen::Word),
        )
        .expect("auditable");
    let t = Instant::now();
    for request in &word_requests {
        word_service
            .submit(word_handle, *request)
            .expect("valid request");
    }
    word_service.flush();
    let word_responses = word_service.take_ready();
    let word_serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let word_batch_speedup = blocked_serve_ms / word_serve_ms;

    // Word bit-identity across counting strategies: the blocked
    // service's word reports must equal a scalar-strategy prepared
    // engine's word reports (same physical labels, different storage
    // layout).
    let word_reference = PreparedAudit::prepare(&outcomes, &regions, base)
        .expect("auditable")
        .run_batch(&word_requests);
    let mut word_bit_identical = word_reference.iter().zip(&word_responses).all(|(a, b)| {
        let mut report = b.report.clone();
        report.config.strategy = a.config.strategy;
        *a == report
    });

    // Path C draws the Scalar stream, so its reference is a
    // scalar-worldgen rebuild, not Path A's word reports.
    let scalar_reference: Vec<_> = scalar_requests
        .iter()
        .map(|request| {
            Auditor::new(request.apply_to(base))
                .audit(&outcomes, &regions)
                .expect("auditable")
        })
        .collect();
    let bit_identical = rebuilt.iter().zip(&responses).all(|(a, b)| *a == b.report)
        && scalar_reference
            .iter()
            .zip(&blocked_responses)
            .all(|(a, b)| {
                // The report embeds its config; align the strategy knob so
                // the comparison checks the *results* are bit-identical.
                let mut report = b.report.clone();
                report.config.strategy = a.config.strategy;
                *a == report
            });
    assert!(
        bit_identical,
        "batched serving (word and blocked+scalar) must be bit-identical to sequential audits"
    );

    // Counting isolation: the per-world `p(R)` recount pass alone —
    // scalar `count_at` membership replay vs the blocked popcnt sweep
    // — over this workload's engine, regions, and world stream. The
    // engines expose the exact counting structures production serves
    // with, so the timed code is the production path, built once.
    let scalar_engine = ScanEngine::build_with(
        &outcomes,
        &regions,
        base.backend,
        CountingStrategy::Membership,
    )
    .expect("auditable");
    let blocked_engine =
        ScanEngine::build_with(&outcomes, &regions, base.backend, CountingStrategy::Blocked)
            .expect("auditable");
    let membership = scalar_engine
        .membership()
        .expect("membership strategy engines expose their lists");
    let blocked = blocked_engine
        .blocked()
        .expect("blocked strategy engines expose their masks");
    let counting_worlds = worlds;
    let mut scalar_counts = Vec::new();
    let mut blocked_counts = Vec::new();
    let mut counting_bit_identical = true;
    let mut counting_scalar_ms = 0.0f64;
    let mut counting_blocked_ms = 0.0f64;
    for w in 0..counting_worlds {
        // Same world drawn once per layout (identical RNG streams).
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        let world = scalar_engine.generate_world(NullModel::Bernoulli, &mut rng);
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        let blocked_world = blocked_engine.generate_world(NullModel::Bernoulli, &mut rng);

        let t = Instant::now();
        membership.count_all_into(&world, &mut scalar_counts);
        counting_scalar_ms += t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        blocked.count_all_into(&blocked_world, &mut blocked_counts);
        counting_blocked_ms += t.elapsed().as_secs_f64() * 1e3;

        counting_bit_identical &= scalar_counts == blocked_counts;
    }
    assert!(
        counting_bit_identical,
        "blocked counting must be bit-identical to the scalar membership replay"
    );
    let counting_speedup = counting_scalar_ms / counting_blocked_ms;
    if !opts.quick {
        assert!(
            counting_speedup >= COUNTING_SPEEDUP_TARGET,
            "blocked counting speedup {counting_speedup:.2}x below the \
             {COUNTING_SPEEDUP_TARGET}x target"
        );
    }

    // Kernel isolation: the same per-world recount, swept over every
    // popcount kernel the CPU supports, in three shapes — the raw
    // dense-range popcount (where SIMD lives), the per-world
    // count_all_into sweep, and the fused multi-world sweep that loads
    // each CSR run/mask once per MAX_FUSED_WORLDS-world batch. Worlds
    // are pre-generated on the same RNG streams as the baseline above,
    // so every timing is counting-only over the identical workload.
    let kernel_auto = blocked_engine.kernel();
    let kernel_worlds: Vec<_> = (0..counting_worlds)
        .map(|w| {
            let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
            blocked_engine.generate_world(NullModel::Bernoulli, &mut rng)
        })
        .collect();
    // Scalar per-region reference counts for every world, computed
    // once outside the timed loops; fused batches pre-sliced so the
    // timers see only counting work.
    let reference_counts: Vec<Vec<u64>> = kernel_worlds
        .iter()
        .map(|world| {
            let mut counts = Vec::new();
            blocked.count_all_into(world, &mut counts);
            counts
        })
        .collect();
    let fused_batches: Vec<Vec<_>> = kernel_worlds
        .chunks(MAX_FUSED_WORLDS)
        .map(|batch| batch.iter().collect())
        .collect();
    let reference_ones: u64 = kernel_worlds.iter().map(|w| w.count_ones()).sum();
    let popcount_reps = if opts.quick { 400 } else { 2_000 };
    let mut kernel_rows: Vec<KernelRow> = Vec::new();
    let mut kernel_bit_identical = true;
    let mut scalar_popcount_ms = f64::NAN;
    let mut fused_scalar_ms = f64::NAN;
    let mut matrix = Vec::new();
    for kernel in CountingKernel::ALL {
        if !kernel.is_supported() {
            continue;
        }
        // Raw popcount: the dense-range inner loop in isolation, over
        // every world's full word buffer, repeated so timer noise
        // averages out; the accumulated total pins bit-identity and
        // keeps the optimizer honest.
        let mut ones = 0u64;
        let t = Instant::now();
        for _ in 0..popcount_reps {
            for world in &kernel_worlds {
                ones += kernel.popcount(world.blocks());
            }
        }
        let popcount_ms = t.elapsed().as_secs_f64() * 1e3;
        kernel_bit_identical &= ones == reference_ones * popcount_reps as u64;

        // Per-world sweep under this kernel (timed), then an untimed
        // pass asserting every count against the scalar reference.
        let t = Instant::now();
        for world in &kernel_worlds {
            blocked.count_all_into_with(world, kernel, &mut blocked_counts);
        }
        let count_ms = t.elapsed().as_secs_f64() * 1e3;
        for (world, reference) in kernel_worlds.iter().zip(&reference_counts) {
            blocked.count_all_into_with(world, kernel, &mut blocked_counts);
            kernel_bit_identical &= blocked_counts == *reference;
        }

        // Fused multi-world sweep: one CSR pass per batch (timed),
        // then the same untimed bit-identity pass per batch entry.
        blocked.count_all_many_into(&fused_batches[0], kernel, &mut matrix);
        let t = Instant::now();
        for refs in &fused_batches {
            blocked.count_all_many_into(refs, kernel, &mut matrix);
        }
        let fused_ms = t.elapsed().as_secs_f64() * 1e3;
        for (c, refs) in fused_batches.iter().enumerate() {
            blocked.count_all_many_into(refs, kernel, &mut matrix);
            for (w, _) in refs.iter().enumerate() {
                let reference = &reference_counts[c * MAX_FUSED_WORLDS + w];
                for (r, &expected) in reference.iter().enumerate() {
                    kernel_bit_identical &= matrix[r * refs.len() + w] == expected;
                }
            }
        }

        if kernel == CountingKernel::Scalar {
            scalar_popcount_ms = popcount_ms;
            fused_scalar_ms = fused_ms;
        }
        kernel_rows.push(KernelRow {
            kernel: kernel.name().to_string(),
            popcount_ms,
            popcount_speedup: scalar_popcount_ms / popcount_ms,
            count_ms,
            count_speedup: counting_blocked_ms / count_ms,
            fused_ms,
            fused_speedup: counting_blocked_ms / fused_ms,
        });
    }
    assert!(
        kernel_bit_identical,
        "every kernel must reproduce the scalar reference counts bit for bit"
    );
    let fused_speedup = counting_blocked_ms / fused_scalar_ms;
    if !opts.quick {
        assert!(
            fused_speedup >= FUSED_SPEEDUP_TARGET,
            "fused multi-world sweep (scalar kernel) speedup {fused_speedup:.2}x \
             below the {FUSED_SPEEDUP_TARGET}x target over the per-world baseline"
        );
        for row in &kernel_rows {
            if row.kernel == "avx2" || row.kernel == "avx512" {
                assert!(
                    row.popcount_speedup >= SIMD_POPCOUNT_TARGET,
                    "{} popcount speedup {:.2}x below the {SIMD_POPCOUNT_TARGET}x \
                     target (feature is detected, so the gain is asserted)",
                    row.kernel,
                    row.popcount_speedup
                );
            }
        }
    }

    // Generation isolation: the per-world label-draw pass alone —
    // scalar `gen_bool` per point vs word-parallel bulk draws — on the
    // blocked engine (Bernoulli null), the exact configuration the v2
    // serve path runs cold. The drawn totals are accumulated so the
    // optimizer cannot elide a pass.
    let gen_worlds = worlds;
    let mut gen_scalar_ones = 0u64;
    let t = Instant::now();
    for w in 0..gen_worlds {
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        gen_scalar_ones += blocked_engine
            .generate_world_with(NullModel::Bernoulli, WorldGen::Scalar, &mut rng)
            .count_ones();
    }
    let gen_scalar_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut gen_word_ones = 0u64;
    let t = Instant::now();
    for w in 0..gen_worlds {
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        gen_word_ones += blocked_engine
            .generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng)
            .count_ones();
    }
    let gen_word_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(gen_scalar_ones > 0 && gen_word_ones > 0);
    let gen_speedup = gen_scalar_ms / gen_word_ms;
    if !opts.quick {
        assert!(
            gen_speedup >= WORLD_GEN_SPEEDUP_TARGET,
            "word generation speedup {gen_speedup:.2}x below the \
             {WORLD_GEN_SPEEDUP_TARGET}x target"
        );
        assert!(
            word_batch_speedup >= WORD_BATCH_SPEEDUP_TARGET,
            "cold word batch speedup {word_batch_speedup:.2}x below the \
             {WORD_BATCH_SPEEDUP_TARGET}x target"
        );
    }

    // Word-world count integrity across layouts: the same word world,
    // generated by the scalar-strategy and blocked engines, must
    // produce identical per-region counts (the harness that pins the
    // cross-strategy bit-identity of the τ comparison above, at the
    // counting level).
    for w in 0..counting_worlds.min(64) {
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        let mw = scalar_engine.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        let bw = blocked_engine.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);
        membership.count_all_into(&mw, &mut scalar_counts);
        blocked.count_all_into(&bw, &mut blocked_counts);
        word_bit_identical &= scalar_counts == blocked_counts;
    }
    assert!(
        word_bit_identical,
        "word worlds must be bit-identical across counting strategies"
    );

    // Sharded eval isolation: the per-world τ fold alone — the plain
    // full-CSR sweep vs the shard-partial popcnt reduce — on one
    // blocked engine carrying both paths. The shard count is floored
    // at 2 so the partial-sum reduce is exercised (and its
    // bit-identity asserted) even on a single-core machine.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let shards = opts.shards.resolve(n.div_ceil(64)).max(2);
    let sharded_engine =
        ScanEngine::build_with(&outcomes, &regions, base.backend, CountingStrategy::Blocked)
            .expect("auditable")
            .with_shards(sfscan::Shards::Fixed(shards));
    let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
    let shard_eval_worlds = worlds;
    let mut shard_eval_plain_ms = 0.0f64;
    let mut shard_eval_sharded_ms = 0.0f64;
    let mut shard_eval_bit_identical = true;
    let mut plain_taus = vec![0.0f64; dirs.len()];
    let mut sharded_taus = vec![0.0f64; dirs.len()];
    for w in 0..shard_eval_worlds {
        let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
        let world =
            sharded_engine.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);

        let t = Instant::now();
        sharded_engine.eval_world_into(&world, &dirs, &mut plain_taus);
        shard_eval_plain_ms += t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        sharded_engine.eval_world_into_sharded(&world, &dirs, &mut sharded_taus);
        shard_eval_sharded_ms += t.elapsed().as_secs_f64() * 1e3;

        shard_eval_bit_identical &= plain_taus == sharded_taus;
    }
    assert!(
        shard_eval_bit_identical,
        "the shard-partial reduce must reproduce the plain τ fold bit for bit"
    );
    let shard_eval_speedup = shard_eval_plain_ms / shard_eval_sharded_ms;

    // Statistic isolation: the per-world τ fold swept over every
    // pluggable test statistic, on identical word worlds over the same
    // blocked engine — so the timing difference is the score fold
    // alone (counting is shared by construction). Two identities are
    // pinned: BernoulliLlr through the kernel plumbing reproduces the
    // engine's default fold bit for bit, and EqualOppTpr — the same
    // Bernoulli LLR over a conditioned population — scores a given
    // binary stream identically to BernoulliLlr. MeanResidual is a
    // genuinely different statistic; its τ must be finite and is
    // reported, not compared.
    let statistic_worlds = worlds;
    let mut statistic_bit_identical = true;
    let mut statistic_rows: Vec<StatisticRow> = Vec::new();
    let mut llr_eval_ms = f64::NAN;
    let mut taus_by_statistic: Vec<Vec<f64>> = Vec::new();
    for statistic in Statistic::ALL {
        let mut taus = vec![0.0f64; dirs.len()];
        let mut all_taus = Vec::with_capacity(statistic_worlds * dirs.len());
        let t = Instant::now();
        for w in 0..statistic_worlds {
            let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
            let world =
                blocked_engine.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);
            blocked_engine.eval_world_into_with(statistic, &world, &dirs, &mut taus);
            all_taus.extend_from_slice(&taus);
        }
        let eval_ms = t.elapsed().as_secs_f64() * 1e3;
        statistic_bit_identical &= all_taus.iter().all(|t| t.is_finite());
        if statistic == Statistic::BernoulliLlr {
            llr_eval_ms = eval_ms;
            // The kernel-parameterised fold must reproduce the engine
            // default path exactly (untimed check on a world sample).
            for w in (0..statistic_worlds).step_by(16.max(statistic_worlds / 8)) {
                let mut rng = sfstats::rng::world_rng(base.seed, w as u64);
                let world = blocked_engine.generate_world_with(
                    NullModel::Bernoulli,
                    WorldGen::Word,
                    &mut rng,
                );
                let mut default_taus = vec![0.0f64; dirs.len()];
                blocked_engine.eval_world_into(&world, &dirs, &mut default_taus);
                statistic_bit_identical &=
                    default_taus == all_taus[w * dirs.len()..(w + 1) * dirs.len()];
            }
        }
        statistic_rows.push(StatisticRow {
            statistic: statistic.name().to_string(),
            eval_ms,
            relative: llr_eval_ms / eval_ms,
        });
        taus_by_statistic.push(all_taus);
    }
    // EqualOppTpr delegates to the same LLR scoring, so its τ stream
    // over identical worlds is bit-identical to BernoulliLlr's;
    // MeanResidual must genuinely differ.
    statistic_bit_identical &= taus_by_statistic[0] == taus_by_statistic[1];
    assert!(
        statistic_bit_identical,
        "the statistic kernel plumbing must reproduce the default fold bit for bit"
    );
    assert_ne!(
        taus_by_statistic[0], taus_by_statistic[2],
        "mean-residual must score differently from the LLR statistics"
    );

    // Single cold audit: one request, sequential unsharded engine vs
    // the parallel sharded engine (the production default). Engine
    // builds are excluded so the comparison is serve-vs-serve; the
    // speedup is the PR 6 acceptance number, asserted at full scale
    // when there are cores to fan out to.
    let word_blocked = base.with_strategy(CountingStrategy::Blocked);
    let single_request = [AuditRequest::from_config(&word_blocked)];
    let serial_config = word_blocked
        .sequential()
        .with_shards(sfscan::Shards::Fixed(1));
    let single_audit = |config: sfscan::AuditConfig,
                        outcomes: &sfscan::SpatialOutcomes,
                        regions: &RegionSet|
     -> (f64, sfscan::AuditReport) {
        let prepared = PreparedAudit::prepare(outcomes, regions, config).expect("auditable");
        let t = Instant::now();
        let mut reports = prepared.run_batch(&single_request);
        (t.elapsed().as_secs_f64() * 1e3, reports.remove(0))
    };
    let (serial_audit_ms, serial_report) = single_audit(serial_config, &outcomes, &regions);
    let (sharded_audit_ms, sharded_report) = single_audit(word_blocked, &outcomes, &regions);
    let sharded_bit_identical = {
        let mut aligned = sharded_report.clone();
        aligned.config.shards = serial_report.config.shards;
        aligned.config.parallel = serial_report.config.parallel;
        serial_report == aligned
    };
    assert!(
        sharded_bit_identical,
        "the parallel sharded audit must be bit-identical to the sequential unsharded audit"
    );
    let single_audit_speedup = serial_audit_ms / sharded_audit_ms;
    if !opts.quick && cores >= MIN_CORES_FOR_SHARD_ASSERT {
        assert!(
            single_audit_speedup >= SINGLE_AUDIT_SPEEDUP_TARGET,
            "single-audit sharded speedup {single_audit_speedup:.2}x below the \
             {SINGLE_AUDIT_SPEEDUP_TARGET}x target on {cores} cores"
        );
    } else if cores < MIN_CORES_FOR_SHARD_ASSERT {
        println!(
            "[serve-bench] note: {cores} core(s) < {MIN_CORES_FOR_SHARD_ASSERT}; \
             the {SINGLE_AUDIT_SPEEDUP_TARGET}x single-audit assertion is skipped \
             (bit-identity still asserted)"
        );
    }

    // Points scaling: the same serial-vs-parallel single audit swept
    // over dataset sizes, so the artifact records where the fan-out
    // starts paying for its coordination.
    let sweep_sizes: &[usize] = if opts.quick {
        &[1_000, 2_000, 4_000]
    } else {
        &[2_500, 5_000, 10_000, 20_000]
    };
    let mut scaling = Vec::new();
    for &points in sweep_sizes {
        let sweep_outcomes = SynthConfig {
            per_half: points / 2,
            ..SynthConfig::paper()
        }
        .generate(opts.seed);
        let sweep_regions = RegionSet::regular_grid(sweep_outcomes.expanded_bounding_box(), 16, 16);
        let (serial_ms, a) = single_audit(serial_config, &sweep_outcomes, &sweep_regions);
        let (parallel_ms, mut b) = single_audit(word_blocked, &sweep_outcomes, &sweep_regions);
        b.config.shards = a.config.shards;
        b.config.parallel = a.config.parallel;
        assert_eq!(a, b, "scaling sweep at {points} points diverged");
        scaling.push(ScalingRow {
            points: sweep_outcomes.len(),
            serial_ms,
            parallel_ms,
            speedup: serial_ms / parallel_ms,
        });
    }

    // Socket load: the serving-v3 TCP front end under real client
    // traffic. One envelope line per request in the mix; the reference
    // transcript is exactly what `experiments serve` prints for these
    // lines on stdin (submit everything, flush at EOF, one envelope
    // per line in input order).
    let net_clients = 4usize;
    let net_lines: Vec<String> = requests
        .iter()
        .map(|r| RequestEnvelope::new(DatasetHandle(0), *r).to_json())
        .collect();
    let expected: Vec<String> = {
        let mut service = AuditService::new();
        let h = service
            .register(&outcomes, &regions, base)
            .expect("auditable");
        assert_eq!(h, DatasetHandle(0), "first registration is handle 0");
        let tickets: Vec<_> = net_lines
            .iter()
            .map(|line| service.submit_json(line).expect("valid request line"))
            .collect();
        service.flush();
        tickets
            .into_iter()
            .map(|t| ResponseEnvelope::ready(service.take(t).expect("flushed")).to_json())
            .collect()
    };

    // MaxPending(1) promotes every submission immediately, so the
    // drain-latency samples approximate per-request service latency
    // (queue wait included) instead of EOF-batch artifacts.
    let net_executor = Arc::new(NetExecutor::new(
        ExecutorConfig {
            workers: cores.clamp(1, 4),
            queue_capacity: None,
            policy: DrainPolicy::MaxPending(1),
        },
        Arc::new(SystemClock::new()),
    ));
    net_executor
        .register(&outcomes, &regions, base)
        .expect("auditable");
    let net_server = AuditTcpServer::bind("127.0.0.1:0", net_executor, Duration::from_millis(5))
        .expect("ephemeral port binds");
    let net_addr = net_server.local_addr();

    // Cold phase: one client pays every world class's simulation.
    let t = Instant::now();
    let cold_transcript = socket_replay(net_addr, &net_lines);
    let net_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut net_bit_identical = cold_transcript == expected;

    // Warm phase: concurrent clients replay the same mix; every world
    // class now replays from the session cache, and every client must
    // still read the exact reference bytes.
    let t = Instant::now();
    let warm_clients: Vec<_> = (0..net_clients)
        .map(|_| {
            let lines = net_lines.clone();
            std::thread::spawn(move || socket_replay(net_addr, &lines))
        })
        .collect();
    for client in warm_clients {
        net_bit_identical &= client.join().expect("client thread") == expected;
    }
    let net_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        net_bit_identical,
        "every socket transcript must be byte-identical to the in-process JSONL path"
    );
    let net_rps = (net_clients * net_lines.len()) as f64 / (net_warm_ms / 1e3);
    let net_stats = net_server.shutdown();
    let net_requests = (net_clients + 1) * net_lines.len();
    assert_eq!(
        net_stats.requests_served, net_requests as u64,
        "the live server must answer every accepted request"
    );
    assert!(
        net_stats.worlds_replayed > 0 && net_stats.cache_hits > 0,
        "repeat traffic must replay from the session world cache ({net_stats:?})"
    );

    // Overload probe: one worker, one queue slot, manual drain — the
    // first line occupies the slot until EOF, so every further line
    // must bounce with a typed "busy" envelope instead of queuing.
    let probe_executor = Arc::new(NetExecutor::new(
        ExecutorConfig {
            workers: 1,
            queue_capacity: Some(1),
            policy: DrainPolicy::Manual,
        },
        Arc::new(SystemClock::new()),
    ));
    probe_executor
        .register(&outcomes, &regions, base)
        .expect("auditable");
    let probe_server =
        AuditTcpServer::bind("127.0.0.1:0", probe_executor, Duration::from_millis(5))
            .expect("ephemeral port binds");
    let probe_transcript = socket_replay(probe_server.local_addr(), &net_lines);
    probe_server.shutdown();
    assert_eq!(probe_transcript.len(), net_lines.len());
    let net_busy_lines = probe_transcript
        .iter()
        .filter(|line| {
            ResponseEnvelope::from_json(line)
                .expect("envelope decodes")
                .status
                == WireStatus::Busy
        })
        .count();
    assert!(
        net_busy_lines > 0,
        "a capacity-1 server must shed overflow with busy envelopes"
    );

    let groups = sfscan::prepared::ExecutionPlan::new(requests.clone())
        .groups()
        .len();
    // The headline numbers of every benchmarked PR (hardcoded from the
    // committed BENCH_PR*.json artifacts at the reference scale:
    // 20 000 points, 256 regions, 199 worlds, 24 requests) plus this
    // run, so one artifact carries the whole performance history.
    let point = |pr: &str, metric: &str, value: f64| TrajectoryPoint {
        pr: pr.to_string(),
        metric: metric.to_string(),
        value,
    };
    let trajectory = vec![
        point("PR2", "rebuild_ms", 1592.83),
        point("PR2", "batched_ms", 137.12),
        point("PR2", "speedup", 11.62),
        point("PR3", "counting_scalar_ms", 3.095),
        point("PR3", "counting_blocked_ms", 0.399),
        point("PR3", "counting_speedup", 7.75),
        point("PR4", "register_ms", 2.163),
        point("PR4", "warm_ms", 1.0014),
        point("PR4", "warm_speedup", 131.56),
        point("PR5", "counting_speedup", 10.24),
        point("PR5", "gen_speedup", 15.00),
        point("PR5", "word_batch_speedup", 6.566),
        point("PR5", "warm_speedup", 157.66),
        point("PR6", "speedup", 12.31),
        point("PR6", "counting_speedup", 7.50),
        point("PR6", "gen_speedup", 13.04),
        point("PR6", "word_batch_speedup", 6.26),
        point("PR6", "warm_speedup", 31.72),
        point("PR6", "single_audit_speedup", 1.18),
        point("PR7", "speedup", 13.03),
        point("PR7", "counting_speedup", 6.75),
        point("PR7", "gen_speedup", 13.84),
        point("PR7", "word_batch_speedup", 5.89),
        point("PR7", "warm_speedup", 30.31),
        point("PR7", "fused_speedup", 1.87),
        point("PR7", "popcount_speedup", 6.94),
        point("PR8", "speedup", 12.68),
        point("PR8", "counting_speedup", 7.39),
        point("PR8", "gen_speedup", 12.71),
        point("PR8", "word_batch_speedup", 6.11),
        point("PR8", "warm_speedup", 31.49),
        point("PR8", "single_audit_speedup", 0.98),
        point("PR8", "fused_speedup", 1.65),
        point("PR8", "popcount_speedup", 7.03),
        point("PR8", "statistic_fold_relative", 1.69),
        point("PR9", "speedup", rebuild_ms / batched_ms),
        point("PR9", "counting_speedup", counting_speedup),
        point("PR9", "gen_speedup", gen_speedup),
        point("PR9", "word_batch_speedup", word_batch_speedup),
        point("PR9", "warm_speedup", batched_serve_ms / warm_ms),
        point("PR9", "single_audit_speedup", single_audit_speedup),
        point("PR9", "fused_speedup", fused_speedup),
        point(
            "PR9",
            "popcount_speedup",
            kernel_rows
                .iter()
                .find(|r| r.kernel == kernel_auto.name())
                .map_or(1.0, |r| r.popcount_speedup),
        ),
        point(
            "PR9",
            "statistic_fold_relative",
            statistic_rows
                .iter()
                .find(|r| r.statistic == "mean-residual")
                .map_or(1.0, |r| r.relative),
        ),
        point("PR9", "net_rps", net_rps),
        point("PR9", "net_drain_p99_ms", net_stats.drain_p99 as f64 / 1e3),
    ];

    let record = ServeBenchRecord {
        benchmark: "serve-bench".to_string(),
        cores,
        points: outcomes.len(),
        regions: regions.len(),
        worlds_per_request: worlds,
        requests: requests.len(),
        groups,
        rebuild_ms,
        batched_ms,
        batched_blocked_ms,
        register_ms,
        warm_ms,
        warm_speedup: batched_serve_ms / warm_ms,
        warm_unique_worlds,
        warm_worlds_replayed,
        warm_cache_hits,
        warm_bit_identical,
        speedup: rebuild_ms / batched_ms,
        blocked_speedup: rebuild_ms / batched_blocked_ms,
        rebuild_per_s: requests.len() as f64 / (rebuild_ms / 1e3),
        batched_per_s: requests.len() as f64 / (batched_ms / 1e3),
        batched_blocked_per_s: requests.len() as f64 / (batched_blocked_ms / 1e3),
        rebuild_worlds,
        batched_unique_worlds: stats.unique_worlds as usize,
        worlds_shared: stats.worlds_shared() as usize,
        worlds_saved: stats.worlds_saved() as usize,
        bit_identical,
        counting_worlds,
        counting_scalar_ms,
        counting_blocked_ms,
        counting_speedup,
        blocked_ids_per_word: blocked.ids_per_word(),
        counting_bit_identical,
        kernel_auto: kernel_auto.name().to_string(),
        fused_width: MAX_FUSED_WORLDS,
        kernels: kernel_rows,
        fused_speedup,
        kernel_bit_identical,
        gen_worlds,
        gen_scalar_ms,
        gen_word_ms,
        gen_speedup,
        blocked_serve_ms,
        word_serve_ms,
        word_batch_speedup,
        word_bit_identical,
        shards,
        shard_eval_worlds,
        shard_eval_plain_ms,
        shard_eval_sharded_ms,
        shard_eval_speedup,
        shard_eval_bit_identical,
        serial_audit_ms,
        sharded_audit_ms,
        single_audit_speedup,
        sharded_bit_identical,
        statistic_worlds,
        statistics: statistic_rows,
        statistic_bit_identical,
        scaling,
        net_clients,
        net_requests,
        net_cold_ms,
        net_warm_ms,
        net_rps,
        net_drain_p50_us: net_stats.drain_p50,
        net_drain_p99_us: net_stats.drain_p99,
        net_busy_lines,
        net_bit_identical,
        trajectory,
    };

    report_row(
        "rebuild-per-request",
        "—",
        &format!("{rebuild_ms:.0} ms ({:.1} audits/s)", record.rebuild_per_s),
    );
    report_row(
        "batched shared engine",
        "—",
        &format!("{batched_ms:.0} ms ({:.1} audits/s)", record.batched_per_s),
    );
    report_row(
        "batched + blocked counting",
        "—",
        &format!(
            "{batched_blocked_ms:.0} ms ({:.1} audits/s)",
            record.batched_blocked_per_s
        ),
    );
    report_row(
        "warm cache (repeat batch)",
        "0 new worlds",
        &format!(
            "{warm_ms:.0} ms ({:.2}x over cold, {} replayed, {} simulated)",
            record.warm_speedup, record.warm_worlds_replayed, record.warm_unique_worlds
        ),
    );
    report_row(
        "speedup",
        ">= 3x target",
        &format!(
            "{:.2}x batched, {:.2}x blocked",
            record.speedup, record.blocked_speedup
        ),
    );
    report_row(
        "counting pass (scalar vs blocked)",
        ">= 3x target",
        &format!(
            "{:.2}x ({:.2} ms vs {:.2} ms over {} worlds, {:.1} ids/word)",
            record.counting_speedup,
            record.counting_scalar_ms,
            record.counting_blocked_ms,
            record.counting_worlds,
            record.blocked_ids_per_word
        ),
    );
    report_row(
        "fused multi-world sweep (scalar kernel)",
        &format!(">= {FUSED_SPEEDUP_TARGET}x target"),
        &format!(
            "{:.2}x ({:.2} ms vs {:.2} ms per-world, width {})",
            record.fused_speedup, fused_scalar_ms, record.counting_blocked_ms, record.fused_width
        ),
    );
    for row in &record.kernels {
        let target = if row.kernel == "avx2" || row.kernel == "avx512" {
            format!(">= {SIMD_POPCOUNT_TARGET}x popcount")
        } else {
            "—".to_string()
        };
        let auto_marker = if row.kernel == record.kernel_auto {
            " (auto)"
        } else {
            ""
        };
        report_row(
            &format!("  kernel {}{}", row.kernel, auto_marker),
            &target,
            &format!(
                "popcount {:.2}x, per-world {:.2}x, fused {:.2}x",
                row.popcount_speedup, row.count_speedup, row.fused_speedup
            ),
        );
    }
    report_row(
        "generation pass (scalar vs word)",
        ">= 4x target",
        &format!(
            "{:.2}x ({:.2} ms vs {:.2} ms over {} worlds)",
            record.gen_speedup, record.gen_scalar_ms, record.gen_word_ms, record.gen_worlds
        ),
    );
    report_row(
        "cold word batch (blocked+word vs blocked)",
        ">= 2x target",
        &format!(
            "{:.2}x ({:.0} ms vs {:.0} ms serve-only)",
            record.word_batch_speedup, record.word_serve_ms, record.blocked_serve_ms
        ),
    );
    report_row(
        "sharded eval (plain vs shard-partial)",
        "bit-identical",
        &format!(
            "{:.2}x ({:.2} ms vs {:.2} ms over {} worlds, {} shards)",
            record.shard_eval_speedup,
            record.shard_eval_plain_ms,
            record.shard_eval_sharded_ms,
            record.shard_eval_worlds,
            record.shards
        ),
    );
    for row in &record.statistics {
        report_row(
            &format!("  statistic {}", row.statistic),
            "bit-identical fold",
            &format!(
                "{:.2} ms over {} worlds ({:.2}x vs bernoulli-llr)",
                row.eval_ms, record.statistic_worlds, row.relative
            ),
        );
    }
    report_row(
        "single cold audit (serial vs sharded)",
        &format!(">= {SINGLE_AUDIT_SPEEDUP_TARGET}x on >= {MIN_CORES_FOR_SHARD_ASSERT} cores"),
        &format!(
            "{:.2}x ({:.1} ms vs {:.1} ms, {} core(s))",
            record.single_audit_speedup, record.serial_audit_ms, record.sharded_audit_ms, cores
        ),
    );
    for row in &record.scaling {
        report_row(
            &format!("  scaling @ {} points", row.points),
            "—",
            &format!(
                "{:.2}x ({:.1} ms serial vs {:.1} ms parallel)",
                row.speedup, row.serial_ms, row.parallel_ms
            ),
        );
    }
    report_row(
        "net: cold socket client",
        "byte-identical",
        &format!(
            "{:.0} ms for {} requests over TCP",
            record.net_cold_ms,
            net_lines.len()
        ),
    );
    report_row(
        &format!("net: warm x{} clients", record.net_clients),
        "byte-identical",
        &format!(
            "{:.0} ms, {:.1} req/s sustained",
            record.net_warm_ms, record.net_rps
        ),
    );
    report_row(
        "net: submit->drain latency",
        "—",
        &format!(
            "p50 {} us, p99 {} us ({} samples)",
            record.net_drain_p50_us, record.net_drain_p99_us, net_stats.drain_samples
        ),
    );
    report_row(
        "net: overload probe (capacity 1)",
        "busy envelopes",
        &format!(
            "{} busy of {} lines, {} served",
            record.net_busy_lines,
            net_lines.len(),
            net_lines.len() - record.net_busy_lines
        ),
    );
    report_row(
        "worlds generated",
        &format!("{rebuild_worlds} sequential"),
        &format!(
            "{} unique ({} shared, {} saved)",
            record.batched_unique_worlds, record.worlds_shared, record.worlds_saved
        ),
    );

    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    std::fs::write(&opts.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("[serve-bench] wrote {}", opts.out);
}
