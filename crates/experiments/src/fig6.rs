//! Figure 6 / Appendix A: fair worlds contain "suspicious" clusters.
//!
//! Four alternate labelings of the same 1,000 uniform locations under
//! a fair Bernoulli(0.5) process; each contains an easily-found
//! cluster of ≥5 negatives with no positives. The audit must *not*
//! call these clusters significant — finding one by chance is
//! expected.

use crate::common::{banner, report_row, Options};
use sfdata::worlds::{largest_pure_negative_cluster, FairWorlds};
use sfscan::{AuditConfig, Auditor, RegionSet};
use sfstats::binomial::all_negative_probability;
use sfstats::rng::derive_seed;

pub fn run(opts: &Options) {
    banner("Figure 6 / Appendix A — fair worlds and pure-negative clusters");
    let fw = FairWorlds::uniform(1_000, 0.5, derive_seed(opts.seed, "fair-worlds"));

    let mut all_have_5 = true;
    for w in 0..4 {
        let world = fw.world(w);
        let cluster = largest_pure_negative_cluster(&world).expect("negatives exist");
        all_have_5 &= cluster.count >= 5;
        println!(
            "  world {w}: N={}, P={}, largest pure-negative cluster = {} points \
             (circle r={:.3} at ({:.2}, {:.2}))",
            world.len(),
            world.positives(),
            cluster.count,
            cluster.circle.radius,
            cluster.circle.center.x,
            cluster.circle.center.y
        );
    }
    report_row(
        "every world has a >=5-negative pure cluster",
        "yes (all four examples)",
        if all_have_5 { "yes" } else { "NO" },
    );
    report_row(
        "P(a fixed 5-point set is all-negative)",
        "(1-rho)^5 = 0.031",
        &format!("{:.3}", all_negative_probability(5, 0.5)),
    );

    // And the audit agrees these worlds are fair: scan a grid over
    // each world at the paper's significance level.
    let mut verdicts_fair = 0;
    for w in 0..4 {
        let world = fw.world(w);
        let regions = RegionSet::regular_grid(world.expanded_bounding_box(), 10, 10);
        let config = opts.decorate(
            AuditConfig::new(Options::ALPHA)
                .with_worlds(opts.effective_worlds())
                .with_seed(derive_seed(opts.seed, "fair-world-audit") + w),
        );
        let report = Auditor::new(config)
            .audit(&world, &regions)
            .expect("auditable");
        if report.is_fair() {
            verdicts_fair += 1;
        }
        println!(
            "  world {w}: audit p-value {:.3} -> {}",
            report.p_value,
            report.verdict()
        );
    }
    report_row(
        "fair verdicts across the four worlds",
        "4 of 4",
        &format!("{verdicts_fair} of 4"),
    );
}
