//! Figure 1 + §4.2 "Is it Fair?": the headline comparison.
//!
//! `MeanVar` scores the fair-by-design SemiSynth *worse* (higher) than
//! the unfair-by-design Synth (paper: 0.0522 vs 0.0431), so it cannot
//! answer "is it fair?". The audit gets both right: SemiSynth fair,
//! Synth unfair at the 0.005 level.
//!
//! Setting (paper §4.2): 100 random rectangular partitionings with
//! 10–40 splits per axis; the audit scans exactly the partitions of
//! those partitionings.

use crate::common::{banner, report_row, Options};
use sfdata::lar::LarDataset;
use sfdata::semisynth::SemiSynthConfig;
use sfdata::synth::SynthConfig;
use sfgeo::{Partitioning, RandomPartitioningConfig};
use sfscan::{AuditConfig, Auditor, MeanVar, RegionSet, SpatialOutcomes};
use sfstats::rng::{derive_seed, seeded_rng};

pub fn run(opts: &Options) {
    banner("Figure 1 / §4.2 — Is it fair? (MeanVar vs spatial scan)");

    // Datasets exactly as the paper constructs them.
    let lar = LarDataset::generate(&opts.lar_config());
    let semisynth =
        SemiSynthConfig::paper().generate_from_lar(&lar, derive_seed(opts.seed, "semisynth"));
    let synth = SynthConfig::paper().generate(derive_seed(opts.seed, "synth"));
    println!(
        "[data] SemiSynth: N={}, P={} (fair by design); Synth: N={}, P={} (unfair by design)",
        semisynth.len(),
        semisynth.positives(),
        synth.len(),
        synth.positives()
    );

    let verdicts = [
        evaluate(
            opts,
            "SemiSynth",
            &semisynth,
            derive_seed(opts.seed, "parts-semisynth"),
        ),
        evaluate(opts, "Synth", &synth, derive_seed(opts.seed, "parts-synth")),
    ];
    let (mv_semisynth, p_semisynth) = verdicts[0];
    let (mv_synth, p_synth) = verdicts[1];

    banner("Figure 1 — summary");
    report_row(
        "MeanVar(SemiSynth)  [fair by design]",
        "0.0522",
        &format!("{mv_semisynth:.4}"),
    );
    report_row(
        "MeanVar(Synth)      [unfair by design]",
        "0.0431",
        &format!("{mv_synth:.4}"),
    );
    report_row(
        "MeanVar inversion (fair scores worse)",
        "yes",
        if mv_semisynth > mv_synth {
            "yes"
        } else {
            "NO (mismatch)"
        },
    );
    report_row(
        "audit verdict SemiSynth @ alpha=0.005",
        "fair",
        &format!(
            "{} (p={p_semisynth:.3})",
            if p_semisynth > Options::ALPHA {
                "fair"
            } else {
                "unfair"
            }
        ),
    );
    report_row(
        "audit verdict Synth @ alpha=0.005",
        "unfair",
        &format!(
            "{} (p={p_synth:.3})",
            if p_synth > Options::ALPHA {
                "fair"
            } else {
                "unfair"
            }
        ),
    );
}

/// Runs both methods on one dataset; returns (MeanVar, audit p-value).
fn evaluate(opts: &Options, name: &str, outcomes: &SpatialOutcomes, seed: u64) -> (f64, f64) {
    // 100 random regular partitionings, 10-40 splits per axis (paper
    // §4.2; the randomness is in the per-axis resolution).
    let bounds = outcomes.expanded_bounding_box();
    let mut rng = seeded_rng(seed);
    let partitionings: Vec<Partitioning> = (0..100)
        .map(|_| Partitioning::random_regular(bounds, &RandomPartitioningConfig::PAPER, &mut rng))
        .collect();

    let mv = MeanVar::compute(outcomes, &partitionings);

    let regions = RegionSet::from_partitionings(&partitionings);
    let config = opts.decorate(
        AuditConfig::new(Options::ALPHA)
            .with_worlds(opts.effective_worlds())
            .with_seed(derive_seed(seed, "audit")),
    );
    let report = Auditor::new(config)
        .audit(outcomes, &regions)
        .expect("auditable");
    println!(
        "[{name}] MeanVar={:.4}; audit over {} partitions: tau={:.2}, p={:.4}, critical={:.2}, \
         {} significant partitions -> {}",
        mv.mean_variance,
        regions.len(),
        report.tau,
        report.p_value,
        report.critical_value,
        report.findings.len(),
        report.verdict(),
    );
    (mv.mean_variance, report.p_value)
}
