//! Descriptive statistics: numerically stable moments and quantiles.
//!
//! The `MeanVar` baseline averages the variance of per-partition
//! positive rates over many partitionings; these helpers provide the
//! stable one-pass variance (Welford) it is built on.

use serde::{Deserialize, Serialize};

/// One-pass running mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`; 0 when fewer than 1 value).
    ///
    /// The `MeanVar` baseline uses the population convention: variance
    /// of the actual finite set of partition measures.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance (divide by `n − 1`; 0 when fewer than 2 values).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn stddev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Computes the population mean and variance of a slice in one pass.
pub fn mean_variance_population(values: &[f64]) -> (f64, f64) {
    let mut acc = RunningMoments::new();
    for &v in values {
        acc.push(v);
    }
    (acc.mean(), acc.variance_population())
}

/// Linear-interpolation quantile of a slice (the `q`-th quantile for
/// `q ∈ [0, 1]`), equivalent to numpy's default.
///
/// # Panics
/// Panics if `values` is empty, `q` is outside `[0, 1]`, or any value
/// is NaN.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0,1], got {q}"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile input must not contain NaN")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance_population(), 0.0);
        assert_eq!(m.variance_sample(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut m = RunningMoments::new();
        m.push(5.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.variance_population(), 0.0);
    }

    #[test]
    fn known_variance() {
        // Values 1..5: mean 3, population var 2, sample var 2.5.
        let (mean, var) = mean_variance_population(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((mean - 3.0).abs() < 1e-12);
        assert!((var - 2.0).abs() < 1e-12);
        let mut m = RunningMoments::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.push(v);
        }
        assert!((m.variance_sample() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Naive sum-of-squares would catastrophically cancel here.
        let offset = 1e9;
        let vals: Vec<f64> = [1.0, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|v| v + offset)
            .collect();
        let (_, var) = mean_variance_population(&vals);
        assert!((var - 2.0).abs() < 1e-6, "got {var}");
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance_population() - whole.variance_population()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), 2.5);
        assert_eq!(quantile(&v, 0.75), 7.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }
}
