//! Statistics substrate for spatial-fairness auditing.
//!
//! This crate implements the statistical machinery of the paper:
//!
//! * [`llr`] — the **Bernoulli scan-statistic kernel** (paper §3,
//!   Eq. 1): the spatial unfairness likelihood (SUL) and the
//!   log-likelihood ratio of the alternate hypothesis
//!   (`inside ≠ outside`) over the null (`inside = outside`), in
//!   two-sided and one-sided (paper §B.2 "red"/"green") forms.
//! * [`montecarlo`] — the Monte Carlo simulation used to calibrate the
//!   test statistic's distribution (paper §3): parallel, deterministic
//!   world evaluation with per-world RNG streams.
//! * [`pvalue`] — rank-based p-values (`k/w`) and critical values (the
//!   "log-likelihood differences beyond 9.6 are significant at the
//!   0.005 level" machinery of §4.2).
//! * [`binomial`] — log-factorials, binomial coefficients, pmf/cdf and
//!   an exact two-sided binomial test used as a per-region cross-check.
//! * [`descriptive`] — numerically stable mean/variance (Welford) and
//!   quantiles, used by the `MeanVar` baseline.
//! * [`kernel`] — pluggable per-region test statistics
//!   ([`kernel::TauKernel`]): the paper's Bernoulli LLR, the
//!   equal-opportunity TPR variant, and the standardized mean-residual
//!   score, all folding the same count pairs the engines produce.
//! * [`rng`] — deterministic seeding helpers (independent per-world
//!   ChaCha streams).
//! * [`bulk`] — word-parallel exact Bernoulli sampling (64 labels per
//!   threshold-refinement pass) and the [`bulk::WorldGen`] generator
//!   versioning that keys shared/cached world streams.
//!
//! # Example: the scan statistic and its calibration
//!
//! ```rust
//! use sfstats::llr::{bernoulli_llr, Counts2x2};
//! use sfstats::montecarlo::MonteCarlo;
//! use rand::Rng;
//!
//! // A region with 30 of 40 positives in a world of 1000 with 500:
//! let llr = bernoulli_llr(&Counts2x2::new(40, 30, 1000, 500));
//! assert!(llr > 0.0);
//!
//! // Calibrate any statistic with deterministic Monte Carlo worlds:
//! let mc = MonteCarlo::new(99, 7);
//! let result = mc.run(llr, |rng| rng.gen::<f64>() * 3.0);
//! assert!(result.p_value() <= 0.01); // llr ~ 6.6 dwarfs U(0,3) draws
//! ```

pub mod alias;
pub mod binomial;
pub mod bulk;
pub mod descriptive;
pub mod interval;
pub mod kernel;
pub mod llr;
pub mod montecarlo;
pub mod poisson;
pub mod pvalue;
pub mod rng;

pub use alias::AliasTable;
pub use bulk::{BulkBernoulli, ParseWorldGenError, WorldGen};
pub use interval::{wilson_interval, ProportionInterval};
pub use kernel::{ParseStatisticError, Statistic, TauKernel};
pub use llr::{bernoulli_llr, bernoulli_llr_directed, Counts2x2};
pub use montecarlo::{MonteCarlo, MonteCarloResult};
pub use poisson::{poisson_llr, poisson_llr_directed, PoissonCounts};
pub use pvalue::{critical_value, rank_p_value, Direction};
