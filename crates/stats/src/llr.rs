//! The Bernoulli scan-statistic kernel (paper §3, Eq. 1).
//!
//! Given a region `R`, let `n = n(R)` be the number of observations
//! inside and `p = p(R)` the number of positives inside; `N`, `P` are
//! the global totals. The null hypothesis H0 says positives everywhere
//! follow `Binomial(·, ρ)` with the single global rate `ρ = P/N`; the
//! alternate H1 allows a different success probability inside vs
//! outside `R`.
//!
//! The *log-likelihood ratio* of the best-fit H1 over the best-fit H0:
//!
//! ```text
//! LLR(R) = [ xlogy(p, ρ̂0) + xlogy(n−p, 1−ρ̂0)
//!          + xlogy(P−p, ρ̂1) + xlogy(N−n−(P−p), 1−ρ̂1) ]
//!        − [ xlogy(P, ρ̂)  + xlogy(N−P, 1−ρ̂) ]
//! ```
//!
//! with `ρ̂0 = p/n`, `ρ̂1 = (P−p)/(N−n)`, `ρ̂ = P/N` and the convention
//! `xlogy(0, ·) = 0`. Eq. 1's "otherwise" branch (no difference between
//! the rates) and the degenerate regions (`n = 0` or `n = N`) yield
//! `LLR = 0`.
//!
//! The paper's SUL is the maximised H1 likelihood; since the H0
//! maximum is a dataset constant, ranking regions by SUL and by LLR is
//! equivalent, and all public APIs work in log space for numerical
//! stability (the paper: "in practice, we compute and determine the
//! difference of log-likelihoods").

use serde::{Deserialize, Serialize};

use crate::pvalue::Direction;

/// The 2×2 sufficient statistic of a region: counts inside the region
/// and in the whole dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts2x2 {
    /// Observations inside the region (`n(R)`).
    pub n_in: u64,
    /// Positives inside the region (`p(R)`).
    pub p_in: u64,
    /// Total observations (`N`).
    pub n_total: u64,
    /// Total positives (`P`).
    pub p_total: u64,
}

impl Counts2x2 {
    /// Creates and validates the counts.
    ///
    /// # Panics
    /// Panics if any count is inconsistent (`p_in > n_in`,
    /// `n_in > n_total`, `p_total > n_total`, or the outside positives
    /// would be negative / exceed the outside observations).
    pub fn new(n_in: u64, p_in: u64, n_total: u64, p_total: u64) -> Self {
        assert!(
            p_in <= n_in,
            "positives inside ({p_in}) exceed observations inside ({n_in})"
        );
        assert!(
            n_in <= n_total,
            "inside count ({n_in}) exceeds total ({n_total})"
        );
        assert!(
            p_total <= n_total,
            "total positives ({p_total}) exceed total ({n_total})"
        );
        assert!(
            p_in <= p_total,
            "positives inside ({p_in}) exceed total positives ({p_total})"
        );
        assert!(
            p_total - p_in <= n_total - n_in,
            "positives outside exceed observations outside"
        );
        Counts2x2 {
            n_in,
            p_in,
            n_total,
            p_total,
        }
    }

    /// Observations outside the region.
    #[inline]
    pub fn n_out(&self) -> u64 {
        self.n_total - self.n_in
    }

    /// Positives outside the region.
    #[inline]
    pub fn p_out(&self) -> u64 {
        self.p_total - self.p_in
    }

    /// Observed positive rate inside (`ρ̂0`), `NaN` when `n_in = 0`.
    #[inline]
    pub fn rate_in(&self) -> f64 {
        self.p_in as f64 / self.n_in as f64
    }

    /// Observed positive rate outside (`ρ̂1`), `NaN` when the region is
    /// the whole space.
    #[inline]
    pub fn rate_out(&self) -> f64 {
        self.p_out() as f64 / self.n_out() as f64
    }

    /// Global positive rate (`ρ̂`), `NaN` for empty data.
    #[inline]
    pub fn rate_global(&self) -> f64 {
        self.p_total as f64 / self.n_total as f64
    }
}

/// `x · ln(y)` with the convention `xlogy(0, ·) = 0`.
///
/// This is the standard guard for Bernoulli log-likelihoods at the
/// boundary of the parameter space (all-positive or all-negative cells).
#[inline]
pub fn xlogy(x: f64, y: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x * y.ln()
    }
}

/// Log-likelihood of observing `p` successes in `n` Bernoulli trials
/// with success probability equal to the MLE `p/n`.
#[inline]
fn ll_at_mle(n: f64, p: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let rho = p / n;
    xlogy(p, rho) + xlogy(n - p, 1.0 - rho)
}

/// Two-sided Bernoulli scan LLR of a region (paper Eq. 1, in logs).
///
/// Returns `max(log L1) − max(log L0) ≥ 0`; zero when the inside and
/// outside rates coincide or the region is degenerate. Does **not**
/// care about the direction of the deviation, matching the paper:
/// "an important difference is that we do not care for the direction
/// of change of the statistic inside and outside a region".
#[inline]
pub fn bernoulli_llr(c: &Counts2x2) -> f64 {
    llr_impl(c, Direction::TwoSided)
}

/// Directional Bernoulli scan LLR (paper §B.2).
///
/// * [`Direction::High`] — only regions whose inside rate exceeds the
///   outside rate score (> 0): the "green" regions of Figure 12.
/// * [`Direction::Low`] — only regions whose inside rate is below the
///   outside rate score: the "red" regions of Figure 11.
/// * [`Direction::TwoSided`] — same as [`bernoulli_llr`].
#[inline]
pub fn bernoulli_llr_directed(c: &Counts2x2, direction: Direction) -> f64 {
    llr_impl(c, direction)
}

fn llr_impl(c: &Counts2x2, direction: Direction) -> f64 {
    let (n, p) = (c.n_in as f64, c.p_in as f64);
    let (nn, pp) = (c.n_total as f64, c.p_total as f64);
    if c.n_total == 0 || c.n_in == 0 || c.n_in == c.n_total {
        // Empty data, empty region, or region == whole space: H1 cannot
        // do better than H0 (no "outside" to differ from).
        return 0.0;
    }
    let n_out = nn - n;
    let p_out = pp - p;
    let rate_in = p / n;
    let rate_out = p_out / n_out;
    match direction {
        Direction::TwoSided => {}
        Direction::High => {
            if rate_in <= rate_out {
                return 0.0;
            }
        }
        Direction::Low => {
            if rate_in >= rate_out {
                return 0.0;
            }
        }
    }
    if rate_in == rate_out {
        // Eq. 1's "otherwise" branch: L1 collapses to L0.
        return 0.0;
    }
    let l1 = ll_at_mle(n, p) + ll_at_mle(n_out, p_out);
    let l0 = ll_at_mle(nn, pp);
    // Guard tiny negative values from floating-point cancellation.
    (l1 - l0).max(0.0)
}

/// The log-likelihood of the *null* hypothesis at its maximum
/// (`L0^max` of the paper, in logs): `xlogy(P, ρ̂) + xlogy(N−P, 1−ρ̂)`.
///
/// Useful to reconstruct the paper's SUL (`log L1^max = LLR + log L0^max`).
#[inline]
pub fn null_log_likelihood(n_total: u64, p_total: u64) -> f64 {
    ll_at_mle(n_total as f64, p_total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n_in: u64, p_in: u64, n_total: u64, p_total: u64) -> Counts2x2 {
        Counts2x2::new(n_in, p_in, n_total, p_total)
    }

    #[test]
    fn xlogy_zero_convention() {
        assert_eq!(xlogy(0.0, 0.0), 0.0);
        assert_eq!(xlogy(0.0, 5.0), 0.0);
        assert!((xlogy(2.0, std::f64::consts::E) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn llr_zero_when_rates_equal() {
        // Inside rate = outside rate = 0.5 exactly.
        let c = counts(10, 5, 100, 50);
        assert_eq!(bernoulli_llr(&c), 0.0);
    }

    #[test]
    fn llr_zero_for_degenerate_regions() {
        assert_eq!(bernoulli_llr(&counts(0, 0, 100, 50)), 0.0);
        assert_eq!(bernoulli_llr(&counts(100, 50, 100, 50)), 0.0);
    }

    #[test]
    fn llr_positive_when_rates_differ() {
        let c = counts(10, 9, 100, 50);
        assert!(bernoulli_llr(&c) > 0.0);
    }

    #[test]
    fn llr_is_symmetric_in_region_complement() {
        // Scanning R and scanning its complement give the same LLR:
        // H1 is symmetric in inside/outside.
        let a = counts(10, 9, 100, 50);
        let b = counts(90, 41, 100, 50);
        assert!((bernoulli_llr(&a) - bernoulli_llr(&b)).abs() < 1e-10);
    }

    #[test]
    fn llr_grows_with_deviation() {
        // Same region size, increasingly extreme inside rate.
        let base = bernoulli_llr(&counts(20, 12, 1000, 500));
        let more = bernoulli_llr(&counts(20, 16, 1000, 500));
        let most = bernoulli_llr(&counts(20, 20, 1000, 500));
        assert!(base < more && more < most, "{base} {more} {most}");
    }

    #[test]
    fn llr_grows_with_evidence_at_fixed_rate() {
        // Inside rate fixed at 0.9 vs global 0.5: more observations at
        // the same deviation are stronger evidence.
        let small = bernoulli_llr(&counts(10, 9, 1000, 500));
        let large = bernoulli_llr(&counts(100, 90, 1000, 500));
        assert!(large > small);
    }

    #[test]
    fn llr_matches_hand_computation() {
        // n=10, p=8 inside; N=100, P=50.
        // rho0=0.8, rho1=42/90, rho=0.5
        let c = counts(10, 8, 100, 50);
        let l1 = 8.0 * (0.8f64).ln()
            + 2.0 * (0.2f64).ln()
            + 42.0 * (42.0f64 / 90.0).ln()
            + 48.0 * (48.0f64 / 90.0).ln();
        let l0 = 100.0 * (0.5f64).ln();
        assert!((bernoulli_llr(&c) - (l1 - l0)).abs() < 1e-10);
    }

    #[test]
    fn paper_example_five_negatives_is_weak_evidence() {
        // Figure 2(a): a partition with 5 negatives and no positives in
        // LAR-scale data (N=206418, P=127286). The exact LLR of an
        // all-negative m-point region is ≈ -m·ln(1-ρ) (the outside
        // correction is negligible at this scale): ≈ 4.79 for m=5.
        // (The paper quotes "0.96" for this cell, which equals the
        // single-observation value -ln(1-0.62); see EXPERIMENTS.md.)
        // Either way the cell is far below the paper's significance
        // threshold of 9.6 at the 0.005 level — that is the claim.
        let c = counts(5, 0, 206_418, 127_286);
        let llr = bernoulli_llr(&c);
        let rho = 127_286.0 / 206_418.0;
        let approx = -5.0 * (1.0f64 - rho).ln();
        assert!((llr - approx).abs() < 0.01, "got {llr}, approx {approx}");
        assert!(llr < 9.6, "five negatives must not be significant at 0.005");
    }

    #[test]
    fn paper_example_dense_region_is_strong_evidence() {
        // Figure 2(b): ~8000 observations, 84% positive, global 0.62 —
        // the paper reports a log-likelihood difference of about 1000.
        let c = counts(8000, 6720, 206_418, 127_286);
        let llr = bernoulli_llr(&c);
        assert!(llr > 800.0 && llr < 1300.0, "got {llr}");
    }

    #[test]
    fn directed_high_only_scores_elevated_regions() {
        let elevated = counts(10, 9, 100, 50);
        let depressed = counts(10, 1, 100, 50);
        assert!(bernoulli_llr_directed(&elevated, Direction::High) > 0.0);
        assert_eq!(bernoulli_llr_directed(&depressed, Direction::High), 0.0);
        assert_eq!(bernoulli_llr_directed(&elevated, Direction::Low), 0.0);
        assert!(bernoulli_llr_directed(&depressed, Direction::Low) > 0.0);
    }

    #[test]
    fn directed_agrees_with_two_sided_when_direction_matches() {
        let c = counts(10, 9, 100, 50);
        assert_eq!(
            bernoulli_llr_directed(&c, Direction::High),
            bernoulli_llr(&c)
        );
    }

    #[test]
    fn all_positive_region_in_all_positive_world_is_null() {
        let c = counts(10, 10, 100, 100);
        assert_eq!(bernoulli_llr(&c), 0.0);
    }

    #[test]
    fn boundary_rates_are_finite() {
        // All-positive region in a mixed world.
        let c = counts(10, 10, 100, 50);
        let llr = bernoulli_llr(&c);
        assert!(llr.is_finite() && llr > 0.0);
        // All-negative region.
        let c = counts(10, 0, 100, 50);
        let llr = bernoulli_llr(&c);
        assert!(llr.is_finite() && llr > 0.0);
    }

    #[test]
    fn counts_accessors() {
        let c = counts(10, 8, 100, 50);
        assert_eq!(c.n_out(), 90);
        assert_eq!(c.p_out(), 42);
        assert!((c.rate_in() - 0.8).abs() < 1e-12);
        assert!((c.rate_out() - 42.0 / 90.0).abs() < 1e-12);
        assert!((c.rate_global() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn counts_validate_p_in() {
        let _ = counts(5, 6, 100, 50);
    }

    #[test]
    #[should_panic(expected = "positives outside exceed")]
    fn counts_validate_outside() {
        // inside 50 obs 0 pos; outside 50 obs but 60 positives claimed.
        let _ = Counts2x2::new(50, 0, 100, 60);
    }

    #[test]
    fn null_log_likelihood_matches_definition() {
        let l0 = null_log_likelihood(100, 50);
        assert!((l0 - 100.0 * (0.5f64).ln()).abs() < 1e-10);
        assert_eq!(null_log_likelihood(0, 0), 0.0);
        assert_eq!(null_log_likelihood(10, 0), 0.0); // rho=0: xlogy guards
    }
}
