//! Rank-based Monte Carlo p-values and critical values.
//!
//! The paper (§3): "Suppose we simulate `w − 1` worlds, and the `τ`
//! statistic of the real world ranks at the `k`-th highest position
//! among all worlds. Then the p-value of the real world's statistic is
//! `k/w`." A region-level result is *significant at level α* when its
//! statistic exceeds the critical value derived from the same simulated
//! distribution — this is how the paper's §4.2 obtains "log-likelihood
//! differences beyond 9.6 are significant at the 0.005 level".

use serde::{Deserialize, Serialize};

/// Direction of the deviation the audit is sensitive to.
///
/// The paper's main test is two-sided; §B.2 audits one-sided variants
/// ("red" regions with significantly fewer positives inside, "green"
/// regions with significantly more).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Direction {
    /// Deviations in either direction count (the paper's main setting).
    #[default]
    TwoSided,
    /// Only inside-rate *above* outside-rate counts ("green", Fig. 12).
    High,
    /// Only inside-rate *below* outside-rate counts ("red", Fig. 11).
    Low,
}

impl Direction {
    /// All directions, in a stable order (drives sweeps and the
    /// constant-time direction→lane tables of the batched executor).
    pub const ALL: [Direction; 3] = [Direction::TwoSided, Direction::High, Direction::Low];

    /// This direction's index in [`Direction::ALL`] — a dense ordinal
    /// for array-backed lookup tables.
    #[inline]
    pub fn ordinal(&self) -> usize {
        match self {
            Direction::TwoSided => 0,
            Direction::High => 1,
            Direction::Low => 2,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::TwoSided => write!(f, "two-sided"),
            Direction::High => write!(f, "high (green)"),
            Direction::Low => write!(f, "low (red)"),
        }
    }
}

/// Monte Carlo rank p-value `k/w`.
///
/// `observed` is the real world's statistic; `simulated` holds the
/// `w − 1` simulated statistics. The real world's rank `k` counts ties
/// conservatively (a simulated value equal to the observed one pushes
/// the observed rank down), so the p-value is never understated.
///
/// The returned value lies in `[1/w, 1]`.
///
/// # Panics
/// Panics if `simulated` is empty or `observed` is NaN.
pub fn rank_p_value(observed: f64, simulated: &[f64]) -> f64 {
    assert!(!simulated.is_empty(), "need at least one simulated world");
    assert!(!observed.is_nan(), "observed statistic must not be NaN");
    let w = simulated.len() + 1;
    let k = 1 + simulated.iter().filter(|&&s| s >= observed).count();
    k as f64 / w as f64
}

/// The largest rank `k` with `k/w ≤ alpha` under the exact
/// floating-point comparison [`rank_p_value`] verdicts use. Returns 0
/// when even rank 1 (`1/w`) is not significant.
///
/// This deliberately does NOT use `⌊α·w⌋`: the multiply can round
/// across an integer boundary (e.g. `α` one ulp below `0.9` with
/// `w = 10` gives `α·10.0 == 9.0` exactly), and every consumer —
/// [`critical_value`] here, the early-stopping rule in
/// [`crate::montecarlo`] — must agree with the division-based verdict
/// comparison bit for bit.
pub fn largest_significant_rank(alpha: f64, w: usize) -> usize {
    // Start from the floor estimate, then correct for the multiply's
    // rounding in either direction.
    let mut k = ((alpha * w as f64).floor() as usize).min(w);
    while k > 0 && (k as f64) / (w as f64) > alpha {
        k -= 1;
    }
    while k < w && ((k + 1) as f64) / (w as f64) <= alpha {
        k += 1;
    }
    k
}

/// Critical value at level `alpha` from the simulated max-statistic
/// distribution: the smallest threshold `c` such that any statistic
/// strictly greater than `c` has rank p-value ≤ `alpha`.
///
/// With `w = len + 1` worlds, a statistic `t` is significant iff its
/// rank `#{sims ≥ t} + 1` is at most [`largest_significant_rank`]
/// `m`; the threshold is the `m`-th largest simulated value. Returns
/// `f64::INFINITY` when the Monte Carlo budget is too small to ever
/// reach significance (`m < 1`), mirroring the fact that with too few
/// worlds nothing can be declared significant.
///
/// # Panics
/// Panics if `simulated` is empty or `alpha` is outside `(0, 1)`.
pub fn critical_value(simulated: &[f64], alpha: f64) -> f64 {
    assert!(!simulated.is_empty(), "need at least one simulated world");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    let w = simulated.len() + 1;
    let m = largest_significant_rank(alpha, w);
    if m < 1 {
        return f64::INFINITY;
    }
    // m-th largest simulated value.
    let mut sorted: Vec<f64> = simulated.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("statistics must not be NaN"));
    sorted[m - 1]
}

/// Returns `true` when a statistic is significant at `alpha` given the
/// simulated distribution, consistently with [`critical_value`] and
/// [`rank_p_value`].
pub fn is_significant(statistic: f64, simulated: &[f64], alpha: f64) -> bool {
    rank_p_value(statistic, simulated) <= alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_value_when_observed_is_highest() {
        let sims = vec![1.0, 2.0, 3.0];
        assert_eq!(rank_p_value(10.0, &sims), 0.25); // k=1, w=4
    }

    #[test]
    fn p_value_when_observed_is_lowest() {
        let sims = vec![1.0, 2.0, 3.0];
        assert_eq!(rank_p_value(0.0, &sims), 1.0); // k=4, w=4
    }

    #[test]
    fn p_value_counts_ties_conservatively() {
        let sims = vec![5.0, 5.0, 1.0];
        // observed 5.0 ties with two sims -> k = 3, w = 4.
        assert_eq!(rank_p_value(5.0, &sims), 0.75);
    }

    #[test]
    fn p_value_min_is_one_over_w() {
        let sims = vec![0.0; 999];
        assert_eq!(rank_p_value(1.0, &sims), 1.0 / 1000.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn p_value_requires_sims() {
        let _ = rank_p_value(1.0, &[]);
    }

    #[test]
    fn critical_value_matches_paper_setup() {
        // w = 1000 (999 sims), alpha = 0.005 -> m = 5 -> 5th largest.
        let mut sims: Vec<f64> = (1..=999).map(|i| i as f64).collect();
        sims.reverse();
        let c = critical_value(&sims, 0.005);
        assert_eq!(c, 995.0); // 5th largest of 1..=999
                              // Anything above c is significant:
        assert!(is_significant(995.1, &sims, 0.005));
        // c itself is NOT (tie counts against): k = 1 + 5 = 6 > 5.
        assert!(!is_significant(995.0, &sims, 0.005));
    }

    #[test]
    fn critical_value_infinite_when_budget_too_small() {
        // 99 sims (w=100) cannot reach alpha = 0.005.
        let sims = vec![1.0; 99];
        assert_eq!(critical_value(&sims, 0.005), f64::INFINITY);
        assert!(!is_significant(f64::MAX, &sims, 0.005));
    }

    #[test]
    fn critical_value_alpha_05_with_19_sims() {
        // w=20, alpha=0.05 -> m=1 -> largest sim is the threshold.
        let sims: Vec<f64> = (1..=19).map(|i| i as f64).collect();
        assert_eq!(critical_value(&sims, 0.05), 19.0);
        assert!(is_significant(19.5, &sims, 0.05));
        assert!(!is_significant(19.0, &sims, 0.05));
    }

    #[test]
    fn significance_consistent_with_p_value() {
        let sims: Vec<f64> = (0..999).map(|i| (i as f64) * 0.01).collect();
        let alpha = 0.005;
        let c = critical_value(&sims, alpha);
        for t in [0.0, 5.0, 9.9, 9.94, 9.95, 9.98, 20.0] {
            let by_p = rank_p_value(t, &sims) <= alpha;
            let by_c = t > c;
            assert_eq!(by_p, by_c, "inconsistent at t={t}, c={c}");
        }
    }

    #[test]
    fn critical_value_consistent_at_ulp_alpha_boundaries() {
        // Regression: alpha one ulp below 9/10 with w = 10 made the old
        // floor(alpha*w) rank round UP to 9, flagging statistics whose
        // rank p-value exceeds alpha. The rank must come from the same
        // k/w <= alpha comparison the verdict uses.
        let sims: Vec<f64> = (1..=9).map(|i| i as f64).collect(); // w = 10
        let alpha = f64::from_bits(0.9f64.to_bits() - 1);
        assert_eq!(largest_significant_rank(alpha, 10), 8);
        let c = critical_value(&sims, alpha);
        assert_eq!(c, 2.0); // 8th largest, not the 9th (= 1.0)
        for t in [0.5, 1.5, 2.0, 2.5, 5.0, 9.5] {
            assert_eq!(
                is_significant(t, &sims, alpha),
                t > c,
                "inconsistent at t={t}, c={c}"
            );
        }
    }

    #[test]
    fn largest_significant_rank_basics() {
        // Paper setting: w = 1000, alpha = 0.005 -> rank 5.
        assert_eq!(largest_significant_rank(0.005, 1000), 5);
        // Budget too small: rank 0.
        assert_eq!(largest_significant_rank(0.005, 100), 0);
        // Exact boundary alpha keeps its rank.
        assert_eq!(largest_significant_rank(0.9, 10), 9);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::TwoSided.to_string(), "two-sided");
        assert_eq!(Direction::High.to_string(), "high (green)");
        assert_eq!(Direction::Low.to_string(), "low (red)");
    }
}
