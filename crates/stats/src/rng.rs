//! Deterministic random-number-generation helpers.
//!
//! Every stochastic component in the workspace (dataset generation,
//! Monte Carlo worlds, k-means initialisation, forest bagging) is
//! seeded explicitly so that experiments are bit-reproducible. ChaCha8
//! is used because its output is stable across platforms and `rand`
//! versions (unlike `StdRng`, whose algorithm is unspecified), and its
//! independent stream feature gives cheap per-world substreams.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Creates the RNG for one Monte Carlo world: an independent ChaCha
/// stream derived from `(base_seed, world_index)`.
///
/// Streams are independent by construction, so worlds can be evaluated
/// in parallel, in any order, on any number of threads, and still
/// reproduce identical results.
pub fn world_rng(base_seed: u64, world_index: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed);
    // Stream 0 is the base RNG itself; shift by 1 to keep worlds
    // disjoint from any direct use of `seeded_rng(base_seed)`.
    rng.set_stream(world_index.wrapping_add(1));
    rng
}

/// Creates the RNG for one fixed-size generation chunk of a
/// word-generated Bernoulli world.
///
/// `tag` is the 64-bit value the world's own stream emits first (one
/// `next_u64` from the [`world_rng`] stream), which keys an independent
/// ChaCha generator; `chunk` selects its stream. Because every chunk
/// RNG is positioned absolutely — not relative to the draws of the
/// chunks before it — chunks can be generated sequentially, in
/// parallel, or split across engine shards and still produce the same
/// labels bit for bit.
pub fn chunk_rng(tag: u64, chunk: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(tag);
    rng.set_stream(chunk);
    rng
}

/// Derives a fresh 64-bit seed for a named sub-component from a master
/// seed, using the SplitMix64 finalizer. Lets one user-facing seed
/// drive many independent generators without manual bookkeeping.
pub fn derive_seed(master: u64, component: &str) -> u64 {
    // FNV-1a over the component name, mixed with SplitMix64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in component.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(master ^ h)
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: u64 = seeded_rng(42).gen();
        let b: u64 = seeded_rng(42).gen();
        assert_eq!(a, b);
        let c: u64 = seeded_rng(43).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn world_rngs_are_distinct_streams() {
        let a: u64 = world_rng(1, 0).gen();
        let b: u64 = world_rng(1, 1).gen();
        let c: u64 = world_rng(2, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn world_rng_differs_from_base_rng() {
        let base: u64 = seeded_rng(7).gen();
        let world0: u64 = world_rng(7, 0).gen();
        assert_ne!(base, world0, "world stream must not alias the base stream");
    }

    #[test]
    fn world_rng_reproducible() {
        let a: Vec<u64> = (0..5).map(|i| world_rng(9, i).gen()).collect();
        let b: Vec<u64> = (0..5).map(|i| world_rng(9, i).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_rngs_are_independent_and_absolute() {
        let a: u64 = chunk_rng(5, 0).gen();
        let b: u64 = chunk_rng(5, 1).gen();
        let c: u64 = chunk_rng(6, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(b, chunk_rng(5, 1).gen::<u64>(), "reproducible");
    }

    #[test]
    fn derive_seed_separates_components() {
        let a = derive_seed(5, "kmeans");
        let b = derive_seed(5, "forest");
        let c = derive_seed(6, "kmeans");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(5, "kmeans"));
    }
}
