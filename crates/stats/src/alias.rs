//! Walker's alias method for O(1) categorical sampling.
//!
//! The Poisson/rate audit's Monte Carlo conditions on the total event
//! count and redistributes events over cells proportionally to
//! exposure — a multinomial draw realised as `C` categorical samples.
//! The alias method makes each sample O(1) after O(K) preprocessing,
//! so a world costs O(C + K).

use rand::Rng;

/// Precomputed alias table over `K` categories.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per slot (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alias category per slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one category"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let k = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut alias: Vec<u32> = (0..k as u32).collect();
        // Partition into under- and over-full slots.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Donate mass from l to fill s's slot.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically-full slots.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no categories (never true for a
    /// successfully constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }

    /// Draws `count` samples and returns the per-category histogram —
    /// one multinomial realisation.
    pub fn sample_counts<R: Rng + ?Sized>(&self, count: u64, rng: &mut R) -> Vec<u64> {
        let mut hist = vec![0u64; self.len()];
        for _ in 0..count {
            hist[self.sample(rng)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn single_category_always_wins() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = seeded_rng(1);
        for _ in 0..50 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0, 0.0]);
        let mut rng = seeded_rng(2);
        let hist = t.sample_counts(10_000, &mut rng);
        assert_eq!(hist[1], 0);
        assert_eq!(hist[3], 0);
        assert_eq!(hist[0] + hist[2], 10_000);
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut rng = seeded_rng(3);
        let n = 200_000u64;
        let hist = t.sample_counts(n, &mut rng);
        let total_w: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total_w;
            let observed = hist[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn skewed_weights_are_handled() {
        // One dominant category plus a long tail.
        let mut weights = vec![1e-6; 100];
        weights[7] = 1e6;
        let t = AliasTable::new(&weights);
        let mut rng = seeded_rng(4);
        let hist = t.sample_counts(10_000, &mut rng);
        assert!(hist[7] > 9_900, "dominant category drew {}", hist[7]);
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let t = AliasTable::new(&[1.0; 10]);
        let mut rng = seeded_rng(5);
        let hist = t.sample_counts(100_000, &mut rng);
        for &h in &hist {
            assert!((h as f64 - 10_000.0).abs() < 500.0, "count {h}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = AliasTable::new(&[0.2, 0.3, 0.5]);
        let a = t.sample_counts(1000, &mut seeded_rng(6));
        let b = t.sample_counts(1000, &mut seeded_rng(6));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = AliasTable::new(&[1.0, -0.1]);
    }
}
