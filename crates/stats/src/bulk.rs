//! Bulk Bernoulli sampling: 64 labels per threshold-refinement pass.
//!
//! The Monte Carlo hot loop draws one Bernoulli label per audited
//! point per world. The scalar generator (`rng.gen_bool(ρ)`) costs one
//! `next_u64` **per bit**; this module's [`BulkBernoulli`] draws a
//! whole 64-lane word of independent labels from a handful of random
//! words, so label generation stops being the per-world bottleneck
//! once counting is blocked/popcnt-fast.
//!
//! # Algorithm
//!
//! A Bernoulli(ρ) label is `U < T` for a uniform 53-bit integer `U`
//! and the fixed threshold `T = ⌈ρ·2^53⌉` — exactly the comparison the
//! scalar `gen_bool` path performs (53 mantissa bits against `ρ`), so
//! the word sampler's marginal distribution is *identical* to the
//! scalar one, not merely close. The comparison is resolved lazily,
//! most-significant bit first, across 64 lanes at once:
//!
//! * one `next_u64` supplies bit `b` of all 64 lanes' `U`s;
//! * where `T`'s bit `b` is 1, lanes whose `U`-bit is 0 decide *true*
//!   (`U < T` is settled) and lanes with 1 stay open;
//! * where `T`'s bit is 0, lanes whose `U`-bit is 1 decide *false*
//!   and lanes with 0 stay open.
//!
//! Each pass halves the open-lane count in expectation, so a word of
//! 64 labels costs ~`log₂ 64 + 2 ≈ 8` RNG words instead of 64 — and
//! the loop is **exact**: the per-word fixup for the fractional tail
//! of ρ is simply running the refinement down to `T`'s last bit, where
//! any still-open lane has `U = T` and decides *false*. No label is
//! ever approximated.
//!
//! The scan engine's `WorldGen::Word` generator fills its layout-space
//! label blocks in fixed-size chunks of [`GEN_CHUNK_WORDS`] words via
//! [`BulkBernoulli::fill_words`], one independent ChaCha substream per
//! chunk — which makes the drawn stream independent of shard count and
//! thread count (any partition of the chunk set reproduces it bit for
//! bit). `fill_words` prefetches raw keystream through the RNG's bulk
//! [`RngCore::fill_words`] path; [`BulkBernoulli::sample_word`] is the
//! lazy word-at-a-time reference the bulk path is pinned against.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Versioned world-generation algorithm.
///
/// The two versions draw **statistically equivalent** worlds (same
/// per-label distribution, pinned by the workspace's distribution
/// tests) but consume the RNG stream differently, so their simulated
/// `τ`-streams differ value by value. Any layer that caches or shares
/// simulated worlds must therefore key them by `(null model, seed,
/// worldgen)` — mixing versions inside one world class would silently
/// splice two different streams.
///
/// Within one version, worlds are bit-identical across every index
/// backend and counting strategy (the same cross-engine harness that
/// pins [`McStrategy`](crate::montecarlo::McStrategy)-independent
/// world values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WorldGen {
    /// One RNG draw per label (`gen_bool` / per-id Fisher–Yates) — the
    /// v1 stream every released artifact was computed under. No longer
    /// the default; kept as the exact-replay escape hatch (wire
    /// payloads without a `worldgen` field still decode as Scalar).
    Scalar,
    /// Word-parallel v2 (the default): Bernoulli labels 64 at a time
    /// via [`BulkBernoulli`], drawn in fixed-size chunks of
    /// [`GEN_CHUNK_WORDS`] layout-space words, each chunk from its own
    /// ChaCha substream — so chunk values are independent of shard
    /// count and thread count, and the concatenated chunk draws *are*
    /// the Word stream. Permutation worlds select ranks with a
    /// complement-aware partial Fisher–Yates that initialises the
    /// dense side with whole-word writes.
    #[default]
    Word,
}

impl WorldGen {
    /// All generator versions (drives parse-error messages and
    /// ablation sweeps).
    pub const ALL: [WorldGen; 2] = [WorldGen::Scalar, WorldGen::Word];

    /// Stable lowercase name (CLI/bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            WorldGen::Scalar => "scalar",
            WorldGen::Word => "word",
        }
    }
}

impl std::fmt::Display for WorldGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`WorldGen`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorldGenError {
    input: String,
}

impl std::fmt::Display for ParseWorldGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown world generator {:?}; valid values: ",
            self.input
        )?;
        for (i, gen) in WorldGen::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(gen.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseWorldGenError {}

impl std::str::FromStr for WorldGen {
    type Err = ParseWorldGenError;

    /// Parses the [`Display`](std::fmt::Display) name back (`scalar`,
    /// `word`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorldGen::ALL
            .into_iter()
            .find(|gen| gen.name() == s.trim())
            .ok_or_else(|| ParseWorldGenError {
                input: s.to_string(),
            })
    }
}

/// Number of significand bits in the threshold (and in the uniform
/// each lane compares against) — the same 53-bit resolution the scalar
/// `gen_bool` comparison has.
const THRESHOLD_BITS: u32 = 53;

/// Number of 64-label words in one Word-Bernoulli generation chunk
/// (1024 labels). Each chunk is drawn from its own ChaCha substream
/// (key = the world's 64-bit tag, stream = the chunk index), so a
/// chunk's value does not depend on how many chunks precede it, which
/// worker evaluates it, or how the engine is sharded: the concatenated
/// chunk draws define the Word stream, and any partition of the chunk
/// set reproduces it bit for bit.
pub const GEN_CHUNK_WORDS: usize = 16;

/// Word-parallel exact Bernoulli sampler (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkBernoulli {
    /// `⌈p·2^53⌉`, in `[0, 2^53]`. A lane is *true* iff its uniform
    /// 53-bit integer is `< threshold`.
    threshold: u64,
}

impl BulkBernoulli {
    /// A sampler for success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (mirrors `Rng::gen_bool`).
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // Multiplying by a power of two is exact; ceil keeps the
        // acceptance set {u : u/2^53 < p} — the same set the scalar
        // comparison `(next_u64 >> 11)·2^-53 < p` accepts, so Scalar
        // and Word draw from the identical per-label distribution.
        BulkBernoulli {
            threshold: (p * (1u64 << THRESHOLD_BITS) as f64).ceil() as u64,
        }
    }

    /// The fixed-point acceptance threshold `⌈p·2^53⌉`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Draws 64 independent Bernoulli labels as one word (lane `i` =
    /// label `i`).
    ///
    /// Consumes a *variable* number of `next_u64` draws (expected ≈ 8,
    /// at most 53): one per refinement pass while any lane's
    /// comparison is still open. The consumption is a deterministic
    /// function of the RNG stream, so replays are reproducible — but
    /// it differs from 64 scalar `gen_bool` draws, which is why the
    /// generator version is part of the world-class identity.
    #[inline]
    pub fn sample_word<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample_word_from(&mut || rng.next_u64())
    }

    /// The refinement loop over an arbitrary keystream source — shared
    /// by the lazy per-call path ([`sample_word`](Self::sample_word))
    /// and the prefetched bulk path ([`fill_words`](Self::fill_words)),
    /// so both consume the identical word sequence and decide identical
    /// labels.
    #[inline]
    fn sample_word_from(&self, next_word: &mut impl FnMut() -> u64) -> u64 {
        if self.threshold >= 1u64 << THRESHOLD_BITS {
            // p == 1: every uniform is below the threshold.
            return !0;
        }
        if self.threshold == 0 {
            return 0;
        }
        let mut decided = 0u64; // lanes settled true
        let mut open = !0u64; // lanes still comparing
        let mut bit = THRESHOLD_BITS - 1;
        loop {
            let w = next_word();
            if (self.threshold >> bit) & 1 == 1 {
                // U-bit 0 under a T-bit 1: U < T settled true.
                decided |= open & !w;
                open &= w;
            } else {
                // U-bit 1 over a T-bit 0: U > T settled false.
                open &= !w;
            }
            if open == 0 || bit == 0 {
                // Lanes still open after T's last bit have U == T in
                // every compared position, hence U >= T: false. This
                // is the exact fixup for ρ's fractional tail.
                break;
            }
            bit -= 1;
        }
        decided
    }

    /// Fills `words` with `n` labels (lane `i` of word `w` = label
    /// `64·w + i`), zeroing every lane at position `>= n` so the
    /// result drops into a tail-invariant bitset block array
    /// unchanged.
    ///
    /// The keystream is prefetched through [`RngCore::fill_words`] one
    /// ChaCha-block's worth of words at a time and consumed lazily by
    /// the refinement loop, so the labels are bit-identical to a
    /// [`sample_word`](Self::sample_word) loop (pinned by
    /// `bulk_keystream_fill_matches_word_at_a_time`); the source RNG
    /// may end up advanced past the last word the refinement consumed.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `⌈n/64⌉` blocks.
    pub fn fill_words<R: RngCore + ?Sized>(&self, rng: &mut R, words: &mut [u64], n: usize) {
        assert_eq!(
            words.len(),
            n.div_ceil(64),
            "need one 64-label word per 64 labels"
        );
        let mut buf = [0u64; 8];
        let mut pos = buf.len();
        for (w, word) in words.iter_mut().enumerate() {
            *word = self.sample_word_from(&mut || {
                if pos == buf.len() {
                    rng.fill_words(&mut buf);
                    pos = 0;
                }
                let raw = buf[pos];
                pos += 1;
                raw
            }) & tail_mask(n, w);
        }
    }
}

/// The valid-lane mask of word `w` in an `n`-label array: all ones
/// except for the final partial word, whose lanes past `n` are zero.
#[inline]
pub fn tail_mask(n: usize, word: usize) -> u64 {
    let remaining = n.saturating_sub(word * 64);
    if remaining >= 64 {
        !0
    } else {
        (1u64 << remaining) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{seeded_rng, world_rng};
    use rand::Rng;

    #[test]
    fn worldgen_parse_round_trips() {
        for gen in WorldGen::ALL {
            assert_eq!(gen.to_string().parse::<WorldGen>().unwrap(), gen);
        }
        let err = "simd".parse::<WorldGen>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("simd"), "{msg}");
        assert!(msg.contains("scalar") && msg.contains("word"), "{msg}");
        assert_eq!(WorldGen::default(), WorldGen::Word);
    }

    #[test]
    fn worldgen_serde_round_trips() {
        for gen in WorldGen::ALL {
            let json = serde_json::to_string(&gen).unwrap();
            let back: WorldGen = serde_json::from_str(&json).unwrap();
            assert_eq!(back, gen);
        }
    }

    #[test]
    fn threshold_matches_scalar_acceptance_set() {
        // The sampler accepts u iff u < ceil(p*2^53); the scalar path
        // accepts u iff u * 2^-53 < p. Same set, checked around the
        // boundary for assorted p.
        for p in [0.005, 0.25, 0.3, 0.5, 1.0 / 3.0, 0.9999] {
            let t = BulkBernoulli::new(p).threshold();
            for u in [t.saturating_sub(2), t.saturating_sub(1), t, t + 1] {
                if u >= 1u64 << THRESHOLD_BITS {
                    continue;
                }
                let scalar = (u as f64) * (1.0 / (1u64 << THRESHOLD_BITS) as f64) < p;
                assert_eq!(u < t, scalar, "p={p}, u={u}, t={t}");
            }
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = seeded_rng(1);
        assert_eq!(BulkBernoulli::new(1.0).sample_word(&mut rng), !0);
        assert_eq!(BulkBernoulli::new(0.0).sample_word(&mut rng), 0);
    }

    #[test]
    fn fill_words_is_deterministic_and_tail_clean() {
        let sampler = BulkBernoulli::new(0.37);
        let n = 200usize; // 3 words + 8-lane tail
        let mut a = vec![0u64; n.div_ceil(64)];
        let mut b = vec![0u64; n.div_ceil(64)];
        sampler.fill_words(&mut world_rng(9, 3), &mut a, n);
        sampler.fill_words(&mut world_rng(9, 3), &mut b, n);
        assert_eq!(a, b);
        assert_eq!(a[3] & !tail_mask(n, 3), 0, "tail lanes must be zero");
        assert_eq!(tail_mask(n, 3), (1u64 << 8) - 1);
        assert_eq!(tail_mask(n, 0), !0);
    }

    #[test]
    fn bulk_keystream_fill_matches_word_at_a_time() {
        // The prefetched bulk path reads the same keystream sequence
        // as a sample_word loop, so every label agrees bit for bit.
        for (p, n) in [(0.3, 1024usize), (0.005, 333), (0.97, 64), (0.5, 65)] {
            let sampler = BulkBernoulli::new(p);
            let mut bulk = vec![0u64; n.div_ceil(64)];
            sampler.fill_words(&mut world_rng(17, 5), &mut bulk, n);
            let mut rng = world_rng(17, 5);
            let reference: Vec<u64> = (0..n.div_ceil(64))
                .map(|w| sampler.sample_word(&mut rng) & tail_mask(n, w))
                .collect();
            assert_eq!(bulk, reference, "p={p}, n={n}");
        }
    }

    #[test]
    fn word_popcounts_match_the_binomial_distribution() {
        // χ² goodness-of-fit of per-word popcounts against
        // Binomial(64, p), coarsely bucketed. Deterministic seed; the
        // bound is loose enough to be stable and tight enough to catch
        // a biased or correlated sampler.
        for (p, seed) in [(0.2, 11u64), (0.5, 12), (0.73, 13)] {
            let sampler = BulkBernoulli::new(p);
            let mut rng = seeded_rng(seed);
            let words = 4000usize;
            let mean = 64.0 * p;
            let sd = (64.0 * p * (1.0 - p)).sqrt();
            // Buckets: (-inf, m-s), [m-s, m), [m, m+s), [m+s, inf).
            let edges = [mean - sd, mean, mean + sd];
            let mut observed = [0f64; 4];
            for _ in 0..words {
                let k = sampler.sample_word(&mut rng).count_ones() as f64;
                let bucket = edges.iter().filter(|&&e| k >= e).count();
                observed[bucket] += 1.0;
            }
            // Expected bucket masses from the exact binomial pmf.
            let ln_fact = |k: u64| -> f64 { (1..=k).map(|i| (i as f64).ln()).sum() };
            let mut expected = [0f64; 4];
            for k in 0..=64u64 {
                let ln_pmf = ln_fact(64) - ln_fact(k) - ln_fact(64 - k)
                    + k as f64 * p.ln()
                    + (64 - k) as f64 * (1.0 - p).ln();
                let bucket = edges.iter().filter(|&&e| k as f64 >= e).count();
                expected[bucket] += ln_pmf.exp() * words as f64;
            }
            let chi2: f64 = observed
                .iter()
                .zip(&expected)
                .map(|(o, e)| (o - e) * (o - e) / e)
                .sum();
            // 3 degrees of freedom; the 99.9% quantile is ~16.27.
            assert!(chi2 < 16.27, "p={p}: chi2={chi2}, obs={observed:?}");
        }
    }

    #[test]
    fn lanes_are_independent_of_each_other() {
        // Adjacent-lane correlation over many words should vanish; a
        // sampler that reuses one comparison across lanes would show
        // strong positive correlation.
        let sampler = BulkBernoulli::new(0.4);
        let mut rng = seeded_rng(21);
        let (mut n11, mut n1x, mut nx1, mut total) = (0f64, 0f64, 0f64, 0f64);
        for _ in 0..2000 {
            let w = sampler.sample_word(&mut rng);
            for lane in 0..63 {
                let a = (w >> lane) & 1;
                let b = (w >> (lane + 1)) & 1;
                n11 += (a & b) as f64;
                n1x += a as f64;
                nx1 += b as f64;
                total += 1.0;
            }
        }
        let (pa, pb, pab) = (n1x / total, nx1 / total, n11 / total);
        let corr = (pab - pa * pb) / ((pa * (1.0 - pa) * pb * (1.0 - pb)).sqrt());
        assert!(corr.abs() < 0.02, "adjacent-lane correlation {corr}");
    }

    #[test]
    fn mean_rate_matches_scalar_generator() {
        // Same marginal distribution as gen_bool: long-run rates agree
        // within Monte Carlo noise.
        let p = 0.31;
        let sampler = BulkBernoulli::new(p);
        let mut rng = seeded_rng(33);
        let word_ones: u64 = (0..2000)
            .map(|_| sampler.sample_word(&mut rng).count_ones() as u64)
            .sum();
        let word_rate = word_ones as f64 / (2000.0 * 64.0);
        let mut rng = seeded_rng(34);
        let scalar_ones = (0..128_000).filter(|_| rng.gen_bool(p)).count();
        let scalar_rate = scalar_ones as f64 / 128_000.0;
        assert!((word_rate - p).abs() < 0.01, "word rate {word_rate}");
        assert!(
            (word_rate - scalar_rate).abs() < 0.01,
            "word {word_rate} vs scalar {scalar_rate}"
        );
    }

    #[test]
    fn rng_consumption_is_bounded_and_small() {
        // Count draws per word: expected ~8, never more than 53.
        struct Counting<R> {
            inner: R,
            draws: usize,
        }
        impl<R: RngCore> RngCore for Counting<R> {
            fn next_u32(&mut self) -> u32 {
                self.draws += 1;
                self.inner.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.draws += 1;
                self.inner.next_u64()
            }
        }
        let sampler = BulkBernoulli::new(0.3);
        let mut rng = Counting {
            inner: seeded_rng(44),
            draws: 0,
        };
        let words = 1000;
        for _ in 0..words {
            sampler.sample_word(&mut rng);
        }
        let per_word = rng.draws as f64 / words as f64;
        assert!(per_word <= 53.0, "hard bound violated: {per_word}");
        assert!(
            per_word < 12.0,
            "expected ~8 draws per 64 labels, measured {per_word}"
        );
    }
}
