//! Binomial distribution utilities.
//!
//! The scan statistic itself only needs `xlogy`-style kernels (see
//! [`crate::llr`]); this module provides the full Binomial toolkit used
//! by tests, the exact per-region binomial cross-check (an extension;
//! see DESIGN.md §6), and the figure-6 demonstration that all-negative
//! clusters arise by chance under the null.

use serde::{Deserialize, Serialize};

/// Natural log of `n!`, exact-table for small `n`, Stirling series
/// otherwise (absolute error < 1e-10 for all `n`).
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 257;
    // Lazily built exact table for n < 257.
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate().skip(1) {
            acc += (i as f64).ln();
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        return table[n as usize];
    }
    // Stirling's series with three correction terms.
    let x = n as f64;
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    (x + 0.5) * x.ln() - x + 0.5 * ln2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Log of the Binomial(n, rho) probability mass at `k`.
///
/// Returns `-inf` for impossible outcomes (e.g. `k > 0` when `rho = 0`).
pub fn ln_binomial_pmf(k: u64, n: u64, rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0,1], got {rho}"
    );
    assert!(k <= n, "ln_binomial_pmf: k={k} > n={n}");
    if rho == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if rho == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * rho.ln() + (n - k) as f64 * (1.0 - rho).ln()
}

/// Binomial(n, rho) probability mass at `k`.
pub fn binomial_pmf(k: u64, n: u64, rho: f64) -> f64 {
    ln_binomial_pmf(k, n, rho).exp()
}

/// Binomial(n, rho) lower cumulative probability `P(X ≤ k)`.
///
/// Direct summation; O(k). Fine for the test/extension workloads this
/// crate serves (the scan kernel never calls it).
pub fn binomial_cdf(k: u64, n: u64, rho: f64) -> f64 {
    assert!(k <= n, "binomial_cdf: k={k} > n={n}");
    let mut acc = 0.0;
    for i in 0..=k {
        acc += binomial_pmf(i, n, rho);
    }
    acc.min(1.0)
}

/// Result of an exact binomial test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinomialTest {
    /// Observed successes.
    pub k: u64,
    /// Trials.
    pub n: u64,
    /// Null success probability.
    pub rho: f64,
    /// Two-sided p-value (small-pmf method).
    pub p_value: f64,
}

/// Exact two-sided binomial test (small-pmf method: sums the masses of
/// all outcomes no more likely than the observed one).
///
/// Used as a per-region cross-check for the scan statistic: a region
/// flagged by a huge LLR should also have a tiny binomial p-value
/// against the global rate (ignoring multiplicity).
pub fn binomial_test_two_sided(k: u64, n: u64, rho: f64) -> BinomialTest {
    assert!(k <= n, "binomial_test: k={k} > n={n}");
    let observed = binomial_pmf(k, n, rho);
    // Tolerance for "no more likely": relative epsilon guards float noise.
    let thresh = observed * (1.0 + 1e-7);
    let mut p = 0.0;
    for i in 0..=n {
        let m = binomial_pmf(i, n, rho);
        if m <= thresh {
            p += m;
        }
    }
    BinomialTest {
        k,
        n,
        rho,
        p_value: p.min(1.0),
    }
}

/// Probability that a fixed set of `m` specific observations is
/// all-negative under a fair Bernoulli(ρ) labelling: `(1-ρ)^m`.
///
/// This is the quantity behind the paper's Appendix A: "it is not that
/// uncommon to find a region that contains at least five negatives and
/// no positives by chance".
pub fn all_negative_probability(m: u64, rho: f64) -> f64 {
    assert!((0.0..=1.0).contains(&rho));
    (1.0 - rho).powi(m as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_stirling_is_continuous_at_table_edge() {
        // Compare table value at 256 with recursion from Stirling at 257.
        let lhs = ln_factorial(257);
        let rhs = ln_factorial(256) + 257f64.ln();
        assert!((lhs - rhs).abs() < 1e-9, "diff {}", (lhs - rhs).abs());
    }

    #[test]
    fn ln_factorial_large_matches_recurrence() {
        let lhs = ln_factorial(10_000);
        let rhs = ln_factorial(9_999) + 10_000f64.ln();
        assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, rho) in &[(10u64, 0.3), (25, 0.62), (100, 0.05)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, rho)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} rho={rho} total={total}");
        }
    }

    #[test]
    fn pmf_known_value() {
        // Binomial(4, 0.5) at 2 = 6/16.
        assert!((binomial_pmf(2, 4, 0.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn pmf_degenerate_rho() {
        assert_eq!(binomial_pmf(0, 5, 0.0), 1.0);
        assert_eq!(binomial_pmf(1, 5, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(4, 5, 1.0), 0.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let n = 30;
        let rho = 0.62;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(k, n, rho);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((binomial_cdf(n, n, rho) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_sided_test_is_symmetric_for_fair_coin() {
        let lo = binomial_test_two_sided(2, 20, 0.5);
        let hi = binomial_test_two_sided(18, 20, 0.5);
        assert!((lo.p_value - hi.p_value).abs() < 1e-10);
        assert!(lo.p_value < 0.01);
    }

    #[test]
    fn two_sided_test_center_is_not_significant() {
        let t = binomial_test_two_sided(10, 20, 0.5);
        assert!(t.p_value > 0.5);
    }

    #[test]
    fn two_sided_test_handles_extremes() {
        let t = binomial_test_two_sided(0, 50, 0.5);
        assert!(t.p_value < 1e-12);
        let t = binomial_test_two_sided(25, 50, 0.5);
        assert!((t.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_negative_probability_matches_paper_intuition() {
        // Five negatives under rho=0.62: a single fixed set of 5 points
        // is all-negative with probability 0.38^5 ≈ 0.0079 — rare for
        // ONE set, but with thousands of candidate regions such a
        // cluster appears essentially always (Appendix A).
        let p = all_negative_probability(5, 0.62);
        assert!((p - 0.38f64.powi(5)).abs() < 1e-12);
        // Expected count among 5000 disjoint 5-point cells: ~40.
        assert!(5000.0 * p > 30.0);
    }
}
