//! Poisson spatial scan statistic (extension; see DESIGN.md §6).
//!
//! The paper's framework instantiates the *Bernoulli* scan statistic
//! because its outcomes are per-individual binary labels. Kulldorff's
//! companion model — cited by the paper in §2.3 — is the **Poisson**
//! scan statistic for count data: each region has an observed event
//! count `c(R)` and an expected count `μ(R)` (its share of exposure,
//! e.g. population). This enables rate-style audits such as the
//! paper's crime-forecasting motivation ("the predicted crime rate
//! should not differ greatly from the observed crime rate in all
//! areas") when only area-level counts are available.
//!
//! Under H0 events arise with a single relative risk everywhere; under
//! H1 the risk inside `R` differs. The maximised log-likelihood ratio
//! is
//!
//! ```text
//! LLR = c·ln(c/μ) + (C−c)·ln((C−c)/(C−μ))
//! ```
//!
//! when the inside rate `c/μ` differs from the outside rate
//! `(C−c)/(C−μ)`, and 0 otherwise — with the same `xlogy`-style guard
//! conventions as the Bernoulli kernel.

use crate::llr::xlogy;
use crate::pvalue::Direction;
use serde::{Deserialize, Serialize};

/// Sufficient statistic for a region in the Poisson model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonCounts {
    /// Observed events inside the region (`c(R)`).
    pub c_in: f64,
    /// Expected events inside under H0 (`μ(R)`), proportional to the
    /// region's exposure share.
    pub mu_in: f64,
    /// Total observed events (`C`).
    pub c_total: f64,
    /// Total expected events (must equal `C` after calibration; kept
    /// separate so callers can pass raw exposure).
    pub mu_total: f64,
}

impl PoissonCounts {
    /// Creates and validates the counts.
    ///
    /// # Panics
    /// Panics on negative counts, `c_in > c_total`, `mu_in > mu_total`,
    /// or zero totals.
    pub fn new(c_in: f64, mu_in: f64, c_total: f64, mu_total: f64) -> Self {
        assert!(
            c_in >= 0.0 && mu_in >= 0.0 && c_total > 0.0 && mu_total > 0.0,
            "counts must be non-negative with positive totals"
        );
        assert!(
            c_in <= c_total,
            "inside events ({c_in}) exceed total ({c_total})"
        );
        assert!(
            mu_in <= mu_total,
            "inside exposure ({mu_in}) exceeds total ({mu_total})"
        );
        PoissonCounts {
            c_in,
            mu_in,
            c_total,
            mu_total,
        }
    }

    /// Expected events inside, rescaled so expectations sum to the
    /// observed total (the standard conditioning `Σμ = C`).
    #[inline]
    pub fn mu_in_calibrated(&self) -> f64 {
        self.mu_in * self.c_total / self.mu_total
    }
}

/// Two-sided Poisson scan LLR.
pub fn poisson_llr(counts: &PoissonCounts) -> f64 {
    poisson_llr_directed(counts, Direction::TwoSided)
}

/// Directional Poisson scan LLR (`High` = elevated risk inside, `Low` =
/// depressed risk inside).
pub fn poisson_llr_directed(counts: &PoissonCounts, direction: Direction) -> f64 {
    let c = counts.c_in;
    let cc = counts.c_total;
    let mu = counts.mu_in_calibrated();
    if mu <= 0.0 || mu >= cc {
        // Degenerate exposure: no outside (or no inside) to compare.
        return 0.0;
    }
    let rate_in = c / mu;
    let rate_out = (cc - c) / (cc - mu);
    match direction {
        Direction::TwoSided => {}
        Direction::High => {
            if rate_in <= rate_out {
                return 0.0;
            }
        }
        Direction::Low => {
            if rate_in >= rate_out {
                return 0.0;
            }
        }
    }
    if rate_in == rate_out {
        return 0.0;
    }
    let llr = xlogy(c, rate_in) + xlogy(cc - c, rate_out);
    llr.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_when_observed_matches_expected() {
        // c/mu == 1 everywhere.
        let c = PoissonCounts::new(10.0, 10.0, 100.0, 100.0);
        assert_eq!(poisson_llr(&c), 0.0);
    }

    #[test]
    fn positive_for_excess_risk() {
        let c = PoissonCounts::new(30.0, 10.0, 100.0, 100.0);
        let llr = poisson_llr(&c);
        assert!(llr > 0.0);
        // Hand computation: 30 ln 3 + 70 ln(70/90).
        let expected = 30.0 * 3.0f64.ln() + 70.0 * (70.0f64 / 90.0).ln();
        assert!((llr - expected).abs() < 1e-10, "{llr} vs {expected}");
    }

    #[test]
    fn positive_for_deficit_risk_two_sided() {
        let c = PoissonCounts::new(1.0, 10.0, 100.0, 100.0);
        assert!(poisson_llr(&c) > 0.0);
    }

    #[test]
    fn direction_filters() {
        let excess = PoissonCounts::new(30.0, 10.0, 100.0, 100.0);
        let deficit = PoissonCounts::new(1.0, 10.0, 100.0, 100.0);
        assert!(poisson_llr_directed(&excess, Direction::High) > 0.0);
        assert_eq!(poisson_llr_directed(&excess, Direction::Low), 0.0);
        assert!(poisson_llr_directed(&deficit, Direction::Low) > 0.0);
        assert_eq!(poisson_llr_directed(&deficit, Direction::High), 0.0);
    }

    #[test]
    fn llr_grows_with_deviation() {
        let base = poisson_llr(&PoissonCounts::new(15.0, 10.0, 100.0, 100.0));
        let more = poisson_llr(&PoissonCounts::new(25.0, 10.0, 100.0, 100.0));
        assert!(more > base);
    }

    #[test]
    fn exposure_calibration_is_scale_invariant() {
        // Passing raw exposure (e.g. population) vs pre-normalised
        // expectations gives identical statistics.
        let raw = PoissonCounts::new(30.0, 5_000.0, 100.0, 50_000.0);
        let calibrated = PoissonCounts::new(30.0, 10.0, 100.0, 100.0);
        assert!((poisson_llr(&raw) - poisson_llr(&calibrated)).abs() < 1e-10);
    }

    #[test]
    fn zero_events_inside_is_finite() {
        let c = PoissonCounts::new(0.0, 10.0, 100.0, 100.0);
        let llr = poisson_llr(&c);
        assert!(llr.is_finite() && llr > 0.0);
        // Exact: 100 ln(100/90).
        assert!((llr - 100.0 * (100.0f64 / 90.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn degenerate_exposure_yields_zero() {
        assert_eq!(
            poisson_llr(&PoissonCounts::new(50.0, 100.0, 100.0, 100.0)),
            0.0
        );
        let tiny = PoissonCounts {
            c_in: 0.0,
            mu_in: 0.0,
            c_total: 100.0,
            mu_total: 100.0,
        };
        assert_eq!(poisson_llr(&tiny), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn validation_rejects_inconsistency() {
        let _ = PoissonCounts::new(101.0, 10.0, 100.0, 100.0);
    }
}
