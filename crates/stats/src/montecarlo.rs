//! Monte Carlo calibration of the scan test statistic (paper §3).
//!
//! "We create alternate worlds assuming that the `N` individuals are
//! located as in our data, but their label is determined by a Bernoulli
//! trial with success probability `ρ`. … For each alternate world, we
//! compute the `τ` statistic."
//!
//! This module provides the orchestration: the caller supplies a
//! *world evaluator* — a closure that, given the world's RNG, generates
//! labels and returns that world's maximum statistic `τ`. The engine
//! runs worlds in parallel with deterministic per-world RNG streams and
//! assembles p-value and critical-value information.
//!
//! # Adaptive early termination
//!
//! [`MonteCarlo::run_adaptive`] evaluates worlds in fixed-size batches
//! and stops — Besag–Clifford-style sequential stopping (Besag &
//! Clifford, *Biometrika* 1991) — as soon as the final rank p-value
//! can no longer cross the significance level `α` in either direction.
//! After `m` of the `W` budgeted worlds, with `e_m` simulated
//! statistics `≥ τ`, the full-budget rank `k_W = 1 + e_W` is bounded
//! by `1 + e_m ≤ k_W ≤ 1 + e_m + (W − m)`; writing `K` for the
//! largest rank with `K/(W+1) ≤ α` (computed with the same
//! floating-point comparison the verdict uses, NOT `⌊α·(W+1)⌋`,
//! whose multiply can round across an integer boundary):
//!
//! * **futility** — `1 + e_m > K`: no future outcome can reach
//!   significance (the common case on *fair* data, where `e` grows
//!   linearly and the audit stops after roughly `2K` worlds instead
//!   of `W`);
//! * **certainty** — `1 + e_m + (W − m) ≤ K`: even if every remaining
//!   world exceeded `τ`, the result stays significant (saves up to
//!   `K` worlds on clearly-unfair data).
//!
//! Both stopping rules are *sound*, including in floating point: the
//! truncated rank p-value `(1 + e_m)/(m + 1)` lands on the same side
//! of `α` as the full-budget p-value would. In real arithmetic,
//! futility gives `(1+e_m)/(m+1) ≥ (1+e_m)/w ≥ (K+1)/w` and certainty
//! gives `(1+e_m)/(m+1) ≤ (K−(W−m))/(w−(W−m)) ≤ K/w`; correctly
//! rounded division is monotone, so the rounded p-values inherit the
//! comparisons `> α` and `≤ α` from `K`'s defining property. Hence
//! [`MonteCarloResult::is_significant`] at the stopping `α` always
//! agrees with the full run — a property pinned by this crate's
//! proptests and the ulp-boundary regression tests.
//!
//! Because every world `i` draws from the independent stream
//! `world_rng(seed, i)`, batching changes *which* worlds are
//! evaluated, never their values: a run that reaches the full budget
//! is bit-identical to [`MonteCarlo::run`].
//!
//! Keeping label generation in the caller lets the scan layer use its
//! fast membership-list counting without this crate depending on
//! spatial types.

use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::pvalue::{critical_value, largest_significant_rank, rank_p_value};
use crate::rng::world_rng;

/// How the Monte Carlo budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum McStrategy {
    /// Always evaluate every budgeted world (the paper's procedure).
    #[default]
    FullBudget,
    /// Evaluate worlds in fixed-size batches and stop at the first
    /// batch boundary where the verdict at the configured `α` is
    /// decided (see the module docs). Results are bit-identical to
    /// [`McStrategy::FullBudget`] whenever the full budget is reached.
    ///
    /// What is guaranteed on an early stop is the **global verdict**
    /// (`is_significant` at the stopping `α`). Quantities derived
    /// from the simulated distribution's exact shape — the critical
    /// value, and therefore marginal entries of a per-region findings
    /// list — come from the truncated sample and can differ at the
    /// edges from a full-budget run. Audits that publish per-region
    /// evidence at full fidelity should keep `FullBudget`.
    EarlyStop {
        /// Worlds per batch (the stopping rule is checked at batch
        /// boundaries; smaller batches stop sooner but synchronize
        /// more often).
        batch_size: usize,
    },
}

impl McStrategy {
    /// The default batch size for [`McStrategy::EarlyStop`].
    pub const DEFAULT_BATCH: usize = 64;

    /// Early stopping with the default batch size.
    pub fn early_stop() -> Self {
        McStrategy::EarlyStop {
            batch_size: Self::DEFAULT_BATCH,
        }
    }

    /// Stable lowercase name (CLI/bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            McStrategy::FullBudget => "full-budget",
            McStrategy::EarlyStop { .. } => "early-stop",
        }
    }
}

impl std::fmt::Display for McStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McStrategy::FullBudget => f.write_str("full-budget"),
            McStrategy::EarlyStop { batch_size } => {
                write!(f, "early-stop(batch={batch_size})")
            }
        }
    }
}

/// Error from parsing an [`McStrategy`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMcStrategyError {
    input: String,
}

impl std::fmt::Display for ParseMcStrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown Monte Carlo strategy {:?}; valid values: full-budget, early-stop, \
             early-stop(batch=N) with N > 0",
            self.input
        )
    }
}

impl std::error::Error for ParseMcStrategyError {}

impl std::str::FromStr for McStrategy {
    type Err = ParseMcStrategyError;

    /// Parses the [`Display`](std::fmt::Display) form back: `full-budget`,
    /// `early-stop` (default batch), or `early-stop(batch=N)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMcStrategyError {
            input: s.to_string(),
        };
        match s.trim() {
            "full-budget" => Ok(McStrategy::FullBudget),
            "early-stop" => Ok(McStrategy::early_stop()),
            other => {
                let inner = other
                    .strip_prefix("early-stop(batch=")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .ok_or_else(err)?;
                let batch_size: usize = inner.parse().map_err(|_| err())?;
                if batch_size == 0 {
                    return Err(err());
                }
                Ok(McStrategy::EarlyStop { batch_size })
            }
        }
    }
}

/// Configuration and driver for a Monte Carlo significance simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of *simulated* worlds (`w − 1` in the paper's notation;
    /// the real world makes it `w`).
    pub worlds: usize,
    /// Base seed; world `i` uses the independent stream
    /// `world_rng(seed, i)`.
    pub seed: u64,
    /// Evaluate worlds in parallel (deterministic either way).
    pub parallel: bool,
    /// Budget strategy honored by [`MonteCarlo::run_adaptive`].
    pub strategy: McStrategy,
}

impl MonteCarlo {
    /// Creates a simulation with the given number of simulated worlds.
    pub fn new(worlds: usize, seed: u64) -> Self {
        MonteCarlo {
            worlds,
            seed,
            parallel: true,
            strategy: McStrategy::FullBudget,
        }
    }

    /// Disables parallel evaluation (useful for benchmarks isolating
    /// single-thread cost; results are identical).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Sets the budget strategy used by [`MonteCarlo::run_adaptive`].
    pub fn with_strategy(mut self, strategy: McStrategy) -> Self {
        if let McStrategy::EarlyStop { batch_size } = strategy {
            assert!(batch_size > 0, "batch_size must be positive");
        }
        self.strategy = strategy;
        self
    }

    /// Runs the simulation over the full budget.
    ///
    /// `eval_world` receives the world's deterministic RNG and must
    /// return that world's maximum statistic `τ`. `observed` is the real
    /// world's statistic.
    ///
    /// # Panics
    /// Panics if `worlds == 0`.
    pub fn run<F>(&self, observed: f64, eval_world: F) -> MonteCarloResult
    where
        F: Fn(&mut ChaCha8Rng) -> f64 + Sync,
    {
        assert!(
            self.worlds > 0,
            "Monte Carlo needs at least one simulated world"
        );
        let simulated = self.eval_range(0, self.worlds, &eval_world);
        MonteCarloResult::new(observed, simulated)
    }

    /// Runs the simulation honoring [`MonteCarlo::strategy`], stopping
    /// early once the verdict at significance level `alpha` is decided
    /// (see the module docs for the stopping rule and its soundness).
    ///
    /// With [`McStrategy::FullBudget`] this is exactly [`MonteCarlo::run`].
    ///
    /// # Panics
    /// Panics if `worlds == 0` or `alpha` is outside `(0, 1)`.
    pub fn run_adaptive<F>(&self, observed: f64, alpha: f64, eval_world: F) -> MonteCarloResult
    where
        F: Fn(&mut ChaCha8Rng) -> f64 + Sync,
    {
        assert!(
            self.worlds > 0,
            "Monte Carlo needs at least one simulated world"
        );
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        if self.strategy == McStrategy::FullBudget {
            return self.run(observed, eval_world);
        }
        // Single-lane instance of the batched machinery: the same
        // WorldLane the multi-audit executor replays, so a standalone
        // adaptive run and a batched one stop at the same world by
        // construction.
        let mut lane = WorldLane::new(observed, alpha, self.strategy, self.worlds);
        while let Some(end) = lane.next_checkpoint() {
            let start = lane.cursor();
            lane.feed(&self.eval_range(start, end, &eval_world));
        }
        lane.into_result()
    }

    /// Evaluates worlds `start..end` with their deterministic streams.
    fn eval_range<F>(&self, start: usize, end: usize, eval_world: &F) -> Vec<f64>
    where
        F: Fn(&mut ChaCha8Rng) -> f64 + Sync,
    {
        let simulate = |i: usize| -> f64 {
            let mut rng = world_rng(self.seed, i as u64);
            eval_world(&mut rng)
        };
        if self.parallel {
            (start..end).into_par_iter().map(simulate).collect()
        } else {
            (start..end).map(simulate).collect()
        }
    }
}

/// One audit request's view of a (possibly shared) stream of simulated
/// world statistics, replaying the sequential stopping rule of
/// [`MonteCarlo::run_adaptive`] incrementally.
///
/// Worlds are pushed in stream order; the lane counts exceedances and,
/// under [`McStrategy::EarlyStop`], consults the Besag–Clifford
/// futility/certainty rule at exactly the batch boundaries a standalone
/// adaptive run would — so a lane fed from a *shared* world stream (the
/// batched multi-audit executor) produces a [`MonteCarloResult`] that
/// is bit-identical to running its request alone.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldLane {
    observed: f64,
    strategy: McStrategy,
    budget: usize,
    /// Largest significant rank at the lane's `alpha` (see
    /// [`largest_significant_rank`]); drives the stopping rule.
    k_allow: usize,
    simulated: Vec<f64>,
    exceed: usize,
    stopped: bool,
}

impl WorldLane {
    /// Creates a lane for one request: `observed` statistic, stopping
    /// level `alpha`, budget strategy, and world budget (`w − 1`).
    ///
    /// # Panics
    /// Panics if `budget == 0`, `alpha` is outside `(0, 1)`, or an
    /// early-stop batch size is zero.
    pub fn new(observed: f64, alpha: f64, strategy: McStrategy, budget: usize) -> Self {
        assert!(budget > 0, "Monte Carlo needs at least one simulated world");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        if let McStrategy::EarlyStop { batch_size } = strategy {
            assert!(batch_size > 0, "batch_size must be positive");
        }
        let w = budget + 1;
        // Significance needs final rank k = 1 + e_W <= K, where K is
        // the largest rank with k/w <= alpha — derived with the SAME
        // floating-point comparison `is_significant` uses, not from
        // `floor(alpha*w)`: the multiply can round across an integer
        // boundary (e.g. alpha one ulp below 0.9 with w = 10 gives
        // `alpha*10.0 == 9.0` exactly), and any mismatch would let an
        // early stop contradict the full-budget verdict.
        let k_allow = largest_significant_rank(alpha, w);
        debug_assert!(
            (k_allow == 0 || (k_allow as f64) / (w as f64) <= alpha)
                && (k_allow == w || ((k_allow + 1) as f64) / (w as f64) > alpha),
            "k_allow must be the exact significance boundary"
        );
        WorldLane {
            observed,
            strategy,
            budget,
            k_allow,
            simulated: Vec::new(),
            exceed: 0,
            stopped: false,
        }
    }

    /// The observed statistic this lane ranks against.
    pub fn observed(&self) -> f64 {
        self.observed
    }

    /// The configured world budget (`w − 1`).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of worlds consumed so far — also the index of the next
    /// world this lane needs from its stream.
    pub fn cursor(&self) -> usize {
        self.simulated.len()
    }

    /// `true` once the lane needs no further worlds: the budget is
    /// exhausted or the stopping rule fired.
    pub fn is_done(&self) -> bool {
        self.stopped || self.simulated.len() == self.budget
    }

    /// The next stream position at which this lane can possibly stop:
    /// its next early-stop batch boundary, or the budget end under
    /// [`McStrategy::FullBudget`]. `None` once the lane is done.
    ///
    /// Between [`WorldLane::cursor`] and this position the lane is
    /// committed to consuming every world, which is what lets a
    /// scheduler evaluate whole spans in parallel without overshooting
    /// any lane's stopping point.
    pub fn next_checkpoint(&self) -> Option<usize> {
        if self.is_done() {
            return None;
        }
        Some(match self.strategy {
            McStrategy::FullBudget => self.budget,
            McStrategy::EarlyStop { batch_size } => {
                ((self.simulated.len() / batch_size + 1) * batch_size).min(self.budget)
            }
        })
    }

    /// Feeds the next world's statistic; at batch boundaries, applies
    /// the futility/certainty rule (module docs).
    ///
    /// # Panics
    /// Panics if the lane [`is_done`](WorldLane::is_done).
    pub fn push(&mut self, tau: f64) {
        assert!(!self.is_done(), "lane needs no further worlds");
        if tau >= self.observed {
            self.exceed += 1;
        }
        self.simulated.push(tau);
        if let McStrategy::EarlyStop { batch_size } = self.strategy {
            let m = self.simulated.len();
            if m.is_multiple_of(batch_size) || m == self.budget {
                let remaining = self.budget - m;
                let futile = 1 + self.exceed > self.k_allow;
                let certain = 1 + self.exceed + remaining <= self.k_allow;
                if futile || certain {
                    self.stopped = true;
                }
            }
        }
    }

    /// Bulk-feeds a prefix of the lane's world stream — the replay
    /// primitive of cross-batch world caching: a cached τ-stream
    /// prefix from an earlier batch is pushed through the *same*
    /// stopping rule a live stream would be, so a resumed run stops at
    /// exactly the world a cold run stops at.
    ///
    /// Consumes values in order until the lane is done or the slice is
    /// exhausted; returns how many values were consumed. Unlike
    /// [`WorldLane::push`], feeding a done lane is a no-op (returns
    /// 0), which is what lets a shared cached prefix be offered to
    /// every lane of a group regardless of where each one stops.
    pub fn feed(&mut self, taus: &[f64]) -> usize {
        self.feed_strided(taus, 1, 0)
    }

    /// [`WorldLane::feed`] over a *strided* row buffer: consumes
    /// `values[offset]`, `values[offset + stride]`, … — one lane
    /// column of a flat row-major τ matrix holding `stride` directions
    /// per world. This is how the batched executor replays its flat
    /// span buffers without materialising one `Vec<f64>` per world;
    /// `feed` is the `stride == 1` special case.
    ///
    /// Returns how many values were consumed (0 for a done lane).
    ///
    /// # Panics
    /// Panics if `stride == 0` or `offset >= stride`.
    pub fn feed_strided(&mut self, values: &[f64], stride: usize, offset: usize) -> usize {
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset {offset} outside stride {stride}");
        let mut consumed = 0;
        let mut i = offset;
        while i < values.len() {
            if self.is_done() {
                break;
            }
            self.push(values[i]);
            consumed += 1;
            i += stride;
        }
        consumed
    }

    /// Finalises the lane into a [`MonteCarloResult`].
    ///
    /// # Panics
    /// Panics if the lane still needs worlds.
    pub fn into_result(self) -> MonteCarloResult {
        assert!(
            self.stopped || self.simulated.len() == self.budget,
            "lane still needs worlds ({} of {})",
            self.simulated.len(),
            self.budget
        );
        MonteCarloResult::with_budget(self.observed, self.simulated, self.budget)
    }
}

/// Plans world-evaluation spans for a group of [`WorldLane`]s replaying
/// one shared world stream.
///
/// Every span runs from the common frontier to the *nearest* stopping
/// checkpoint of any still-active lane, so the group never evaluates a
/// world past a point where some lane could have stopped. Lanes that
/// stop early (futility/certainty) simply drop out of the minimum: the
/// worlds their budgets no longer claim are spent only on the lanes
/// whose verdicts are still contested — the early-stop-aware budget
/// reallocation of the batched executor.
#[derive(Debug, Clone, Default)]
pub struct BudgetScheduler {
    frontier: usize,
}

impl BudgetScheduler {
    /// A scheduler at stream position 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stream position the next span starts from.
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// The next span of world indices to evaluate, or `None` when every
    /// lane is done. All active lanes are guaranteed to consume the
    /// whole span (their cursors sit at the frontier and no checkpoint
    /// falls strictly inside it).
    pub fn next_span(&mut self, lanes: &[WorldLane]) -> Option<std::ops::Range<usize>> {
        let end = lanes.iter().filter_map(WorldLane::next_checkpoint).min()?;
        debug_assert!(end > self.frontier, "checkpoints must advance the frontier");
        debug_assert!(
            lanes
                .iter()
                .filter(|l| !l.is_done())
                .all(|l| l.cursor() == self.frontier),
            "active lanes must sit at the frontier"
        );
        let span = self.frontier..end;
        self.frontier = end;
        Some(span)
    }
}

/// Outcome of a Monte Carlo simulation: the observed statistic, the
/// simulated max-statistic distribution, and derived quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// The real world's statistic `τ`.
    pub observed: f64,
    /// The simulated statistics of every *evaluated* world (the full
    /// `w − 1` unless the run stopped early).
    pub simulated: Vec<f64>,
    /// Number of worlds actually evaluated (`== simulated.len()`).
    pub worlds_evaluated: usize,
    /// The configured budget (`w − 1`); `worlds_evaluated < budget`
    /// iff the run stopped early.
    pub budget: usize,
}

impl MonteCarloResult {
    /// Builds a full-budget result from raw pieces (validating
    /// non-emptiness).
    pub fn new(observed: f64, simulated: Vec<f64>) -> Self {
        let budget = simulated.len();
        Self::with_budget(observed, simulated, budget)
    }

    /// Builds a result that may have stopped before exhausting
    /// `budget`.
    pub fn with_budget(observed: f64, simulated: Vec<f64>, budget: usize) -> Self {
        assert!(!simulated.is_empty(), "need at least one simulated world");
        assert!(
            simulated.len() <= budget,
            "evaluated {} worlds but budget is {budget}",
            simulated.len()
        );
        MonteCarloResult {
            observed,
            worlds_evaluated: simulated.len(),
            simulated,
            budget,
        }
    }

    /// Total number of evaluated worlds `w` (simulated + the real one).
    pub fn num_worlds(&self) -> usize {
        self.simulated.len() + 1
    }

    /// `true` iff the run stopped before exhausting its budget.
    pub fn early_stopped(&self) -> bool {
        self.worlds_evaluated < self.budget
    }

    /// The rank p-value `k/w` of the observed statistic over the
    /// evaluated worlds.
    ///
    /// For an early-stopped run this is the Besag–Clifford sequential
    /// p-value: a valid p-value whose comparison against the stopping
    /// `α` always matches the full-budget verdict (module docs).
    pub fn p_value(&self) -> f64 {
        rank_p_value(self.observed, &self.simulated)
    }

    /// The significance threshold for *any* statistic at level `alpha`
    /// (see [`critical_value`]): region statistics above this value are
    /// individually significant.
    ///
    /// For an early-stopped run the threshold comes from the truncated
    /// simulated distribution — coarser, but only futility stops can
    /// truncate aggressively, and those runs have no significant
    /// regions to rank.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        critical_value(&self.simulated, alpha)
    }

    /// Whether the observed statistic is significant at `alpha`
    /// (equivalently: `p_value() <= alpha`).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value() <= alpha
    }

    /// Mean of the simulated distribution (diagnostic).
    pub fn simulated_mean(&self) -> f64 {
        self.simulated.iter().sum::<f64>() / self.simulated.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let mc = MonteCarlo::new(50, 123);
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let a = mc.run(0.5, eval);
        let b = mc.run(0.5, eval);
        assert_eq!(a, b);
        let seq = MonteCarlo::new(50, 123).sequential().run(0.5, eval);
        assert_eq!(a, seq, "parallel and sequential must agree exactly");
    }

    #[test]
    fn different_seeds_differ() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let a = MonteCarlo::new(20, 1).run(0.5, eval);
        let b = MonteCarlo::new(20, 2).run(0.5, eval);
        assert_ne!(a.simulated, b.simulated);
    }

    #[test]
    fn p_value_of_extreme_observation_is_minimal() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(99, 7).run(1e9, eval);
        assert_eq!(r.p_value(), 1.0 / 100.0);
        assert!(r.is_significant(0.05));
        assert!(!r.early_stopped());
        assert_eq!(r.worlds_evaluated, 99);
        assert_eq!(r.budget, 99);
    }

    #[test]
    fn p_value_of_typical_observation_is_large() {
        // Observation drawn from the same distribution as the sims
        // should not be significant (median p around 0.5).
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(999, 11).run(0.5, eval);
        assert!(r.p_value() > 0.2 && r.p_value() < 0.8, "p={}", r.p_value());
        assert!(!r.is_significant(0.05));
    }

    #[test]
    fn uniform_null_calibration() {
        // For a continuous statistic, the MC p-value of a null draw is
        // (sub-)uniform: P(p <= alpha) ≈ alpha. Check the 10% level by
        // repeating small simulations.
        let mut hits = 0;
        let trials = 200;
        for t in 0..trials {
            let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
            let mut obs_rng = crate::rng::seeded_rng(50_000 + t);
            let observed: f64 = obs_rng.gen();
            let r = MonteCarlo::new(39, 1000 + t).run(observed, eval);
            if r.p_value() <= 0.1 {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - 0.1).abs() < 0.06,
            "null rejection rate {rate} not ~0.1"
        );
    }

    #[test]
    fn critical_value_consistency() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(999, 3).run(0.5, eval);
        let c = r.critical_value(0.005);
        // Exactly floor(0.005 * 1000) = 5 sims are >= c.
        let above_eq = r.simulated.iter().filter(|&&s| s >= c).count();
        assert_eq!(above_eq, 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_worlds_rejected() {
        let _ = MonteCarlo::new(0, 1).run(0.0, |_| 0.0);
    }

    // ------------------------------------------------------------------
    // Adaptive early stopping
    // ------------------------------------------------------------------

    fn adaptive(worlds: usize, seed: u64, batch: usize) -> MonteCarlo {
        MonteCarlo::new(worlds, seed).with_strategy(McStrategy::EarlyStop { batch_size: batch })
    }

    #[test]
    fn full_budget_strategy_is_bit_identical_via_adaptive() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let full = MonteCarlo::new(199, 5).run(0.42, eval);
        let adaptive = MonteCarlo::new(199, 5).run_adaptive(0.42, 0.05, eval);
        assert_eq!(full, adaptive, "FullBudget run_adaptive must match run");
    }

    #[test]
    fn completed_early_stop_run_matches_full_run_exactly() {
        // An observation near the middle keeps the verdict undecided
        // until late; when the budget is exhausted, the result must be
        // bit-identical to the non-adaptive run.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let full = MonteCarlo::new(99, 6).run(0.0, eval);
        let adapt = adaptive(99, 6, 10).run_adaptive(0.0, 0.5, eval);
        // observed 0.0 is below every sim: futility can only trigger
        // once enough sims accumulate. With alpha=0.5, K=50, futility
        // needs e_m > 49 -> m >= 50; so it stops early but every
        // evaluated world equals the full run's prefix.
        assert_eq!(
            full.simulated[..adapt.worlds_evaluated],
            adapt.simulated[..],
            "prefix property: batching never changes world values"
        );
    }

    #[test]
    fn futility_stops_early_on_null_observations() {
        // Observed statistic from the null's bulk at a small alpha:
        // e_m exceeds K long before the budget is spent.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = adaptive(999, 7, 32).run_adaptive(0.4, 0.01, eval);
        assert!(r.early_stopped());
        assert!(
            r.worlds_evaluated < 200,
            "futility should fire fast, used {}",
            r.worlds_evaluated
        );
        assert!(!r.is_significant(0.01));
        // Agrees with the full-budget verdict.
        let full = MonteCarlo::new(999, 7).run(0.4, eval);
        assert_eq!(full.is_significant(0.01), r.is_significant(0.01));
    }

    #[test]
    fn certainty_stops_before_budget_on_extreme_observations() {
        // Observed far above every sim: once remaining worlds cannot
        // flip the verdict, stop. Saves floor(alpha*w) worlds.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = adaptive(999, 8, 64).run_adaptive(1e9, 0.05, eval);
        assert!(r.early_stopped());
        // K = floor(0.05*1000) = 50; certainty at m >= 999 - 49 = 950,
        // so the batch covering world 950..960 triggers it (=960).
        assert!(
            r.worlds_evaluated <= 999 - 32,
            "certainty should save at least half a batch, used {}",
            r.worlds_evaluated
        );
        assert!(r.is_significant(0.05));
        let full = MonteCarlo::new(999, 8).run(1e9, eval);
        assert_eq!(full.is_significant(0.05), r.is_significant(0.05));
    }

    #[test]
    fn early_stop_verdicts_match_full_budget_across_observations() {
        // Sweep observations across the distribution at several alphas
        // and batch sizes; the decided verdict must always agree.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        for &alpha in &[0.01, 0.05, 0.1, 0.25] {
            for &batch in &[1usize, 7, 32, 1000] {
                for obs_i in 0..20 {
                    let observed = obs_i as f64 / 20.0;
                    let full = MonteCarlo::new(199, 9).run(observed, eval);
                    let adapt = adaptive(199, 9, batch).run_adaptive(observed, alpha, eval);
                    assert_eq!(
                        full.is_significant(alpha),
                        adapt.is_significant(alpha),
                        "verdict mismatch at obs={observed}, alpha={alpha}, batch={batch}, \
                         evaluated={}",
                        adapt.worlds_evaluated
                    );
                }
            }
        }
    }

    #[test]
    fn early_stop_agrees_at_floating_point_alpha_boundaries() {
        // Regression: alpha one ulp below a rank boundary k/w makes
        // `floor(alpha*w)` round UP across the integer (e.g. alpha =
        // prev(0.9), w = 10: alpha*10.0 == 9.0 exactly), which made the
        // old certainty rule fire on a non-significant observation.
        // k_allow must come from the same k/w <= alpha comparison the
        // verdict uses.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let prev = |x: f64| f64::from_bits(x.to_bits() - 1);
        let next = |x: f64| f64::from_bits(x.to_bits() + 1);
        for worlds in [9usize, 19, 39] {
            let w = worlds + 1;
            for k in 1..w {
                let boundary = k as f64 / w as f64;
                for alpha in [prev(boundary), boundary, next(boundary)] {
                    if !(alpha > 0.0 && alpha < 1.0) {
                        continue;
                    }
                    for obs_i in 0..=10 {
                        let observed = obs_i as f64 / 10.0;
                        let full = MonteCarlo::new(worlds, 31).run(observed, eval);
                        for batch in [1usize, 4, 64] {
                            let adapt =
                                adaptive(worlds, 31, batch).run_adaptive(observed, alpha, eval);
                            assert_eq!(
                                full.is_significant(alpha),
                                adapt.is_significant(alpha),
                                "worlds={worlds}, k={k}, alpha={alpha:.17}, \
                                 observed={observed}, batch={batch}, evaluated={}",
                                adapt.worlds_evaluated
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn largest_significant_rank_matches_verdict_comparison() {
        let prev = |x: f64| f64::from_bits(x.to_bits() - 1);
        for w in [2usize, 10, 20, 100, 1000] {
            for k in 1..w.min(50) {
                for alpha in [k as f64 / w as f64, prev(k as f64 / w as f64), 0.005, 0.05] {
                    if !(alpha > 0.0 && alpha < 1.0) {
                        continue;
                    }
                    let k_allow = largest_significant_rank(alpha, w);
                    // Exactly the verdict comparison on both sides of
                    // the boundary.
                    if k_allow > 0 {
                        assert!(
                            k_allow as f64 / w as f64 <= alpha,
                            "w={w}, alpha={alpha:.17}"
                        );
                    }
                    if k_allow < w {
                        assert!(
                            (k_allow + 1) as f64 / w as f64 > alpha,
                            "w={w}, alpha={alpha:.17}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_replay_matches_run_adaptive_everywhere() {
        // A lane fed the same stream must agree with run_adaptive on
        // every field: stopping point, simulated prefix, budget.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        for &(worlds, batch) in &[(199usize, 10usize), (99, 7), (50, 64), (31, 1)] {
            let taus: Vec<f64> = (0..worlds)
                .map(|i| {
                    let mut rng = world_rng(17, i as u64);
                    eval(&mut rng)
                })
                .collect();
            for &alpha in &[0.01, 0.05, 0.3] {
                for obs_i in 0..10 {
                    let observed = obs_i as f64 / 10.0;
                    let strategy = McStrategy::EarlyStop { batch_size: batch };
                    let reference = MonteCarlo::new(worlds, 17)
                        .with_strategy(strategy)
                        .run_adaptive(observed, alpha, eval);
                    let mut lane = WorldLane::new(observed, alpha, strategy, worlds);
                    for &tau in &taus {
                        if lane.is_done() {
                            break;
                        }
                        lane.push(tau);
                    }
                    assert_eq!(lane.into_result(), reference);
                }
            }
        }
    }

    #[test]
    fn lane_feed_replays_a_cached_prefix_identically() {
        // A lane fed a whole cached stream in one call must land in
        // exactly the state of a lane fed world by world.
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let taus: Vec<f64> = (0..199)
            .map(|i| {
                let mut rng = world_rng(23, i as u64);
                eval(&mut rng)
            })
            .collect();
        for &(alpha, batch) in &[(0.05, 8usize), (0.25, 1), (0.01, 64)] {
            for obs_i in 0..8 {
                let observed = obs_i as f64 / 8.0;
                let strategy = McStrategy::EarlyStop { batch_size: batch };
                let mut stepped = WorldLane::new(observed, alpha, strategy, 199);
                for &tau in &taus {
                    if stepped.is_done() {
                        break;
                    }
                    stepped.push(tau);
                }
                let mut fed = WorldLane::new(observed, alpha, strategy, 199);
                let consumed = fed.feed(&taus);
                assert_eq!(consumed, stepped.cursor());
                assert_eq!(fed.into_result(), stepped.into_result());
            }
        }
    }

    #[test]
    fn lane_feed_strided_matches_column_extraction() {
        // Feeding column `d` of a flat row-major matrix must equal
        // feeding the extracted column, for every stopping behavior.
        let stride = 3;
        let rows = 60;
        let values: Vec<f64> = (0..rows * stride).map(|i| (i % 17) as f64 / 17.0).collect();
        for offset in 0..stride {
            for &(alpha, strategy) in &[
                (0.05, McStrategy::FullBudget),
                (0.25, McStrategy::EarlyStop { batch_size: 8 }),
                (0.01, McStrategy::EarlyStop { batch_size: 1 }),
            ] {
                let column: Vec<f64> = (0..rows).map(|w| values[w * stride + offset]).collect();
                let mut strided = WorldLane::new(0.5, alpha, strategy, 40);
                let mut plain = WorldLane::new(0.5, alpha, strategy, 40);
                let a = strided.feed_strided(&values, stride, offset);
                let b = plain.feed(&column);
                assert_eq!(a, b, "offset {offset}, {strategy}");
                assert_eq!(strided.into_result(), plain.into_result());
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside stride")]
    fn feed_strided_rejects_offset_past_stride() {
        let mut lane = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 4);
        lane.feed_strided(&[0.0; 8], 2, 2);
    }

    #[test]
    fn lane_feed_is_incremental_and_tolerates_done_lanes() {
        // Feeding in arbitrary chunks equals feeding at once; feeding a
        // finished lane consumes nothing instead of panicking.
        let mut chunked = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 10);
        let stream: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        assert_eq!(chunked.feed(&stream[..3]), 3);
        assert_eq!(chunked.feed(&stream[3..7]), 4);
        assert_eq!(chunked.feed(&stream[7..]), 3, "budget caps consumption");
        assert!(chunked.is_done());
        assert_eq!(chunked.feed(&stream), 0, "done lanes consume nothing");
        let mut whole = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 10);
        assert_eq!(whole.feed(&stream), 10);
        assert_eq!(chunked.into_result(), whole.into_result());
    }

    #[test]
    fn lane_full_budget_consumes_everything() {
        let mut lane = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 5);
        assert_eq!(lane.next_checkpoint(), Some(5));
        for i in 0..5 {
            assert_eq!(lane.cursor(), i);
            lane.push(i as f64);
        }
        assert!(lane.is_done());
        assert_eq!(lane.next_checkpoint(), None);
        let r = lane.into_result();
        assert_eq!(r.worlds_evaluated, 5);
        assert!(!r.early_stopped());
    }

    #[test]
    fn lane_checkpoints_are_batch_boundaries() {
        let lane = WorldLane::new(0.5, 0.05, McStrategy::EarlyStop { batch_size: 8 }, 20);
        assert_eq!(lane.next_checkpoint(), Some(8));
        let mut lane = lane;
        for _ in 0..8 {
            lane.push(0.0);
        }
        assert_eq!(lane.next_checkpoint(), Some(16));
        for _ in 0..8 {
            lane.push(0.0);
        }
        // Final partial batch is clamped to the budget.
        assert_eq!(lane.next_checkpoint(), Some(20));
    }

    #[test]
    #[should_panic(expected = "needs no further worlds")]
    fn lane_rejects_overfeeding() {
        let mut lane = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 1);
        lane.push(0.0);
        lane.push(0.0);
    }

    #[test]
    #[should_panic(expected = "still needs worlds")]
    fn incomplete_lane_cannot_finalise() {
        let lane = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 2);
        let _ = lane.into_result();
    }

    #[test]
    fn scheduler_spans_stop_at_nearest_checkpoint() {
        // Two lanes: budgets 10 and 30, batch sizes 4 and 64. Spans
        // must advance to the nearest checkpoint of any active lane.
        let mut lanes = vec![
            WorldLane::new(f64::MAX, 0.5, McStrategy::EarlyStop { batch_size: 4 }, 10),
            WorldLane::new(f64::MAX, 0.5, McStrategy::FullBudget, 30),
        ];
        // observed = MAX means no sim ever exceeds it; with alpha 0.5
        // and budget 10 (K = 5), certainty fires at the first boundary
        // where remaining <= K - 1, i.e. m = 8 (remaining 2).
        let mut scheduler = BudgetScheduler::new();
        let mut spans = Vec::new();
        while let Some(span) = scheduler.next_span(&lanes) {
            spans.push(span.clone());
            for _ in span {
                for lane in &mut lanes {
                    if !lane.is_done() {
                        lane.push(0.0);
                    }
                }
            }
        }
        assert_eq!(spans[0], 0..4);
        assert_eq!(spans[1], 4..8);
        // Lane 0 stopped (certainty) at 8: the rest of the stream is
        // spent only on lane 1, in one span to its budget end.
        assert_eq!(spans[2], 8..30);
        assert_eq!(spans.len(), 3);
        assert!(lanes[0].is_done() && lanes[1].is_done());
        assert_eq!(lanes[0].cursor(), 8, "lane 0 saved its last 2 worlds");
        assert_eq!(lanes[1].cursor(), 30);
    }

    #[test]
    fn scheduler_handles_empty_and_finished_groups() {
        let mut scheduler = BudgetScheduler::new();
        assert_eq!(scheduler.next_span(&[]), None);
        let mut lane = WorldLane::new(0.5, 0.05, McStrategy::FullBudget, 1);
        lane.push(1.0);
        assert_eq!(scheduler.next_span(std::slice::from_ref(&lane)), None);
        assert_eq!(scheduler.frontier(), 0);
    }

    #[test]
    fn strategy_parse_round_trips() {
        for strategy in [
            McStrategy::FullBudget,
            McStrategy::early_stop(),
            McStrategy::EarlyStop { batch_size: 7 },
        ] {
            let shown = strategy.to_string();
            let back: McStrategy = shown.parse().unwrap();
            assert_eq!(back, strategy, "round trip via {shown:?}");
        }
        // The bare name uses the default batch.
        assert_eq!(
            "early-stop".parse::<McStrategy>().unwrap(),
            McStrategy::early_stop()
        );
        for bad in ["", "full", "early-stop(batch=0)", "early-stop(batch=x)"] {
            let err = bad.parse::<McStrategy>().unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("full-budget"), "{msg}");
            assert!(msg.contains("early-stop"), "{msg}");
        }
    }

    #[test]
    fn strategy_serializes() {
        for strategy in [McStrategy::FullBudget, McStrategy::early_stop()] {
            let mc = MonteCarlo::new(9, 1).with_strategy(strategy);
            let json = serde_json::to_string(&mc).unwrap();
            let back: MonteCarlo = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mc);
        }
        assert_eq!(McStrategy::early_stop().name(), "early-stop");
        assert_eq!(McStrategy::FullBudget.to_string(), "full-budget");
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_rejected() {
        let _ = MonteCarlo::new(9, 1).with_strategy(McStrategy::EarlyStop { batch_size: 0 });
    }
}
