//! Monte Carlo calibration of the scan test statistic (paper §3).
//!
//! "We create alternate worlds assuming that the `N` individuals are
//! located as in our data, but their label is determined by a Bernoulli
//! trial with success probability `ρ`. … For each alternate world, we
//! compute the `τ` statistic."
//!
//! This module provides the orchestration: the caller supplies a
//! *world evaluator* — a closure that, given the world's RNG, generates
//! labels and returns that world's maximum statistic `τ`. The engine
//! runs the `w − 1` worlds in parallel with deterministic per-world RNG
//! streams and assembles p-value and critical-value information.
//!
//! Keeping label generation in the caller lets the scan layer use its
//! fast membership-list counting without this crate depending on
//! spatial types.

use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::pvalue::{critical_value, rank_p_value};
use crate::rng::world_rng;

/// Configuration and driver for a Monte Carlo significance simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of *simulated* worlds (`w − 1` in the paper's notation;
    /// the real world makes it `w`).
    pub worlds: usize,
    /// Base seed; world `i` uses the independent stream
    /// `world_rng(seed, i)`.
    pub seed: u64,
    /// Evaluate worlds in parallel (deterministic either way).
    pub parallel: bool,
}

impl MonteCarlo {
    /// Creates a simulation with the given number of simulated worlds.
    pub fn new(worlds: usize, seed: u64) -> Self {
        MonteCarlo {
            worlds,
            seed,
            parallel: true,
        }
    }

    /// Disables parallel evaluation (useful for benchmarks isolating
    /// single-thread cost; results are identical).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Runs the simulation.
    ///
    /// `eval_world` receives the world's deterministic RNG and must
    /// return that world's maximum statistic `τ`. `observed` is the real
    /// world's statistic.
    ///
    /// # Panics
    /// Panics if `worlds == 0`.
    pub fn run<F>(&self, observed: f64, eval_world: F) -> MonteCarloResult
    where
        F: Fn(&mut ChaCha8Rng) -> f64 + Sync,
    {
        assert!(
            self.worlds > 0,
            "Monte Carlo needs at least one simulated world"
        );
        let simulate = |i: usize| -> f64 {
            let mut rng = world_rng(self.seed, i as u64);
            eval_world(&mut rng)
        };
        let simulated: Vec<f64> = if self.parallel {
            (0..self.worlds).into_par_iter().map(simulate).collect()
        } else {
            (0..self.worlds).map(simulate).collect()
        };
        MonteCarloResult::new(observed, simulated)
    }
}

/// Outcome of a Monte Carlo simulation: the observed statistic, the
/// simulated max-statistic distribution, and derived quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// The real world's statistic `τ`.
    pub observed: f64,
    /// The `w − 1` simulated statistics.
    pub simulated: Vec<f64>,
}

impl MonteCarloResult {
    /// Builds a result from raw pieces (validating non-emptiness).
    pub fn new(observed: f64, simulated: Vec<f64>) -> Self {
        assert!(!simulated.is_empty(), "need at least one simulated world");
        MonteCarloResult {
            observed,
            simulated,
        }
    }

    /// Total number of worlds `w` (simulated + the real one).
    pub fn num_worlds(&self) -> usize {
        self.simulated.len() + 1
    }

    /// The rank p-value `k/w` of the observed statistic.
    pub fn p_value(&self) -> f64 {
        rank_p_value(self.observed, &self.simulated)
    }

    /// The significance threshold for *any* statistic at level `alpha`
    /// (see [`critical_value`]): region statistics above this value are
    /// individually significant.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        critical_value(&self.simulated, alpha)
    }

    /// Whether the observed statistic is significant at `alpha`
    /// (equivalently: `p_value() <= alpha`).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value() <= alpha
    }

    /// Mean of the simulated distribution (diagnostic).
    pub fn simulated_mean(&self) -> f64 {
        self.simulated.iter().sum::<f64>() / self.simulated.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let mc = MonteCarlo::new(50, 123);
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let a = mc.run(0.5, eval);
        let b = mc.run(0.5, eval);
        assert_eq!(a, b);
        let seq = MonteCarlo::new(50, 123).sequential().run(0.5, eval);
        assert_eq!(a, seq, "parallel and sequential must agree exactly");
    }

    #[test]
    fn different_seeds_differ() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let a = MonteCarlo::new(20, 1).run(0.5, eval);
        let b = MonteCarlo::new(20, 2).run(0.5, eval);
        assert_ne!(a.simulated, b.simulated);
    }

    #[test]
    fn p_value_of_extreme_observation_is_minimal() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(99, 7).run(1e9, eval);
        assert_eq!(r.p_value(), 1.0 / 100.0);
        assert!(r.is_significant(0.05));
    }

    #[test]
    fn p_value_of_typical_observation_is_large() {
        // Observation drawn from the same distribution as the sims
        // should not be significant (median p around 0.5).
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(999, 11).run(0.5, eval);
        assert!(r.p_value() > 0.2 && r.p_value() < 0.8, "p={}", r.p_value());
        assert!(!r.is_significant(0.05));
    }

    #[test]
    fn uniform_null_calibration() {
        // For a continuous statistic, the MC p-value of a null draw is
        // (sub-)uniform: P(p <= alpha) ≈ alpha. Check the 10% level by
        // repeating small simulations.
        let mut hits = 0;
        let trials = 200;
        for t in 0..trials {
            let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
            let mut obs_rng = crate::rng::seeded_rng(50_000 + t);
            let observed: f64 = obs_rng.gen();
            let r = MonteCarlo::new(39, 1000 + t).run(observed, eval);
            if r.p_value() <= 0.1 {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - 0.1).abs() < 0.06,
            "null rejection rate {rate} not ~0.1"
        );
    }

    #[test]
    fn critical_value_consistency() {
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let r = MonteCarlo::new(999, 3).run(0.5, eval);
        let c = r.critical_value(0.005);
        // Exactly floor(0.005 * 1000) = 5 sims are >= c.
        let above_eq = r.simulated.iter().filter(|&&s| s >= c).count();
        assert_eq!(above_eq, 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_worlds_rejected() {
        let _ = MonteCarlo::new(0, 1).run(0.0, |_| 0.0);
    }
}
