//! Pluggable per-region test-statistic kernels.
//!
//! The scan pipeline is statistic-agnostic everywhere except one small
//! fold: given a region's count pair `(n(R), p(R))` and the world
//! totals `(N, P)`, produce the region's score, whose maximum over
//! regions is the test statistic `τ`. [`TauKernel`] owns exactly that
//! fold, so every statistic automatically inherits the engine's fused
//! counting, sharded reduces, world caching, batching, and
//! Besag–Clifford early stopping — none of which look inside the
//! score.
//!
//! Three kernels ship:
//!
//! * [`Statistic::BernoulliLlr`] — the paper's statistic (§3, Eq. 1):
//!   the directed Bernoulli scan LLR of [`crate::llr`]. The pinned
//!   default; every pre-kernel result is reproduced bit for bit.
//! * [`Statistic::EqualOppTpr`] — equal opportunity: the same LLR
//!   fold, but the audited stream is conditioned on `y_true` so
//!   `p(R)/n(R)` is the region's *true-positive rate*. The
//!   conditioning happens at data preparation
//!   (`SpatialOutcomes::from_predictions` in `sfscan` keeps only the
//!   ground-truth-positive observations); the kernel identity keeps
//!   TPR world streams from ever mixing with decision-rate streams in
//!   a shared world cache.
//! * [`Statistic::MeanResidual`] — continuous outcomes: the region's
//!   standardized mean residual. With `ρ = P/N` the world's mean
//!   label, each observation's residual is `y_i − ρ` and the region
//!   score is `|mean residual| · √n(R) / √(ρ(1−ρ))` (one- or
//!   two-sided per the direction). This ranks regions by *average
//!   deviation per observation* — a genuinely different ordering from
//!   the LLR, which rewards large regions logarithmically — and pairs
//!   naturally with permutation nulls, where every world holds `P`
//!   fixed. Continuous outcome streams enter by centering/thresholding
//!   at preparation time (the `meanvar` moment machinery in `sfscan`).

use crate::llr::{bernoulli_llr_directed, Counts2x2};
use crate::pvalue::Direction;
use serde::{Deserialize, Serialize};

/// Which per-region test statistic an audit maximises.
///
/// The statistic is part of the *world-class identity* wherever worlds
/// are shared or cached: two requests agreeing on `(null model, seed,
/// worldgen)` but not on the statistic draw the same label worlds yet
/// produce different τ streams, so they must never share cached rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Statistic {
    /// The paper's directed Bernoulli scan LLR (the v1 statistic; the
    /// default, and what every payload without a `statistic` field
    /// means).
    #[default]
    BernoulliLlr,
    /// Equal opportunity: Bernoulli scan LLR over the
    /// `y_true`-conditioned stream, auditing per-region TPR.
    EqualOppTpr,
    /// Standardized per-region mean residual (continuous outcomes).
    MeanResidual,
}

impl Statistic {
    /// All selectable statistics (drives parse-error messages and
    /// bench sweeps).
    pub const ALL: [Statistic; 3] = [
        Statistic::BernoulliLlr,
        Statistic::EqualOppTpr,
        Statistic::MeanResidual,
    ];

    /// Stable kebab-case name (CLI/wire/bench token).
    pub fn name(&self) -> &'static str {
        match self {
            Statistic::BernoulliLlr => "bernoulli-llr",
            Statistic::EqualOppTpr => "equal-opp-tpr",
            Statistic::MeanResidual => "mean-residual",
        }
    }
}

impl std::fmt::Display for Statistic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`Statistic`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStatisticError {
    input: String,
}

impl std::fmt::Display for ParseStatisticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown statistic {:?}; valid values: ", self.input)?;
        for (i, statistic) in Statistic::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(statistic.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseStatisticError {}

impl std::str::FromStr for Statistic {
    type Err = ParseStatisticError;

    /// Parses the [`Display`](std::fmt::Display) name back
    /// (`bernoulli-llr`, `equal-opp-tpr`, `mean-residual`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Statistic::ALL
            .into_iter()
            .find(|statistic| statistic.name() == s.trim())
            .ok_or_else(|| ParseStatisticError {
                input: s.to_string(),
            })
    }
}

// The wire form is the kebab token itself, shared with the CLI, so a
// transcript grep for "equal-opp-tpr" finds both.
impl Serialize for Statistic {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(String::from(self.name()))
    }
}

impl Deserialize for Statistic {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some(s) => s
                .parse()
                .map_err(|e: ParseStatisticError| serde::Error::msg(e.to_string())),
            None => Err(serde::Error::msg(format!(
                "expected a statistic name string, got {}",
                value.kind()
            ))),
        }
    }
}

/// The per-region score fold of one world: world totals plus the
/// statistic, scoring count pairs.
///
/// Build one per evaluated world (`N` is world-invariant; `P` is that
/// world's positive total) and fold it over the per-region counts the
/// engine produces. Scores are `≥ 0`, `0` for degenerate regions
/// (`n(R) = 0` or `n(R) = N`), and direction-gated exactly like the
/// directed LLR, so `max` over regions is well-defined for every
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauKernel {
    statistic: Statistic,
    n_total: u64,
    p_total: u64,
}

impl TauKernel {
    /// A kernel scoring regions against the world totals `(n_total,
    /// p_total)`.
    pub fn new(statistic: Statistic, n_total: u64, p_total: u64) -> Self {
        TauKernel {
            statistic,
            n_total,
            p_total,
        }
    }

    /// The statistic this kernel computes.
    pub fn statistic(&self) -> Statistic {
        self.statistic
    }

    /// Scores one region's count pair. The τ contribution: the test
    /// statistic is the maximum of this over all regions.
    #[inline]
    pub fn score(&self, n_r: u64, p_r: u64, direction: Direction) -> f64 {
        match self.statistic {
            // EqualOppTpr is the LLR fold over the conditioned stream:
            // identical arithmetic (bit-identical to v1 on identical
            // counts), distinct identity for cache separation.
            Statistic::BernoulliLlr | Statistic::EqualOppTpr => bernoulli_llr_directed(
                &Counts2x2::new(n_r, p_r, self.n_total, self.p_total),
                direction,
            ),
            Statistic::MeanResidual => self.mean_residual(n_r, p_r, direction),
        }
    }

    /// Standardized mean residual: with `ρ = P/N`, the region's mean
    /// residual is `p/n − ρ` and its null standard error `√(ρ(1−ρ)/n)`,
    /// giving the z-style score `(p/n − ρ)·√n / √(ρ(1−ρ))`.
    #[inline]
    fn mean_residual(&self, n_r: u64, p_r: u64, direction: Direction) -> f64 {
        debug_assert!(p_r <= n_r, "positives ({p_r}) exceed observations ({n_r})");
        debug_assert!(n_r <= self.n_total, "region larger than the world");
        if self.n_total == 0 || n_r == 0 || n_r == self.n_total {
            // Same degeneracy rule as the LLR: no "outside" to deviate
            // from.
            return 0.0;
        }
        let rho = self.p_total as f64 / self.n_total as f64;
        let var = rho * (1.0 - rho);
        if var <= 0.0 {
            // All-positive or all-negative world: every residual is 0.
            return 0.0;
        }
        let z = (p_r as f64 / n_r as f64 - rho) * (n_r as f64).sqrt() / var.sqrt();
        match direction {
            Direction::TwoSided => z.abs(),
            Direction::High => z.max(0.0),
            Direction::Low => (-z).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for statistic in Statistic::ALL {
            assert_eq!(
                statistic.to_string().parse::<Statistic>().unwrap(),
                statistic
            );
        }
        let err = "gini".parse::<Statistic>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gini"), "{msg}");
        for statistic in Statistic::ALL {
            assert!(msg.contains(statistic.name()), "{msg}");
        }
    }

    #[test]
    fn serde_round_trips_as_kebab_tokens() {
        for statistic in Statistic::ALL {
            let json = serde_json::to_string(&statistic).unwrap();
            assert_eq!(json, format!("\"{}\"", statistic.name()));
            let back: Statistic = serde_json::from_str(&json).unwrap();
            assert_eq!(back, statistic);
        }
        assert!(serde_json::from_str::<Statistic>("\"chi-squared\"").is_err());
        assert!(serde_json::from_str::<Statistic>("7").is_err());
    }

    #[test]
    fn default_is_the_paper_statistic() {
        assert_eq!(Statistic::default(), Statistic::BernoulliLlr);
    }

    #[test]
    fn bernoulli_kernel_is_exactly_the_llr() {
        let kernel = TauKernel::new(Statistic::BernoulliLlr, 1000, 500);
        for (n, p) in [(20u64, 16u64), (10, 0), (300, 150), (1000, 500), (0, 0)] {
            for direction in Direction::ALL {
                let expected = bernoulli_llr_directed(&Counts2x2::new(n, p, 1000, 500), direction);
                assert_eq!(kernel.score(n, p, direction), expected, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn equal_opp_kernel_matches_llr_on_identical_counts() {
        // The conditioning lives in the data stream; on equal counts
        // the fold itself is bit-identical to the Bernoulli LLR.
        let llr = TauKernel::new(Statistic::BernoulliLlr, 400, 170);
        let tpr = TauKernel::new(Statistic::EqualOppTpr, 400, 170);
        for (n, p) in [(40u64, 35u64), (40, 5), (1, 1), (399, 170)] {
            for direction in Direction::ALL {
                assert_eq!(
                    tpr.score(n, p, direction),
                    llr.score(n, p, direction),
                    "n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn mean_residual_matches_hand_computation() {
        // N=100, P=25: rho=0.25, var=0.1875. Region n=16, p=8:
        // mean residual 0.25, z = 0.25*4/sqrt(0.1875).
        let kernel = TauKernel::new(Statistic::MeanResidual, 100, 25);
        let z = 0.25 * 4.0 / 0.1875f64.sqrt();
        assert!((kernel.score(16, 8, Direction::TwoSided) - z).abs() < 1e-12);
        assert!((kernel.score(16, 8, Direction::High) - z).abs() < 1e-12);
        assert_eq!(kernel.score(16, 8, Direction::Low), 0.0);
        // Depressed region: n=16, p=0 → mean residual −0.25.
        assert!((kernel.score(16, 0, Direction::Low) - z).abs() < 1e-12);
        assert_eq!(kernel.score(16, 0, Direction::High), 0.0);
        assert!((kernel.score(16, 0, Direction::TwoSided) - z).abs() < 1e-12);
    }

    #[test]
    fn mean_residual_degenerate_regions_score_zero() {
        let kernel = TauKernel::new(Statistic::MeanResidual, 100, 25);
        assert_eq!(kernel.score(0, 0, Direction::TwoSided), 0.0);
        assert_eq!(kernel.score(100, 25, Direction::TwoSided), 0.0);
        // Degenerate worlds: zero variance.
        let all_pos = TauKernel::new(Statistic::MeanResidual, 100, 100);
        assert_eq!(all_pos.score(10, 10, Direction::TwoSided), 0.0);
        let empty = TauKernel::new(Statistic::MeanResidual, 0, 0);
        assert_eq!(empty.score(0, 0, Direction::TwoSided), 0.0);
    }

    #[test]
    fn mean_residual_ranks_by_average_deviation_not_mass() {
        // A small extreme region beats a big mild one under the mean
        // residual — the opposite of what the LLR's evidence-mass
        // ranking does on the same worlds. N=1000, P=500: the 16/16
        // region has z = 0.5·√16/0.5 = 4.0, the 239-of-400 region has
        // z = 0.0975·√400/0.5 = 3.9 but carries far more total
        // log-likelihood evidence (≈12.7 vs ≈11.2).
        let mr = TauKernel::new(Statistic::MeanResidual, 1000, 500);
        let small_extreme = mr.score(16, 16, Direction::High);
        let big_mild = mr.score(400, 239, Direction::High);
        assert!(small_extreme > big_mild, "{small_extreme} vs {big_mild}");
        let llr = TauKernel::new(Statistic::BernoulliLlr, 1000, 500);
        let llr_small = llr.score(16, 16, Direction::High);
        let llr_big = llr.score(400, 239, Direction::High);
        assert!(llr_big > llr_small, "{llr_big} vs {llr_small}");
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        for statistic in Statistic::ALL {
            let kernel = TauKernel::new(statistic, 128, 37);
            for n in [0u64, 1, 37, 64, 127, 128] {
                for p in [0u64, 1, n.min(37)] {
                    // Skip count pairs no world can produce: positives
                    // must fit inside the region and negatives must
                    // fit outside it (Counts2x2's invariants).
                    if p > n || n - p > 128 - 37 {
                        continue;
                    }
                    for direction in Direction::ALL {
                        let score = kernel.score(n, p, direction);
                        assert!(
                            score.is_finite() && score >= 0.0,
                            "{statistic} n={n} p={p} {direction:?}: {score}"
                        );
                    }
                }
            }
        }
    }
}
