//! Confidence intervals for proportions.
//!
//! Audit reports display local positive rates of flagged regions; the
//! Wilson score interval quantifies their sampling uncertainty (it
//! behaves well even for the extreme rates and small counts of the
//! `MeanVar` false-evidence cells, unlike the Wald interval).

use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionInterval {
    /// Lower bound (clamped to `[0, 1]`).
    pub lo: f64,
    /// Point estimate `k/n`.
    pub estimate: f64,
    /// Upper bound (clamped to `[0, 1]`).
    pub hi: f64,
}

impl ProportionInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains a value.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// The z-value for a 95% two-sided interval.
pub const Z_95: f64 = 1.959963984540054;

/// The z-value for a 99% two-sided interval.
pub const Z_99: f64 = 2.5758293035489004;

/// Wilson score interval for `k` successes in `n` trials at the given
/// z-value.
///
/// # Panics
/// Panics if `n == 0`, `k > n`, or `z <= 0`.
pub fn wilson_interval(k: u64, n: u64, z: f64) -> ProportionInterval {
    assert!(n > 0, "Wilson interval needs at least one trial");
    assert!(k <= n, "successes ({k}) exceed trials ({n})");
    assert!(z > 0.0, "z must be positive");
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // At k=0 / k=n the bounds are mathematically exactly 0 / 1 but can
    // round past the point estimate; clamp so `lo <= estimate <= hi`
    // always holds.
    ProportionInterval {
        lo: (center - half).max(0.0).min(p),
        estimate: p,
        hi: (center + half).min(1.0).max(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_the_estimate() {
        for &(k, n) in &[(0u64, 10u64), (5, 10), (10, 10), (62, 100), (1, 1000)] {
            let ci = wilson_interval(k, n, Z_95);
            assert!(ci.contains(ci.estimate), "k={k} n={n}");
            assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
            assert!(ci.lo <= ci.hi);
        }
    }

    #[test]
    fn known_value_half_in_100() {
        // Wilson 95% for 50/100: approximately (0.404, 0.596).
        let ci = wilson_interval(50, 100, Z_95);
        assert!((ci.lo - 0.4038).abs() < 0.001, "lo {}", ci.lo);
        assert!((ci.hi - 0.5962).abs() < 0.001, "hi {}", ci.hi);
    }

    #[test]
    fn extreme_rates_are_not_degenerate() {
        // Unlike Wald, Wilson gives a non-zero-width interval at k=0.
        let ci = wilson_interval(0, 5, Z_95);
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.3, "5 observations say little: hi {}", ci.hi);
        // This is the paper's Figure 2(a) point, quantified: a 5-point
        // all-negative cell is consistent with a true rate well above
        // zero — even above 0.4.
        assert!(ci.contains(0.43));
    }

    #[test]
    fn width_shrinks_with_n() {
        let small = wilson_interval(5, 10, Z_95);
        let large = wilson_interval(500, 1000, Z_95);
        assert!(large.width() < small.width() / 3.0);
    }

    #[test]
    fn higher_confidence_is_wider() {
        let z95 = wilson_interval(30, 100, Z_95);
        let z99 = wilson_interval(30, 100, Z_99);
        assert!(z99.width() > z95.width());
        assert!(z99.lo <= z95.lo && z99.hi >= z95.hi);
    }

    #[test]
    fn symmetric_under_complement() {
        let a = wilson_interval(30, 100, Z_95);
        let b = wilson_interval(70, 100, Z_95);
        assert!((a.lo - (1.0 - b.hi)).abs() < 1e-12);
        assert!((a.hi - (1.0 - b.lo)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = wilson_interval(0, 0, Z_95);
    }
}
