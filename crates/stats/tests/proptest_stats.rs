//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sfstats::binomial::{binomial_cdf, binomial_pmf, ln_choose, ln_factorial};
use sfstats::descriptive::{mean_variance_population, quantile};
use sfstats::llr::{bernoulli_llr, bernoulli_llr_directed, Counts2x2};
use sfstats::montecarlo::{McStrategy, MonteCarlo};
use sfstats::pvalue::{critical_value, rank_p_value};
use sfstats::Direction;

/// Strategy producing a consistent 2x2 count table.
fn arb_counts() -> impl Strategy<Value = Counts2x2> {
    (1u64..500, 1u64..500).prop_flat_map(|(n_in, n_out)| {
        let n_total = n_in + n_out;
        (0..=n_in, 0..=n_out)
            .prop_map(move |(p_in, p_out)| Counts2x2::new(n_in, p_in, n_total, p_in + p_out))
    })
}

proptest! {
    #[test]
    fn llr_is_non_negative_and_finite(c in arb_counts()) {
        let llr = bernoulli_llr(&c);
        prop_assert!(llr >= 0.0);
        prop_assert!(llr.is_finite());
    }

    #[test]
    fn llr_zero_iff_rates_equal(c in arb_counts()) {
        let llr = bernoulli_llr(&c);
        let equal = c.rate_in() == c.rate_out();
        if equal {
            prop_assert_eq!(llr, 0.0);
        } else {
            prop_assert!(llr > 0.0, "rates {} vs {} but llr 0", c.rate_in(), c.rate_out());
        }
    }

    #[test]
    fn directed_llrs_partition_the_two_sided(c in arb_counts()) {
        let two = bernoulli_llr(&c);
        let hi = bernoulli_llr_directed(&c, Direction::High);
        let lo = bernoulli_llr_directed(&c, Direction::Low);
        // Exactly one direction carries the two-sided value (or both are
        // zero when rates coincide).
        prop_assert!(hi == 0.0 || lo == 0.0);
        prop_assert_eq!(hi.max(lo), two);
    }

    #[test]
    fn llr_symmetric_under_complement(c in arb_counts()) {
        let comp = Counts2x2::new(
            c.n_out(), c.p_out(), c.n_total, c.p_total,
        );
        let a = bernoulli_llr(&c);
        let b = bernoulli_llr(&comp);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn llr_label_flip_invariance(c in arb_counts()) {
        // Swapping the meaning of positive/negative labels leaves the
        // two-sided statistic unchanged.
        let flipped = Counts2x2::new(
            c.n_in, c.n_in - c.p_in, c.n_total, c.n_total - c.p_total,
        );
        let a = bernoulli_llr(&c);
        let b = bernoulli_llr(&flipped);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn p_value_bounds(obs in 0.0..100.0f64, sims in prop::collection::vec(0.0..100.0f64, 1..200)) {
        let p = rank_p_value(obs, &sims);
        let w = sims.len() + 1;
        prop_assert!(p >= 1.0 / w as f64 - 1e-12);
        prop_assert!(p <= 1.0 + 1e-12);
    }

    #[test]
    fn p_value_monotone_in_observation(
        a in 0.0..100.0f64,
        b in 0.0..100.0f64,
        sims in prop::collection::vec(0.0..100.0f64, 1..200),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rank_p_value(hi, &sims) <= rank_p_value(lo, &sims));
    }

    #[test]
    fn critical_value_agrees_with_p_value(
        sims in prop::collection::vec(0.0..100.0f64, 19..400),
        t in 0.0..120.0f64,
        alpha_i in 1usize..20,
    ) {
        let alpha = alpha_i as f64 / 100.0;
        let c = critical_value(&sims, alpha);
        let sig_by_p = rank_p_value(t, &sims) <= alpha;
        let sig_by_c = t > c;
        prop_assert_eq!(sig_by_p, sig_by_c, "t={}, c={}, alpha={}", t, c, alpha);
    }

    #[test]
    fn ln_factorial_recurrence(n in 1u64..5000) {
        let lhs = ln_factorial(n);
        let rhs = ln_factorial(n - 1) + (n as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-7, "n={n}: {lhs} vs {rhs}");
    }

    #[test]
    fn ln_choose_symmetry(n in 0u64..300, k in 0u64..300) {
        prop_assume!(k <= n);
        let a = ln_choose(n, k);
        let b = ln_choose(n, n - k);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pmf_in_unit_interval(n in 1u64..200, k in 0u64..200, rho in 0.01..0.99f64) {
        prop_assume!(k <= n);
        let p = binomial_pmf(k, n, rho);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn cdf_bounds_and_monotonicity(n in 1u64..100, rho in 0.01..0.99f64) {
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(k, n, rho);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variance_non_negative_and_shift_invariant(
        vals in prop::collection::vec(-100.0..100.0f64, 2..100),
        shift in -1000.0..1000.0f64,
    ) {
        let (_, v1) = mean_variance_population(&vals);
        let shifted: Vec<f64> = vals.iter().map(|x| x + shift).collect();
        let (_, v2) = mean_variance_population(&shifted);
        prop_assert!(v1 >= 0.0);
        prop_assert!((v1 - v2).abs() < 1e-6 * (1.0 + v1), "{v1} vs {v2}");
    }

    #[test]
    fn quantile_within_range(vals in prop::collection::vec(-50.0..50.0f64, 1..100), q in 0.0..=1.0f64) {
        let qv = quantile(&vals, q);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qv >= min - 1e-12 && qv <= max + 1e-12);
    }

    #[test]
    fn early_stop_always_agrees_with_full_budget_on_significance(
        worlds in 1usize..250,
        seed in 0u64..1_000,
        batch in 1usize..64,
        alpha_num in 1usize..40,
        observed in 0.0..1.2f64,
    ) {
        // The core early-termination contract: for ANY budget, seed,
        // batch size, stopping level, and observed statistic, the
        // early-stopped run reaches the same is_significant verdict as
        // spending the full budget — and the worlds it did evaluate
        // are a bit-identical prefix of the full run's.
        let alpha = alpha_num as f64 / 41.0; // (0, 1)
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let full = MonteCarlo::new(worlds, seed).run(observed, eval);
        let adaptive = MonteCarlo::new(worlds, seed)
            .with_strategy(McStrategy::EarlyStop { batch_size: batch })
            .run_adaptive(observed, alpha, eval);
        prop_assert_eq!(
            full.is_significant(alpha),
            adaptive.is_significant(alpha),
            "worlds={}, seed={}, batch={}, alpha={}, observed={}, evaluated={}",
            worlds, seed, batch, alpha, observed, adaptive.worlds_evaluated
        );
        prop_assert!(adaptive.worlds_evaluated <= full.worlds_evaluated);
        prop_assert_eq!(
            &full.simulated[..adaptive.worlds_evaluated],
            &adaptive.simulated[..]
        );
    }

    #[test]
    fn early_stop_sequential_p_value_sides_with_the_verdict(
        worlds in 10usize..200,
        seed in 0u64..500,
        batch in 1usize..32,
        alpha_num in 1usize..20,
        observed in 0.0..1.2f64,
    ) {
        // The truncated rank p-value must land on the same side of the
        // stopping alpha as the full-budget p-value (module docs give
        // the proof; this pins it numerically).
        let alpha = alpha_num as f64 / 21.0;
        let eval = |rng: &mut ChaCha8Rng| -> f64 { rng.gen::<f64>() };
        let full = MonteCarlo::new(worlds, seed).run(observed, eval);
        let adaptive = MonteCarlo::new(worlds, seed)
            .with_strategy(McStrategy::EarlyStop { batch_size: batch })
            .run_adaptive(observed, alpha, eval);
        prop_assert_eq!(
            full.p_value() <= alpha,
            adaptive.p_value() <= alpha,
            "full p={}, adaptive p={} at alpha={}",
            full.p_value(), adaptive.p_value(), alpha
        );
    }
}
