//! Decision-tree / random-forest substrate.
//!
//! The paper's Crime experiment (§4.1) trains "a random forest
//! classifier to predict the 'seriousness' of the incident" from 7
//! tabular features and audits the *equal opportunity* (true-positive
//! rate) of its predictions by location. This crate provides that
//! classifier, built from scratch:
//!
//! * [`data`] — column-major tabular datasets with numeric and
//!   categorical features, deterministic train/test splitting.
//! * [`tree`] — CART binary classification trees (Gini impurity,
//!   threshold splits for numeric features, one-vs-rest equality
//!   splits for categoricals).
//! * [`forest`] — bagged random forests with per-node feature
//!   subsampling and probability averaging.
//! * [`metrics`] — confusion matrices, accuracy, TPR/FPR — the
//!   quantities the fairness audit consumes.

//! # Example
//!
//! ```rust
//! use sfml::{FeatureKind, RandomForest, RandomForestConfig, TabularData};
//!
//! let mut data = TabularData::new();
//! data.push_column("x", FeatureKind::Numeric, (0..200).map(|i| i as f64).collect());
//! data.set_labels((0..200).map(|i| i >= 100).collect());
//!
//! let forest = RandomForest::fit(&data, &RandomForestConfig::new(5, 7));
//! assert!(forest.predict(&[150.0]));
//! assert!(!forest.predict(&[50.0]));
//! ```

pub mod data;
pub mod forest;
pub mod metrics;
pub mod tree;

pub use data::{FeatureKind, TabularData};
pub use forest::{OobReport, RandomForest, RandomForestConfig};
pub use metrics::ConfusionMatrix;
pub use tree::{DecisionTree, TreeConfig};
