//! Column-major tabular datasets.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How a feature's values should be interpreted by split search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Ordered values; splits are thresholds (`x <= t`).
    Numeric,
    /// Unordered codes; splits are equality tests (`x == c`).
    Categorical,
}

/// One feature column.
#[derive(Debug, Clone)]
pub struct Column {
    /// Human-readable feature name.
    pub name: String,
    /// Interpretation for split search.
    pub kind: FeatureKind,
    /// Values, one per row. Categorical codes are stored as exact
    /// small integers in `f64`.
    pub values: Vec<f64>,
}

/// A column-major tabular dataset with binary labels.
#[derive(Debug, Clone, Default)]
pub struct TabularData {
    columns: Vec<Column>,
    labels: Vec<bool>,
}

impl TabularData {
    /// Creates an empty dataset (add columns, then labels).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a feature column.
    ///
    /// # Panics
    /// Panics if the column's length differs from existing columns.
    pub fn push_column(&mut self, name: impl Into<String>, kind: FeatureKind, values: Vec<f64>) {
        if let Some(first) = self.columns.first() {
            assert_eq!(
                first.values.len(),
                values.len(),
                "all columns must have the same number of rows"
            );
        }
        assert!(
            values.iter().all(|v| v.is_finite()),
            "feature values must be finite"
        );
        self.columns.push(Column {
            name: name.into(),
            kind,
            values,
        });
    }

    /// Sets the label column.
    ///
    /// # Panics
    /// Panics if the length differs from the feature columns.
    pub fn set_labels(&mut self, labels: Vec<bool>) {
        if let Some(first) = self.columns.first() {
            assert_eq!(
                first.values.len(),
                labels.len(),
                "labels must match row count"
            );
        }
        self.labels = labels;
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns
            .first()
            .map_or(self.labels.len(), |c| c.values.len())
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.columns.len()
    }

    /// The feature columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Value of feature `f` at row `r`.
    #[inline]
    pub fn value(&self, f: usize, r: usize) -> f64 {
        self.columns[f].values[r]
    }

    /// One row as a dense feature vector (allocates; prefer
    /// [`TabularData::value`] in hot loops).
    pub fn row(&self, r: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c.values[r]).collect()
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }

    /// Extracts the subset of rows at `indices` (repeats allowed —
    /// this is what bootstrap sampling uses).
    pub fn select_rows(&self, indices: &[usize]) -> TabularData {
        let columns = self
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                kind: c.kind,
                values: indices.iter().map(|&i| c.values[i]).collect(),
            })
            .collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        TabularData { columns, labels }
    }

    /// Deterministic shuffled train/test split.
    ///
    /// # Panics
    /// Panics if `test_fraction` is outside `(0, 1)` or labels are
    /// missing.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (TabularData, TabularData) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1), got {test_fraction}"
        );
        assert_eq!(
            self.labels.len(),
            self.num_rows(),
            "labels must be set before splitting"
        );
        let mut idx: Vec<usize> = (0..self.num_rows()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.num_rows() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(idx.len()));
        (self.select_rows(train_idx), self.select_rows(test_idx))
    }

    /// Like [`TabularData::train_test_split`] but also returns the
    /// original row indices of the (train, test) rows — needed when
    /// side information (e.g. locations) must follow the split.
    pub fn train_test_split_indices(
        &self,
        test_fraction: f64,
        seed: u64,
    ) -> (Vec<usize>, Vec<usize>) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1), got {test_fraction}"
        );
        let mut idx: Vec<usize> = (0..self.num_rows()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.num_rows() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(idx.len()));
        (train_idx.to_vec(), test_idx.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TabularData {
        let mut d = TabularData::new();
        d.push_column("x", FeatureKind::Numeric, vec![1.0, 2.0, 3.0, 4.0]);
        d.push_column("c", FeatureKind::Categorical, vec![0.0, 1.0, 0.0, 1.0]);
        d.set_labels(vec![false, false, true, true]);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.num_rows(), 4);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.value(0, 2), 3.0);
        assert_eq!(d.row(1), vec![2.0, 1.0]);
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "same number of rows")]
    fn ragged_columns_rejected() {
        let mut d = TabularData::new();
        d.push_column("a", FeatureKind::Numeric, vec![1.0, 2.0]);
        d.push_column("b", FeatureKind::Numeric, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_rejected() {
        let mut d = TabularData::new();
        d.push_column("a", FeatureKind::Numeric, vec![f64::NAN]);
    }

    #[test]
    fn select_rows_with_repeats() {
        let d = toy();
        let s = d.select_rows(&[0, 0, 3]);
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.value(0, 0), 1.0);
        assert_eq!(s.value(0, 1), 1.0);
        assert_eq!(s.value(0, 2), 4.0);
        assert_eq!(s.labels(), &[false, false, true]);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let mut d = TabularData::new();
        d.push_column(
            "x",
            FeatureKind::Numeric,
            (0..100).map(|i| i as f64).collect(),
        );
        d.set_labels((0..100).map(|i| i % 2 == 0).collect());
        let (tr1, te1) = d.train_test_split(0.3, 5);
        let (tr2, te2) = d.train_test_split(0.3, 5);
        assert_eq!(tr1.num_rows(), 70);
        assert_eq!(te1.num_rows(), 30);
        assert_eq!(tr1.columns()[0].values, tr2.columns()[0].values);
        assert_eq!(te1.columns()[0].values, te2.columns()[0].values);
        // Disjoint coverage of all values.
        let mut all: Vec<f64> = tr1.columns()[0]
            .values
            .iter()
            .chain(te1.columns()[0].values.iter())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_indices_match_split() {
        let mut d = TabularData::new();
        d.push_column(
            "x",
            FeatureKind::Numeric,
            (0..50).map(|i| i as f64).collect(),
        );
        d.set_labels((0..50).map(|i| i % 3 == 0).collect());
        let (train_idx, test_idx) = d.train_test_split_indices(0.2, 9);
        let (train, test) = d.train_test_split(0.2, 9);
        let by_idx: Vec<f64> = train_idx.iter().map(|&i| i as f64).collect();
        assert_eq!(train.columns()[0].values, by_idx);
        let by_idx: Vec<f64> = test_idx.iter().map(|&i| i as f64).collect();
        assert_eq!(test.columns()[0].values, by_idx);
    }
}
