//! Bagged random forests.
//!
//! Standard construction: each tree is trained on a bootstrap resample
//! of the training data with per-node feature subsampling
//! (`√num_features` by default); the forest predicts the average of
//! the trees' leaf probabilities.

use crate::data::TabularData;
use crate::tree::{DecisionTree, TreeConfig};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use sfstatslike::world_rng;

/// Minimal internal reimplementation of the deterministic per-worker
/// stream seeding used across the workspace (kept local so `sfml` stays
/// dependency-light; behaviour matches `sfstats::rng::world_rng`).
mod sfstatslike {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    pub fn world_rng(base_seed: u64, index: u64) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(base_seed);
        rng.set_stream(index.wrapping_add(1));
        rng
    }
}

/// Random-forest training parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree growth parameters. When `max_features` is `None` the
    /// forest substitutes `√num_features`.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training size.
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Train trees in parallel (deterministic either way).
    pub parallel: bool,
}

impl RandomForestConfig {
    /// Sensible defaults: 20 trees, depth 12, √features per node.
    pub fn new(num_trees: usize, seed: u64) -> Self {
        RandomForestConfig {
            num_trees,
            tree: TreeConfig::default(),
            sample_fraction: 1.0,
            seed,
            parallel: true,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

/// Out-of-bag evaluation of a forest (rows judged only by trees that
/// never saw them during training).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OobReport {
    /// Accuracy over covered rows.
    pub accuracy: f64,
    /// Fraction of rows with at least one out-of-bag vote.
    pub coverage: f64,
}

impl RandomForest {
    /// Fits the forest.
    ///
    /// # Panics
    /// Panics if `num_trees == 0`, the data is empty, or
    /// `sample_fraction` is not in `(0, 1]`.
    pub fn fit(data: &TabularData, config: &RandomForestConfig) -> Self {
        assert!(config.num_trees > 0, "forest needs at least one tree");
        assert!(
            data.num_rows() > 0,
            "cannot fit a forest on an empty dataset"
        );
        assert!(
            config.sample_fraction > 0.0 && config.sample_fraction <= 1.0,
            "sample_fraction must be in (0,1], got {}",
            config.sample_fraction
        );
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            let m = (data.num_features() as f64).sqrt().round().max(1.0) as usize;
            tree_cfg.max_features = Some(m);
        }
        let n = data.num_rows();
        let sample_n = ((n as f64) * config.sample_fraction).round().max(1.0) as usize;
        let train_one = |t: usize| -> DecisionTree {
            let mut rng: ChaCha8Rng = world_rng(config.seed, t as u64);
            let indices: Vec<usize> = (0..sample_n).map(|_| rng.gen_range(0..n)).collect();
            let sample = data.select_rows(&indices);
            DecisionTree::fit(&sample, &tree_cfg, &mut rng)
        };
        let trees: Vec<DecisionTree> = if config.parallel {
            (0..config.num_trees)
                .into_par_iter()
                .map(train_one)
                .collect()
        } else {
            (0..config.num_trees).map(train_one).collect()
        };
        RandomForest { trees }
    }

    /// Fits the forest and evaluates it out-of-bag: each training row
    /// is predicted by averaging only the trees whose bootstrap sample
    /// missed it, giving an unbiased generalisation estimate without a
    /// held-out set.
    pub fn fit_with_oob(data: &TabularData, config: &RandomForestConfig) -> (Self, OobReport) {
        assert!(config.num_trees > 0, "forest needs at least one tree");
        assert!(
            data.num_rows() > 0,
            "cannot fit a forest on an empty dataset"
        );
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            let m = (data.num_features() as f64).sqrt().round().max(1.0) as usize;
            tree_cfg.max_features = Some(m);
        }
        let n = data.num_rows();
        let sample_n = ((n as f64) * config.sample_fraction).round().max(1.0) as usize;
        let train_one = |t: usize| -> (DecisionTree, Vec<bool>) {
            let mut rng: ChaCha8Rng = world_rng(config.seed, t as u64);
            let indices: Vec<usize> = (0..sample_n).map(|_| rng.gen_range(0..n)).collect();
            let mut in_bag = vec![false; n];
            for &i in &indices {
                in_bag[i] = true;
            }
            let sample = data.select_rows(&indices);
            (DecisionTree::fit(&sample, &tree_cfg, &mut rng), in_bag)
        };
        let results: Vec<(DecisionTree, Vec<bool>)> = if config.parallel {
            (0..config.num_trees)
                .into_par_iter()
                .map(train_one)
                .collect()
        } else {
            (0..config.num_trees).map(train_one).collect()
        };
        // OOB aggregation.
        let mut covered = 0usize;
        let mut correct = 0usize;
        for r in 0..n {
            let mut sum = 0.0;
            let mut votes = 0usize;
            for (tree, in_bag) in &results {
                if !in_bag[r] {
                    sum += tree.predict_proba_row(data, r);
                    votes += 1;
                }
            }
            if votes > 0 {
                covered += 1;
                let pred = sum / votes as f64 >= 0.5;
                if pred == data.labels()[r] {
                    correct += 1;
                }
            }
        }
        let report = OobReport {
            accuracy: if covered == 0 {
                0.0
            } else {
                correct as f64 / covered as f64
            },
            coverage: covered as f64 / n as f64,
        };
        let trees = results.into_iter().map(|(t, _)| t).collect();
        (RandomForest { trees }, report)
    }

    /// Forest-level feature importances: the mean of the trees'
    /// normalised mean-decrease-in-impurity importances (sums to 1 when
    /// any tree split at all).
    pub fn feature_importances(&self) -> Vec<f64> {
        let num_features = self
            .trees
            .first()
            .map(|t| t.feature_importances().len())
            .unwrap_or(0);
        let mut acc = vec![0.0; num_features];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Average positive-class probability across trees.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(features)).sum();
        sum / self.trees.len() as f64
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Predicts every row of a dataset (parallel).
    pub fn predict_batch(&self, data: &TabularData) -> Vec<bool> {
        (0..data.num_rows())
            .into_par_iter()
            .map(|r| {
                let sum: f64 = self
                    .trees
                    .iter()
                    .map(|t| t.predict_proba_row(data, r))
                    .sum();
                sum / self.trees.len() as f64 >= 0.5
            })
            .collect()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureKind;
    use crate::metrics::ConfusionMatrix;
    use rand::SeedableRng;

    /// Noisy two-feature problem: y = (x0 + x1 > 1) with 10% label noise.
    fn noisy_data(n: usize, seed: u64) -> TabularData {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x0 = Vec::with_capacity(n);
        let mut x1 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            let clean = a + b > 1.0;
            let label = if rng.gen_bool(0.1) { !clean } else { clean };
            x0.push(a);
            x1.push(b);
            y.push(label);
        }
        let mut d = TabularData::new();
        d.push_column("x0", FeatureKind::Numeric, x0);
        d.push_column("x1", FeatureKind::Numeric, x1);
        d.set_labels(y);
        d
    }

    #[test]
    fn learns_noisy_boundary() {
        let train = noisy_data(2000, 1);
        let test = noisy_data(500, 2);
        let forest = RandomForest::fit(&train, &RandomForestConfig::new(15, 3));
        let preds = forest.predict_batch(&test);
        let cm = ConfusionMatrix::from_slices(test.labels(), &preds);
        // Bayes-optimal accuracy is 0.9 (10% noise); a working forest
        // should be close.
        assert!(cm.accuracy() > 0.82, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn deterministic_per_seed_and_parallelism() {
        let train = noisy_data(500, 4);
        let par = RandomForest::fit(&train, &RandomForestConfig::new(8, 5));
        let mut cfg = RandomForestConfig::new(8, 5);
        cfg.parallel = false;
        let seq = RandomForest::fit(&train, &cfg);
        let test = noisy_data(100, 6);
        for r in 0..test.num_rows() {
            let row = test.row(r);
            assert_eq!(par.predict_proba(&row), seq.predict_proba(&row), "row {r}");
        }
    }

    #[test]
    fn probabilities_average_trees() {
        let train = noisy_data(300, 7);
        let forest = RandomForest::fit(&train, &RandomForestConfig::new(10, 8));
        assert_eq!(forest.num_trees(), 10);
        let p = forest.predict_proba(&train.row(0));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn predict_batch_matches_row_predictions() {
        let train = noisy_data(400, 9);
        let forest = RandomForest::fit(&train, &RandomForestConfig::new(5, 10));
        let batch = forest.predict_batch(&train);
        for (r, &pred) in batch.iter().enumerate().take(50) {
            assert_eq!(pred, forest.predict(&train.row(r)), "row {r}");
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let train = noisy_data(200, 11);
        let forest = RandomForest::fit(&train, &RandomForestConfig::new(1, 12));
        assert_eq!(forest.num_trees(), 1);
        let _ = forest.predict(&train.row(0));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let train = noisy_data(10, 13);
        let _ = RandomForest::fit(&train, &RandomForestConfig::new(0, 1));
    }

    #[test]
    fn subsampled_training_still_learns() {
        let train = noisy_data(1000, 14);
        let mut cfg = RandomForestConfig::new(10, 15);
        cfg.sample_fraction = 0.5;
        let forest = RandomForest::fit(&train, &cfg);
        let preds = forest.predict_batch(&train);
        let cm = ConfusionMatrix::from_slices(train.labels(), &preds);
        assert!(cm.accuracy() > 0.8);
    }
}

#[cfg(test)]
mod importance_oob_tests {
    use super::*;
    use crate::data::FeatureKind;
    use rand::{Rng, SeedableRng};

    /// y depends only on feature 0; feature 1 is pure noise.
    fn signal_vs_noise(n: usize, seed: u64) -> TabularData {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x0 = Vec::with_capacity(n);
        let mut x1 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            x0.push(a);
            x1.push(b);
            y.push(a > 0.5);
        }
        let mut d = TabularData::new();
        d.push_column("signal", FeatureKind::Numeric, x0);
        d.push_column("noise", FeatureKind::Numeric, x1);
        d.set_labels(y);
        d
    }

    #[test]
    fn importances_identify_the_signal_feature() {
        let data = signal_vs_noise(2000, 41);
        let mut cfg = RandomForestConfig::new(10, 42);
        cfg.tree.max_features = Some(2); // let every split see both features
        let forest = RandomForest::fit(&data, &cfg);
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "signal feature should dominate: {imp:?}");
    }

    #[test]
    fn importances_of_stump_forest_are_zero() {
        let data = signal_vs_noise(100, 43);
        let mut cfg = RandomForestConfig::new(3, 44);
        cfg.tree.max_depth = 0;
        let forest = RandomForest::fit(&data, &cfg);
        assert_eq!(forest.feature_importances(), vec![0.0, 0.0]);
    }

    #[test]
    fn oob_estimates_generalisation() {
        let data = signal_vs_noise(1500, 45);
        let (forest, oob) = RandomForest::fit_with_oob(&data, &RandomForestConfig::new(20, 46));
        // Bootstrap leaves ~e^-20 of rows uncovered at 20 trees: ~all covered.
        assert!(oob.coverage > 0.99, "coverage {}", oob.coverage);
        // The task is separable: OOB accuracy should be high but below
        // the (overfit) in-bag accuracy.
        assert!(oob.accuracy > 0.9, "oob accuracy {}", oob.accuracy);
        let in_bag = {
            let preds = forest.predict_batch(&data);
            crate::metrics::ConfusionMatrix::from_slices(data.labels(), &preds).accuracy()
        };
        assert!(
            in_bag >= oob.accuracy - 0.02,
            "in-bag {in_bag} vs oob {}",
            oob.accuracy
        );
    }

    #[test]
    fn oob_matches_between_parallel_and_sequential() {
        let data = signal_vs_noise(400, 47);
        let (f1, o1) = RandomForest::fit_with_oob(&data, &RandomForestConfig::new(8, 48));
        let mut cfg = RandomForestConfig::new(8, 48);
        cfg.parallel = false;
        let (f2, o2) = RandomForest::fit_with_oob(&data, &cfg);
        assert_eq!(o1, o2);
        assert_eq!(f1.feature_importances(), f2.feature_importances());
    }
}
