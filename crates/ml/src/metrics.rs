//! Classification metrics.
//!
//! The fairness audits consume exactly these quantities: *positive
//! rate* (statistical parity), *true positive rate* (equal
//! opportunity), and *false positive rate* (equal odds).

/// A binary-classification confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_slices(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "slices must have equal length"
        );
        let mut cm = ConfusionMatrix::default();
        for (&y, &yh) in truth.iter().zip(predicted) {
            match (y, yh) {
                (true, true) => cm.tp += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (true, false) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions (0 on empty input).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// True positive rate `P(ŷ=1 | y=1)` (recall); NaN when no
    /// positives exist.
    pub fn tpr(&self) -> f64 {
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// False positive rate `P(ŷ=1 | y=0)`; NaN when no negatives exist.
    pub fn fpr(&self) -> f64 {
        self.fp as f64 / (self.fp + self.tn) as f64
    }

    /// Precision `P(y=1 | ŷ=1)`; NaN when nothing predicted positive.
    pub fn precision(&self) -> f64 {
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Positive rate `P(ŷ=1)` — the statistical-parity measure.
    pub fn positive_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return f64::NAN;
        }
        (self.tp + self.fp) as f64 / t as f64
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        2.0 * p * r / (p + r)
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} (acc={:.3}, tpr={:.3}, fpr={:.3})",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy(),
            self.tpr(),
            self.fpr()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slices_counts_cells() {
        let truth = [true, true, false, false, true];
        let pred = [true, false, true, false, true];
        let cm = ConfusionMatrix::from_slices(&truth, &pred);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn perfect_predictions() {
        let y = [true, false, true, false];
        let cm = ConfusionMatrix::from_slices(&y, &y);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.tpr(), 1.0);
        assert_eq!(cm.fpr(), 0.0);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn inverted_predictions() {
        let y = [true, false, true, false];
        let inv: Vec<bool> = y.iter().map(|&b| !b).collect();
        let cm = ConfusionMatrix::from_slices(&y, &inv);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.tpr(), 0.0);
        assert_eq!(cm.fpr(), 1.0);
    }

    #[test]
    fn rates_match_hand_computation() {
        // 10 positives (7 caught), 20 negatives (4 false alarms).
        let mut truth = vec![true; 10];
        truth.extend(vec![false; 20]);
        let mut pred = vec![true; 7];
        pred.extend(vec![false; 3]);
        pred.extend(vec![true; 4]);
        pred.extend(vec![false; 16]);
        let cm = ConfusionMatrix::from_slices(&truth, &pred);
        assert!((cm.tpr() - 0.7).abs() < 1e-12);
        assert!((cm.fpr() - 0.2).abs() < 1e-12);
        assert!((cm.accuracy() - 23.0 / 30.0).abs() < 1e-12);
        assert!((cm.positive_rate() - 11.0 / 30.0).abs() < 1e-12);
        assert!((cm.precision() - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let cm = ConfusionMatrix::from_slices(&[], &[]);
        assert_eq!(cm.accuracy(), 0.0);
        assert!(cm.positive_rate().is_nan());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let _ = ConfusionMatrix::from_slices(&[true], &[]);
    }

    #[test]
    fn display_renders() {
        let cm = ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let s = cm.to_string();
        assert!(s.contains("tp=1") && s.contains("fn=4"));
    }
}
