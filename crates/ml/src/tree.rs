//! CART binary classification trees (Gini impurity).
//!
//! Numeric features use threshold splits found by a histogram sweep
//! over candidate cut points; categorical features use one-vs-rest
//! equality splits. Trees support per-node feature subsampling so the
//! forest can decorrelate them.

use crate::data::{FeatureKind, TabularData};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
    /// Each child must keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Features considered per node; `None` = all features.
    pub max_features: Option<usize>,
    /// Number of candidate thresholds per numeric feature (quantile
    /// cuts over the node's values).
    pub numeric_cuts: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            numeric_cuts: 32,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Split {
    /// `x[feature] <= value` goes left.
    Threshold { feature: usize, value: f64 },
    /// `x[feature] == value` goes left.
    Equal { feature: usize, value: f64 },
}

impl Split {
    #[inline]
    fn feature(&self) -> usize {
        match *self {
            Split::Threshold { feature, .. } | Split::Equal { feature, .. } => feature,
        }
    }

    #[inline]
    fn goes_left(&self, data: &TabularData, row: usize) -> bool {
        match *self {
            Split::Threshold { feature, value } => data.value(feature, row) <= value,
            Split::Equal { feature, value } => data.value(feature, row) == value,
        }
    }

    #[inline]
    fn goes_left_values(&self, features: &[f64]) -> bool {
        match *self {
            Split::Threshold { feature, value } => features[feature] <= value,
            Split::Equal { feature, value } => features[feature] == value,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    split: Option<Split>,
    left: u32,
    right: u32,
    /// Fraction of positive training samples that reached this node.
    prob: f64,
}

/// A trained CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
    /// Per-feature total impurity decrease, weighted by node size
    /// (mean-decrease-in-impurity importance, unnormalised).
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on `data` (all rows).
    ///
    /// # Panics
    /// Panics if `data` has no rows or no labels.
    pub fn fit(data: &TabularData, config: &TreeConfig, rng: &mut ChaCha8Rng) -> Self {
        let n = data.num_rows();
        assert!(n > 0, "cannot fit a tree on an empty dataset");
        assert_eq!(data.labels().len(), n, "labels must be set");
        let mut rows: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        let mut importances = vec![0.0; data.num_features()];
        let num_rows = rows.len();
        grow(
            data,
            config,
            rng,
            &mut rows,
            0,
            num_rows,
            0,
            &mut nodes,
            &mut importances,
        );
        DecisionTree {
            nodes,
            num_features: data.num_features(),
            importances,
        }
    }

    /// Per-feature importance: total Gini impurity decrease contributed
    /// by splits on each feature, weighted by the fraction of training
    /// rows reaching the split, normalised to sum to 1 (all zeros for a
    /// stump).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.num_features];
        }
        self.importances.iter().map(|v| v / total).collect()
    }

    /// Probability of the positive class for row `r` of `data`.
    pub fn predict_proba_row(&self, data: &TabularData, r: usize) -> f64 {
        let mut cur = 0usize;
        loop {
            let node = &self.nodes[cur];
            match node.split {
                None => return node.prob,
                Some(split) => {
                    cur = if split.goes_left(data, r) {
                        node.left
                    } else {
                        node.right
                    } as usize;
                }
            }
        }
    }

    /// Probability of the positive class for a dense feature vector.
    ///
    /// # Panics
    /// Panics if the vector length differs from the training features.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.num_features,
            "feature vector length mismatch"
        );
        let mut cur = 0usize;
        loop {
            let node = &self.nodes[cur];
            match node.split {
                None => return node.prob,
                Some(split) => {
                    cur = if split.goes_left_values(features) {
                        node.left
                    } else {
                        node.right
                    } as usize;
                }
            }
        }
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Number of nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (diagnostic; root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match nodes[i].split {
                None => 0,
                Some(_) => {
                    1 + rec(nodes, nodes[i].left as usize).max(rec(nodes, nodes[i].right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }
}

/// Gini impurity of a binary node given positives `p` out of `n`.
#[inline]
fn gini(n: f64, p: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let q = p / n;
    2.0 * q * (1.0 - q)
}

#[allow(clippy::too_many_arguments)]
fn grow(
    data: &TabularData,
    config: &TreeConfig,
    rng: &mut ChaCha8Rng,
    rows: &mut [u32],
    start: usize,
    end: usize,
    depth: usize,
    nodes: &mut Vec<Node>,
    importances: &mut [f64],
) -> u32 {
    let slice = &rows[start..end];
    let n = (end - start) as f64;
    let p = slice.iter().filter(|&&r| data.labels()[r as usize]).count() as f64;
    let node_idx = nodes.len() as u32;
    nodes.push(Node {
        split: None,
        left: 0,
        right: 0,
        prob: p / n,
    });
    // Stopping conditions.
    if depth >= config.max_depth || (end - start) < config.min_samples_split || p == 0.0 || p == n {
        return node_idx;
    }
    let Some((split, gain)) = best_split(data, config, rng, slice) else {
        return node_idx;
    };
    // Partition rows in place.
    let slice = &mut rows[start..end];
    let mut lo = 0usize;
    let mut hi = slice.len();
    while lo < hi {
        if split.goes_left(data, slice[lo] as usize) {
            lo += 1;
        } else {
            hi -= 1;
            slice.swap(lo, hi);
        }
    }
    let n_left = lo;
    if n_left < config.min_samples_leaf || (end - start - n_left) < config.min_samples_leaf {
        return node_idx;
    }
    // Mean-decrease-in-impurity bookkeeping: node-fraction-weighted
    // gain attributed to the split feature. (Gain can be ~0 for tie
    // splits; that is the correct contribution.)
    importances[split.feature()] += (end - start) as f64 * gain.max(0.0);
    let left = grow(
        data,
        config,
        rng,
        rows,
        start,
        start + n_left,
        depth + 1,
        nodes,
        importances,
    );
    let right = grow(
        data,
        config,
        rng,
        rows,
        start + n_left,
        end,
        depth + 1,
        nodes,
        importances,
    );
    nodes[node_idx as usize].split = Some(split);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

/// Finds the impurity-minimising split over a (possibly subsampled)
/// feature set, returning it with its impurity gain; `None` when no
/// valid split exists.
fn best_split(
    data: &TabularData,
    config: &TreeConfig,
    rng: &mut ChaCha8Rng,
    rows: &[u32],
) -> Option<(Split, f64)> {
    let n = rows.len() as f64;
    let p = rows.iter().filter(|&&r| data.labels()[r as usize]).count() as f64;
    let parent = gini(n, p);
    let mut features: Vec<usize> = (0..data.num_features()).collect();
    if let Some(m) = config.max_features {
        features.shuffle(rng);
        features.truncate(m.max(1));
    }
    let mut best: Option<(f64, Split)> = None;
    let min_leaf = config.min_samples_leaf as f64;
    for &f in &features {
        let candidate = match data.columns()[f].kind {
            FeatureKind::Numeric => best_threshold_split(data, config, rows, f, rng),
            FeatureKind::Categorical => best_equality_split(data, rows, f),
        };
        if let Some((w_impurity, split, n_left, p_left)) = candidate {
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let _ = p_left;
            // Accept zero-gain splits (ties): greedy impurity can be
            // exactly flat one level above a separable structure (XOR),
            // and deeper levels then separate it. Recursion still
            // terminates via max_depth / min_samples / purity.
            let gain = parent - w_impurity;
            if gain > -1e-12 && best.as_ref().is_none_or(|(bw, _)| w_impurity < *bw) {
                best = Some((w_impurity, split));
            }
        }
    }
    best.map(|(w, s)| (s, parent - w))
}

/// Best threshold split for a numeric feature. Returns
/// `(weighted_impurity, split, n_left, p_left)`.
fn best_threshold_split(
    data: &TabularData,
    config: &TreeConfig,
    rows: &[u32],
    feature: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(f64, Split, f64, f64)> {
    let n = rows.len() as f64;
    let p = rows.iter().filter(|&&r| data.labels()[r as usize]).count() as f64;
    // Candidate thresholds: sample values from the node (cheap quantile
    // sketch), dedup.
    let cuts = config.numeric_cuts.max(1);
    let mut candidates: Vec<f64> = if rows.len() <= cuts {
        rows.iter()
            .map(|&r| data.value(feature, r as usize))
            .collect()
    } else {
        (0..cuts)
            .map(|_| data.value(feature, rows[rng.gen_range(0..rows.len())] as usize))
            .collect()
    };
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
    candidates.dedup();
    if candidates.len() < 2 {
        return None;
    }
    // Drop the max value: "x <= max" sends everything left.
    candidates.pop();
    let mut best: Option<(f64, Split, f64, f64)> = None;
    for &t in &candidates {
        let mut n_left = 0.0;
        let mut p_left = 0.0;
        for &r in rows {
            if data.value(feature, r as usize) <= t {
                n_left += 1.0;
                p_left += data.labels()[r as usize] as u64 as f64;
            }
        }
        if n_left == 0.0 || n_left == n {
            continue;
        }
        let w =
            (n_left / n) * gini(n_left, p_left) + ((n - n_left) / n) * gini(n - n_left, p - p_left);
        if best.as_ref().is_none_or(|(bw, ..)| w < *bw) {
            best = Some((w, Split::Threshold { feature, value: t }, n_left, p_left));
        }
    }
    best
}

/// Best one-vs-rest equality split for a categorical feature.
fn best_equality_split(
    data: &TabularData,
    rows: &[u32],
    feature: usize,
) -> Option<(f64, Split, f64, f64)> {
    let n = rows.len() as f64;
    let p = rows.iter().filter(|&&r| data.labels()[r as usize]).count() as f64;
    // Collect per-category counts.
    let mut cats: Vec<(f64, f64, f64)> = Vec::new(); // (code, n_c, p_c)
    for &r in rows {
        let v = data.value(feature, r as usize);
        let l = data.labels()[r as usize] as u64 as f64;
        match cats.iter_mut().find(|(code, _, _)| *code == v) {
            Some(entry) => {
                entry.1 += 1.0;
                entry.2 += l;
            }
            None => cats.push((v, 1.0, l)),
        }
    }
    if cats.len() < 2 {
        return None;
    }
    let mut best: Option<(f64, Split, f64, f64)> = None;
    for &(code, n_c, p_c) in &cats {
        let w = (n_c / n) * gini(n_c, p_c) + ((n - n_c) / n) * gini(n - n_c, p - p_c);
        if best.as_ref().is_none_or(|(bw, ..)| w < *bw) {
            best = Some((
                w,
                Split::Equal {
                    feature,
                    value: code,
                },
                n_c,
                p_c,
            ));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    /// y = x > 0.5, perfectly separable by one threshold.
    fn separable() -> TabularData {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<bool> = xs.iter().map(|&x| x > 0.5).collect();
        let mut d = TabularData::new();
        d.push_column("x", FeatureKind::Numeric, xs);
        d.set_labels(ys);
        d
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let d = separable();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        for r in 0..d.num_rows() {
            let pred = t.predict_proba_row(&d, r) >= 0.5;
            assert_eq!(pred, d.labels()[r], "row {r}");
        }
    }

    #[test]
    fn respects_max_depth() {
        let d = separable();
        let cfg = TreeConfig {
            max_depth: 2,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        assert!(t.depth() <= 2);
    }

    #[test]
    fn depth_zero_is_a_stump_prior() {
        let d = separable();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        assert_eq!(t.num_nodes(), 1);
        // Root probability is the base rate.
        assert!((t.predict_proba(&[0.3]) - 0.49).abs() < 0.02);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let mut d = TabularData::new();
        d.push_column("x", FeatureKind::Numeric, vec![1.0, 2.0, 3.0]);
        d.set_labels(vec![true, true, true]);
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR over two binary numeric features: depth-1 can't separate,
        // depth-2 can.
        let mut d = TabularData::new();
        let mut xs = Vec::new();
        let mut zs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            xs.push(a as f64);
            zs.push(b as f64);
            ys.push((a ^ b) == 1);
        }
        d.push_column("a", FeatureKind::Numeric, xs);
        d.push_column("b", FeatureKind::Numeric, zs);
        d.set_labels(ys.clone());
        let deep = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 3,
                numeric_cuts: 8,
                ..Default::default()
            },
            &mut rng(),
        );
        let correct = (0..d.num_rows())
            .filter(|&r| (deep.predict_proba_row(&d, r) >= 0.5) == ys[r])
            .count();
        assert_eq!(correct, d.num_rows(), "depth-3 tree must solve XOR");
    }

    #[test]
    fn categorical_split_separates_codes() {
        let mut d = TabularData::new();
        // Category 2 is positive, all others negative.
        let codes: Vec<f64> = (0..90).map(|i| (i % 3) as f64).collect();
        let ys: Vec<bool> = codes.iter().map(|&c| c == 2.0).collect();
        d.push_column("cat", FeatureKind::Categorical, codes);
        d.set_labels(ys);
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.predict_proba(&[2.0]), 1.0);
        assert_eq!(t.predict_proba(&[0.0]), 0.0);
        assert_eq!(t.predict_proba(&[1.0]), 0.0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = separable();
        let cfg = TreeConfig {
            min_samples_leaf: 40,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        // With 100 rows and min leaf 40, at most one split (60/40-ish)
        // is possible per path; depth stays small.
        assert!(t.depth() <= 2, "depth {}", t.depth());
    }

    #[test]
    fn probabilities_are_valid() {
        let d = separable();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        for r in 0..d.num_rows() {
            let p = t.predict_proba_row(&d, r);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_feature_count_panics() {
        let d = separable();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        let _ = t.predict_proba(&[1.0, 2.0]);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let d = separable();
        let cfg = TreeConfig {
            max_features: Some(1),
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        let correct = (0..d.num_rows())
            .filter(|&r| (t.predict_proba_row(&d, r) >= 0.5) == d.labels()[r])
            .count();
        assert!(correct >= 95);
    }
}
