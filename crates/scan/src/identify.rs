//! Evidence selection: top-k and non-overlapping region extraction.
//!
//! The paper (§3): "We consider all examined regions that have a
//! statistically significant likelihood ratio, and we rank them in
//! decreasing order of their likelihood ratio. We then return the
//! top-k regions as evidence." And for the §4.3 square scans: "As
//! these regions intersect each other, we select a set of
//! non-overlapping regions. We examine centers in sequence, and for
//! each center we keep the region with the highest value of the
//! statistic."

use crate::report::RegionFinding;

/// Selects a non-overlapping subset of (significant) findings.
///
/// When the findings carry scan-center ids (§4.3 square scans), the
/// paper's procedure is followed: centers are examined in ascending id
/// order; each center contributes its highest-LLR finding, which is
/// kept iff it does not intersect an already-kept region.
///
/// Without center structure, a greedy pass in descending LLR order is
/// used (equivalent semantics for partition sets, whose members never
/// overlap anyway).
pub fn select_non_overlapping(findings: &[RegionFinding]) -> Vec<RegionFinding> {
    let has_centers = findings.iter().any(|f| f.center_id.is_some());
    if has_centers {
        select_by_center_sequence(findings)
    } else {
        select_greedy_by_llr(findings)
    }
}

/// The paper's §4.3 center-sequence procedure.
fn select_by_center_sequence(findings: &[RegionFinding]) -> Vec<RegionFinding> {
    // Group findings by center id, keeping the best (max LLR) each.
    let mut best_per_center: Vec<(usize, &RegionFinding)> = Vec::new();
    for f in findings {
        let Some(cid) = f.center_id else { continue };
        match best_per_center.iter_mut().find(|(c, _)| *c == cid) {
            Some(entry) => {
                if f.llr > entry.1.llr {
                    entry.1 = f;
                }
            }
            None => best_per_center.push((cid, f)),
        }
    }
    // Examine centers in sequence (ascending id).
    best_per_center.sort_by_key(|(c, _)| *c);
    let mut kept: Vec<RegionFinding> = Vec::new();
    for (_, cand) in best_per_center {
        let overlaps = kept.iter().any(|k| k.region.may_intersect(&cand.region));
        if !overlaps {
            kept.push(cand.clone());
        }
    }
    kept
}

/// Greedy fallback: strongest evidence first.
fn select_greedy_by_llr(findings: &[RegionFinding]) -> Vec<RegionFinding> {
    let mut order: Vec<&RegionFinding> = findings.iter().collect();
    order.sort_by(|a, b| b.llr.partial_cmp(&a.llr).expect("LLRs are finite"));
    let mut kept: Vec<RegionFinding> = Vec::new();
    for cand in order {
        let overlaps = kept.iter().any(|k| k.region.may_intersect(&cand.region));
        if !overlaps {
            kept.push(cand.clone());
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgeo::{Rect, Region};

    fn finding(index: usize, center: Option<usize>, rect: Rect, llr: f64) -> RegionFinding {
        let n = 10;
        let p = 5;
        RegionFinding {
            index,
            region: Region::Rect(rect),
            center_id: center,
            n,
            p,
            rate: p as f64 / n as f64,
            llr,
        }
    }

    #[test]
    fn empty_input() {
        assert!(select_non_overlapping(&[]).is_empty());
    }

    #[test]
    fn greedy_keeps_strongest_of_overlapping_pair() {
        let a = finding(0, None, Rect::from_coords(0.0, 0.0, 2.0, 2.0), 5.0);
        let b = finding(1, None, Rect::from_coords(1.0, 1.0, 3.0, 3.0), 9.0);
        let out = select_non_overlapping(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, 1);
    }

    #[test]
    fn greedy_keeps_disjoint_regions() {
        let a = finding(0, None, Rect::from_coords(0.0, 0.0, 1.0, 1.0), 5.0);
        let b = finding(1, None, Rect::from_coords(5.0, 5.0, 6.0, 6.0), 9.0);
        let out = select_non_overlapping(&[a, b]);
        assert_eq!(out.len(), 2);
        // Sorted by LLR descending.
        assert_eq!(out[0].index, 1);
        assert_eq!(out[1].index, 0);
    }

    #[test]
    fn center_sequence_takes_best_per_center() {
        // Center 0 has two nested squares; the larger has higher LLR.
        let small = finding(
            0,
            Some(0),
            Rect::square(sfgeo::Point::new(0.0, 0.0), 1.0),
            3.0,
        );
        let large = finding(
            1,
            Some(0),
            Rect::square(sfgeo::Point::new(0.0, 0.0), 2.0),
            7.0,
        );
        // Center 1 is far away.
        let other = finding(
            2,
            Some(1),
            Rect::square(sfgeo::Point::new(10.0, 10.0), 1.0),
            4.0,
        );
        let out = select_non_overlapping(&[small, large, other]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 1, "center 0 keeps its best region");
        assert_eq!(out[1].index, 2);
    }

    #[test]
    fn center_sequence_drops_overlaps_with_kept() {
        // Center 0's best overlaps center 1's best; center 1 loses
        // because centers are examined in sequence.
        let c0 = finding(0, Some(0), Rect::from_coords(0.0, 0.0, 4.0, 4.0), 5.0);
        let c1 = finding(1, Some(1), Rect::from_coords(3.0, 3.0, 6.0, 6.0), 50.0);
        let out = select_non_overlapping(&[c0, c1]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].index, 0,
            "paper's procedure is sequential, not greedy"
        );
    }

    #[test]
    fn selected_regions_are_pairwise_disjoint() {
        // A chain of overlapping squares.
        let findings: Vec<RegionFinding> = (0..10)
            .map(|i| {
                finding(
                    i,
                    Some(i),
                    Rect::square(sfgeo::Point::new(i as f64 * 0.6, 0.0), 1.0),
                    (10 - i) as f64,
                )
            })
            .collect();
        let out = select_non_overlapping(&findings);
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                assert!(
                    !out[i].region.may_intersect(&out[j].region),
                    "selected regions {i} and {j} overlap"
                );
            }
        }
        assert!(!out.is_empty());
    }
}
