//! # sfscan — auditing algorithmic outcomes for spatial fairness
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Auditing for Spatial Fairness*, EDBT 2023): a statistically
//! principled framework that answers two questions about the outcomes
//! of an algorithm whose protected attribute is **location**:
//!
//! 1. **"Is it fair?"** — Spatial fairness is defined as statistical
//!    independence of outcomes from location: for every region, the
//!    outcome distribution inside must match the outside. The audit
//!    compares the null hypothesis (one global Bernoulli rate) against
//!    the alternative (a region with a different rate) with a
//!    likelihood-ratio test whose significance is calibrated by Monte
//!    Carlo simulation.
//! 2. **"Where is it unfair?"** — If fairness is rejected, the regions
//!    whose log-likelihood ratio exceeds the Monte-Carlo critical
//!    value are returned as evidence, ranked by their spatial
//!    unfairness likelihood (SUL), with a non-overlapping selection
//!    pass for presentation.
//!
//! The crate also implements the **`MeanVar` baseline** (Xie et al.,
//! AAAI 2022) that the paper compares against, so the paper's
//! experiments can be reproduced end to end.
//!
//! ## Module map
//!
//! * [`outcomes`] — the audited data: locations plus binary outcomes,
//!   with the fairness views of §3 (statistical parity, equal
//!   opportunity, equal odds, mean residual) named by the
//!   [`config::Statistic`] they are audited under.
//! * [`regions`] — candidate region enumeration: grid partitions,
//!   random rectangular partitionings, §4.3 square scans around
//!   k-means centers, circles.
//! * [`engine`] — region counting over a pluggable
//!   [`sfindex::CountingSubstrate`] (brute force, kd-tree, quadtree,
//!   R-tree, or uniform grid — selected at runtime via
//!   [`config::AuditConfig::backend`], all bit-identical) and the fast
//!   membership-based Monte Carlo world evaluation, including the
//!   blocked popcnt path ([`config::CountingStrategy::Blocked`],
//!   masked popcounts over a Morton-blocked membership CSR).
//!   [`config::CountingStrategy::Auto`] resolves Membership vs Requery
//!   counting from the measured membership density `Σ n(R)` vs `M·N`,
//!   then upgrades to Blocked when the compiled masks are dense.
//! * [`audit`] — the [`audit::Auditor`] driver tying it together.
//!   With [`config::McStrategy::EarlyStop`], the Monte Carlo
//!   calibration evaluates worlds in batches and stops at the first
//!   batch where the verdict at `α` is decided (Besag–Clifford-style
//!   sequential stopping); the verdict always matches the full-budget
//!   run, and [`report::AuditReport::worlds_evaluated`] records the
//!   spend.
//! * [`identify`] — evidence selection: top-k and the §4.3
//!   non-overlapping greedy pass.
//! * [`meanvar`] — the baseline and its per-partition contribution
//!   ranking.
//! * [`report`] — the [`report::AuditReport`] result type (serialisable).
//! * [`config`] — [`config::AuditConfig`] knobs: significance level,
//!   Monte Carlo budget, seed, direction, null model, counting
//!   strategy.
//! * [`suite`] — one-call three-direction audits with confidence
//!   intervals on every finding (extension).
//! * [`rates`] — Poisson-model audits of area-level count surfaces
//!   (the paper's crime-forecasting motivation; extension).

pub mod audit;
pub mod config;
pub mod direction;
pub mod engine;
pub mod error;
pub mod identify;
pub mod meanvar;
pub mod outcomes;
pub mod prepared;
pub mod rates;
pub mod regions;
pub mod report;
pub mod suite;
pub mod worldcache;

pub use audit::Auditor;
pub use config::{
    AuditConfig, CountingKernel, CountingStrategy, IndexBackend, KernelSelect, McStrategy,
    NullModel, ParseKernelError, ParseShardsError, ParseStatisticError, ParseStrategyError, Shards,
    Statistic, TauKernel, WorldGen,
};
pub use direction::Direction;
pub use error::ScanError;
pub use meanvar::{MeanVar, MeanVarResult, PartitionContribution};
pub use outcomes::SpatialOutcomes;
pub use prepared::{
    AuditRequest, BatchStats, ExecutionPlan, PlanGroup, PreparedAudit, WorldClass, WorldEvaluator,
};
pub use rates::{audit_rates, audit_rates_batch, CellCounts, RateReport};
pub use regions::RegionSet;
pub use report::{AuditReport, RegionFinding, Verdict};
pub use suite::{run_suite, SuiteReport};
pub use worldcache::{CacheStats, TauRows, WorldCache};
