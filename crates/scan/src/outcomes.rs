//! The audited data: locations and binary outcomes.
//!
//! The paper (§3) frames all fairness notions as the requirement that
//! an event `M` is independent of the protected attribute. For
//! location-based audits the observations are `(location, outcome)`
//! pairs, where the outcome's meaning depends on the chosen
//! [`Measure`]:
//!
//! * **statistical parity** — outcome = `ŷ` over *all* individuals;
//! * **equal opportunity** — outcome = `ŷ` restricted to individuals
//!   with `y = 1` (so the local rate is the local TPR);
//! * **equal odds (FPR side)** — outcome = `ŷ` restricted to `y = 0`.

use crate::error::ScanError;
use serde::{Deserialize, Serialize};
use sfgeo::{BoundingBox, Point, Rect};
use sfindex::BitLabels;

/// Which conditional of the prediction stream is audited (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Measure {
    /// `M = ŷ`: the positive rate (statistical parity).
    #[default]
    StatisticalParity,
    /// `M = ŷ | y = 1`: the true positive rate (equal opportunity).
    EqualOpportunity,
    /// `M = ŷ | y = 0`: the false positive rate (the second half of
    /// equal odds; the first half is [`Measure::EqualOpportunity`]).
    EqualOddsFalsePositive,
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::StatisticalParity => write!(f, "statistical parity (positive rate)"),
            Measure::EqualOpportunity => write!(f, "equal opportunity (true positive rate)"),
            Measure::EqualOddsFalsePositive => write!(f, "equal odds (false positive rate)"),
        }
    }
}

/// A set of located binary outcomes — the input to every audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialOutcomes {
    points: Vec<Point>,
    labels: Vec<bool>,
}

impl SpatialOutcomes {
    /// Creates an outcome set from parallel locations and labels.
    pub fn new(points: Vec<Point>, labels: Vec<bool>) -> Result<Self, ScanError> {
        if points.len() != labels.len() {
            return Err(ScanError::LengthMismatch {
                points: points.len(),
                labels: labels.len(),
            });
        }
        if points.is_empty() {
            return Err(ScanError::EmptyOutcomes);
        }
        if let Some(index) = points.iter().position(|p| !p.is_finite()) {
            return Err(ScanError::NonFiniteLocation { index });
        }
        Ok(SpatialOutcomes { points, labels })
    }

    /// Builds the audit view for `measure` from a prediction stream:
    /// per-individual location, ground truth `y`, and prediction `ŷ`.
    ///
    /// For statistical parity every individual is kept with outcome
    /// `ŷ`; for equal opportunity only `y = 1` individuals are kept
    /// (paper §4.1: "we retain the predictions for the true positive
    /// labels"); for the FPR view only `y = 0`.
    pub fn from_predictions(
        points: &[Point],
        y_true: &[bool],
        y_pred: &[bool],
        measure: Measure,
    ) -> Result<Self, ScanError> {
        if points.len() != y_true.len() || points.len() != y_pred.len() {
            return Err(ScanError::LengthMismatch {
                points: points.len(),
                labels: y_true.len().min(y_pred.len()),
            });
        }
        let keep = |i: usize| match measure {
            Measure::StatisticalParity => true,
            Measure::EqualOpportunity => y_true[i],
            Measure::EqualOddsFalsePositive => !y_true[i],
        };
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..points.len() {
            if keep(i) {
                pts.push(points[i]);
                labels.push(y_pred[i]);
            }
        }
        SpatialOutcomes::new(pts, labels)
    }

    /// Number of observations (`N`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if there are no observations (never true for a
    /// successfully constructed value; useful for generic code).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The locations.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The outcome labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive outcomes (`P`).
    pub fn positives(&self) -> u64 {
        self.labels.iter().filter(|&&l| l).count() as u64
    }

    /// The global rate `ρ = P/N` of the audited measure.
    pub fn rate(&self) -> f64 {
        self.positives() as f64 / self.len() as f64
    }

    /// Labels as a bitset (for the index layer).
    pub fn bit_labels(&self) -> BitLabels {
        BitLabels::from_bools(&self.labels)
    }

    /// Tight bounding box of the locations.
    pub fn bounding_box(&self) -> Rect {
        BoundingBox::of_points(&self.points).expect("outcomes are non-empty")
    }

    /// Bounding box expanded so every point is strictly interior —
    /// what grids and partitionings should be built on.
    pub fn expanded_bounding_box(&self) -> Rect {
        BoundingBox::of_points_expanded(&self.points, 1e-6).expect("outcomes are non-empty")
    }

    /// Validates that the outcome set is auditable: it must contain
    /// both classes, otherwise the scan statistic is identically zero.
    pub fn check_auditable(&self) -> Result<(), ScanError> {
        let n = self.len() as u64;
        let p = self.positives();
        if p == 0 || p == n {
            return Err(ScanError::DegenerateOutcomes { n, p });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn construction_and_accessors() {
        let o = SpatialOutcomes::new(pts(4), vec![true, false, true, true]).unwrap();
        assert_eq!(o.len(), 4);
        assert_eq!(o.positives(), 3);
        assert!((o.rate() - 0.75).abs() < 1e-12);
        assert_eq!(o.bit_labels().count_ones(), 3);
        assert_eq!(o.bounding_box(), Rect::from_coords(0.0, 0.0, 3.0, 0.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            SpatialOutcomes::new(pts(2), vec![true]).unwrap_err(),
            ScanError::LengthMismatch {
                points: 2,
                labels: 1
            }
        );
        assert_eq!(
            SpatialOutcomes::new(vec![], vec![]).unwrap_err(),
            ScanError::EmptyOutcomes
        );
        let bad = vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)];
        assert_eq!(
            SpatialOutcomes::new(bad, vec![true, false]).unwrap_err(),
            ScanError::NonFiniteLocation { index: 1 }
        );
    }

    #[test]
    fn statistical_parity_keeps_everyone() {
        let y = vec![true, false, true, false];
        let yh = vec![true, true, false, false];
        let o = SpatialOutcomes::from_predictions(&pts(4), &y, &yh, Measure::StatisticalParity)
            .unwrap();
        assert_eq!(o.len(), 4);
        assert_eq!(o.labels(), yh.as_slice());
    }

    #[test]
    fn equal_opportunity_keeps_true_positive_class() {
        let y = vec![true, false, true, false];
        let yh = vec![true, true, false, false];
        let o =
            SpatialOutcomes::from_predictions(&pts(4), &y, &yh, Measure::EqualOpportunity).unwrap();
        // Individuals 0 and 2 have y = 1; their predictions are [true, false].
        assert_eq!(o.len(), 2);
        assert_eq!(o.labels(), &[true, false]);
        assert_eq!(o.points()[0].x, 0.0);
        assert_eq!(o.points()[1].x, 2.0);
        assert!((o.rate() - 0.5).abs() < 1e-12); // TPR
    }

    #[test]
    fn equal_odds_keeps_true_negative_class() {
        let y = vec![true, false, true, false];
        let yh = vec![true, true, false, false];
        let o =
            SpatialOutcomes::from_predictions(&pts(4), &y, &yh, Measure::EqualOddsFalsePositive)
                .unwrap();
        // Individuals 1 and 3 have y = 0; predictions [true, false] -> FPR 0.5.
        assert_eq!(o.len(), 2);
        assert!((o.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_outcomes_flagged() {
        let o = SpatialOutcomes::new(pts(3), vec![true, true, true]).unwrap();
        assert!(matches!(
            o.check_auditable().unwrap_err(),
            ScanError::DegenerateOutcomes { n: 3, p: 3 }
        ));
        let o = SpatialOutcomes::new(pts(3), vec![false, false, false]).unwrap();
        assert!(o.check_auditable().is_err());
        let o = SpatialOutcomes::new(pts(3), vec![true, false, true]).unwrap();
        assert!(o.check_auditable().is_ok());
    }

    #[test]
    fn measure_display() {
        assert!(Measure::StatisticalParity.to_string().contains("parity"));
        assert!(Measure::EqualOpportunity
            .to_string()
            .contains("true positive"));
        assert!(Measure::EqualOddsFalsePositive
            .to_string()
            .contains("false positive"));
    }
}
