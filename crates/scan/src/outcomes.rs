//! The audited data: locations and binary outcomes.
//!
//! The paper (§3) frames all fairness notions as the requirement that
//! an event `M` is independent of the protected attribute. For
//! location-based audits the observations are `(location, outcome)`
//! pairs, and the [`Statistic`] names both the per-region score *and*
//! the conditional of the prediction stream it is computed over —
//! there is exactly one name for a scenario across outcomes, config
//! and the wire:
//!
//! * [`Statistic::BernoulliLlr`] — outcome = `ŷ` over *all*
//!   individuals (statistical parity, the paper's default);
//! * [`Statistic::EqualOppTpr`] — outcome = `ŷ` restricted to
//!   individuals with `y = 1`, so the local rate is the local TPR
//!   (equal opportunity). The FPR side of equal odds is the same view
//!   conditioned on `y = 0`: negate `y` and audit `EqualOppTpr`.
//! * [`Statistic::MeanResidual`] — outcome = "residual above the
//!   global mean" over all individuals (see
//!   [`SpatialOutcomes::from_residuals`]).

use crate::config::Statistic;
use crate::error::ScanError;
use serde::{Deserialize, Serialize};
use sfgeo::{BoundingBox, Point, Rect};
use sfindex::BitLabels;
use sfstats::descriptive::RunningMoments;

/// A set of located binary outcomes — the input to every audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialOutcomes {
    points: Vec<Point>,
    labels: Vec<bool>,
}

impl SpatialOutcomes {
    /// Creates an outcome set from parallel locations and labels.
    pub fn new(points: Vec<Point>, labels: Vec<bool>) -> Result<Self, ScanError> {
        if points.len() != labels.len() {
            return Err(ScanError::LengthMismatch {
                points: points.len(),
                labels: labels.len(),
            });
        }
        if points.is_empty() {
            return Err(ScanError::EmptyOutcomes);
        }
        if let Some(index) = points.iter().position(|p| !p.is_finite()) {
            return Err(ScanError::NonFiniteLocation { index });
        }
        Ok(SpatialOutcomes { points, labels })
    }

    /// Builds the audit view for `statistic` from a prediction stream:
    /// per-individual location, ground truth `y`, and prediction `ŷ`.
    ///
    /// For [`Statistic::BernoulliLlr`] and [`Statistic::MeanResidual`]
    /// every individual is kept with outcome `ŷ` (the parity view);
    /// for [`Statistic::EqualOppTpr`] only `y = 1` individuals are
    /// kept (paper §4.1: "we retain the predictions for the true
    /// positive labels"), so the local positive rate of the view *is*
    /// the local TPR. For the FPR half of equal odds, pass the negated
    /// ground truth with `EqualOppTpr`: conditioning on `!y` keeps the
    /// `y = 0` individuals.
    pub fn from_predictions(
        points: &[Point],
        y_true: &[bool],
        y_pred: &[bool],
        statistic: Statistic,
    ) -> Result<Self, ScanError> {
        if points.len() != y_true.len() || points.len() != y_pred.len() {
            return Err(ScanError::LengthMismatch {
                points: points.len(),
                labels: y_true.len().min(y_pred.len()),
            });
        }
        let keep = |i: usize| match statistic {
            Statistic::BernoulliLlr | Statistic::MeanResidual => true,
            Statistic::EqualOppTpr => y_true[i],
        };
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..points.len() {
            if keep(i) {
                pts.push(points[i]);
                labels.push(y_pred[i]);
            }
        }
        SpatialOutcomes::new(pts, labels)
    }

    /// Builds the mean-residual audit view from a continuous outcome
    /// stream: per-individual location, actual value and predicted
    /// value.
    ///
    /// The residual `rᵢ = yᵢ − ŷᵢ` is reduced to the binary outcome
    /// "above the global mean residual" (the mean is computed with
    /// Welford accumulation, so the threshold is numerically stable on
    /// long streams). Auditing the view under
    /// [`Statistic::MeanResidual`] then standardizes each region's
    /// rate of above-average residuals against the permutation or
    /// Bernoulli null — a region the model systematically under- or
    /// over-predicts shows up as an extreme standardized mean.
    ///
    /// Returns [`ScanError::NonFiniteResidual`] with the offending
    /// index if any residual is not finite.
    pub fn from_residuals(
        points: &[Point],
        y_actual: &[f64],
        y_pred: &[f64],
    ) -> Result<Self, ScanError> {
        if points.len() != y_actual.len() || points.len() != y_pred.len() {
            return Err(ScanError::LengthMismatch {
                points: points.len(),
                labels: y_actual.len().min(y_pred.len()),
            });
        }
        let mut moments = RunningMoments::new();
        for i in 0..points.len() {
            let r = y_actual[i] - y_pred[i];
            if !r.is_finite() {
                return Err(ScanError::NonFiniteResidual { index: i });
            }
            moments.push(r);
        }
        let mean = moments.mean();
        let labels: Vec<bool> = y_actual
            .iter()
            .zip(y_pred)
            .map(|(&y, &yh)| y - yh > mean)
            .collect();
        SpatialOutcomes::new(points.to_vec(), labels)
    }

    /// Number of observations (`N`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if there are no observations (never true for a
    /// successfully constructed value; useful for generic code).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The locations.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The outcome labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive outcomes (`P`).
    pub fn positives(&self) -> u64 {
        self.labels.iter().filter(|&&l| l).count() as u64
    }

    /// The global rate `ρ = P/N` of the audited measure.
    pub fn rate(&self) -> f64 {
        self.positives() as f64 / self.len() as f64
    }

    /// Labels as a bitset (for the index layer).
    pub fn bit_labels(&self) -> BitLabels {
        BitLabels::from_bools(&self.labels)
    }

    /// Tight bounding box of the locations.
    pub fn bounding_box(&self) -> Rect {
        BoundingBox::of_points(&self.points).expect("outcomes are non-empty")
    }

    /// Bounding box expanded so every point is strictly interior —
    /// what grids and partitionings should be built on.
    pub fn expanded_bounding_box(&self) -> Rect {
        BoundingBox::of_points_expanded(&self.points, 1e-6).expect("outcomes are non-empty")
    }

    /// Validates that the outcome set is auditable: it must contain
    /// both classes, otherwise the scan statistic is identically zero.
    pub fn check_auditable(&self) -> Result<(), ScanError> {
        let n = self.len() as u64;
        let p = self.positives();
        if p == 0 || p == n {
            return Err(ScanError::DegenerateOutcomes { n, p });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn construction_and_accessors() {
        let o = SpatialOutcomes::new(pts(4), vec![true, false, true, true]).unwrap();
        assert_eq!(o.len(), 4);
        assert_eq!(o.positives(), 3);
        assert!((o.rate() - 0.75).abs() < 1e-12);
        assert_eq!(o.bit_labels().count_ones(), 3);
        assert_eq!(o.bounding_box(), Rect::from_coords(0.0, 0.0, 3.0, 0.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            SpatialOutcomes::new(pts(2), vec![true]).unwrap_err(),
            ScanError::LengthMismatch {
                points: 2,
                labels: 1
            }
        );
        assert_eq!(
            SpatialOutcomes::new(vec![], vec![]).unwrap_err(),
            ScanError::EmptyOutcomes
        );
        let bad = vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)];
        assert_eq!(
            SpatialOutcomes::new(bad, vec![true, false]).unwrap_err(),
            ScanError::NonFiniteLocation { index: 1 }
        );
    }

    #[test]
    fn parity_statistics_keep_everyone() {
        let y = vec![true, false, true, false];
        let yh = vec![true, true, false, false];
        for statistic in [Statistic::BernoulliLlr, Statistic::MeanResidual] {
            let o = SpatialOutcomes::from_predictions(&pts(4), &y, &yh, statistic).unwrap();
            assert_eq!(o.len(), 4);
            assert_eq!(o.labels(), yh.as_slice());
        }
    }

    #[test]
    fn equal_opportunity_keeps_true_positive_class() {
        let y = vec![true, false, true, false];
        let yh = vec![true, true, false, false];
        let o =
            SpatialOutcomes::from_predictions(&pts(4), &y, &yh, Statistic::EqualOppTpr).unwrap();
        // Individuals 0 and 2 have y = 1; their predictions are [true, false].
        assert_eq!(o.len(), 2);
        assert_eq!(o.labels(), &[true, false]);
        assert_eq!(o.points()[0].x, 0.0);
        assert_eq!(o.points()[1].x, 2.0);
        assert!((o.rate() - 0.5).abs() < 1e-12); // TPR
    }

    #[test]
    fn negated_truth_yields_the_false_positive_view() {
        // The FPR half of equal odds: condition on y = 0 by negating
        // the ground truth before the equal-opportunity keep rule.
        let y = [true, false, true, false];
        let yh = [true, true, false, false];
        let not_y: Vec<bool> = y.iter().map(|&v| !v).collect();
        let o = SpatialOutcomes::from_predictions(&pts(4), &not_y, &yh, Statistic::EqualOppTpr)
            .unwrap();
        // Individuals 1 and 3 have y = 0; predictions [true, false] -> FPR 0.5.
        assert_eq!(o.len(), 2);
        assert!((o.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn residual_view_thresholds_at_the_mean_residual() {
        // Residuals: [2.0, -1.0, 0.5, -0.5] → mean 0.25; above-mean
        // labels [true, false, true, false].
        let actual = vec![3.0, 1.0, 2.5, 0.5];
        let pred = vec![1.0, 2.0, 2.0, 1.0];
        let o = SpatialOutcomes::from_residuals(&pts(4), &actual, &pred).unwrap();
        assert_eq!(o.labels(), &[true, false, true, false]);
        assert_eq!(o.positives(), 2);
    }

    #[test]
    fn residual_view_rejects_bad_inputs() {
        assert_eq!(
            SpatialOutcomes::from_residuals(&pts(2), &[1.0], &[0.0, 0.0]).unwrap_err(),
            ScanError::LengthMismatch {
                points: 2,
                labels: 1
            }
        );
        assert_eq!(
            SpatialOutcomes::from_residuals(&pts(2), &[1.0, f64::INFINITY], &[0.0, 0.0])
                .unwrap_err(),
            ScanError::NonFiniteResidual { index: 1 }
        );
    }

    #[test]
    fn degenerate_outcomes_flagged() {
        let o = SpatialOutcomes::new(pts(3), vec![true, true, true]).unwrap();
        assert!(matches!(
            o.check_auditable().unwrap_err(),
            ScanError::DegenerateOutcomes { n: 3, p: 3 }
        ));
        let o = SpatialOutcomes::new(pts(3), vec![false, false, false]).unwrap();
        assert!(o.check_auditable().is_err());
        let o = SpatialOutcomes::new(pts(3), vec![true, false, true]).unwrap();
        assert!(o.check_auditable().is_ok());
    }
}
